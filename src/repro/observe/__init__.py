"""``repro.observe`` — the unified observability layer.

One structured-event tracing and metrics surface threaded through all
three execution tiers and the compiler pipeline (see DESIGN.md §7 for the
full taxonomy and how spans map onto the paper's Figure 1/2 measurements):

==============================  =================================================
event / metric                  emitted by
==============================  =================================================
``eval.evaluate`` (span)        top-level ``Evaluator.evaluate_protected``
``eval.fixed_point_iterations`` the evaluator's fixed-point loop (counter)
``eval.rule_applications``      each DownValue rule firing (counter)
``eval.dispatch_index.hits``    literal-discriminated dispatch lookups (counter)
``eval.dispatch_index.misses``  dispatch lookups that fell to the scan (counter)
``vm.run`` (span)               one WVM invocation, with instruction count
``vm.instructions``             WVM instructions dispatched (counter)
``vm.dispatches``               WVM invocations (counter)
``pipeline.pass`` (spans)       ``CompilerPipeline._timed`` — one span per pass,
                                named ``pass:<name>``, with IR node-count deltas
``pipeline.pass.<name>``        per-pass wall time (histogram, seconds)
``analysis.checks_elided.int64``  overflow guards deleted by dataflow facts
                                (counter); ``.bounds`` for Part bounds
                                checks, ``.checkpoints`` for coalesced
                                loop abort checkpoints alongside
``hotspot.promote`` (span)      one promotion attempt
``tier.promote``                successful promotion (instant, ``symbol=``)
``tier.demote``                 breaker demotion / promotion withdrawal
                                (instant, ``symbol=``, ``from=``, ``to=``)
``tier.invalidate``             promotion dropped on redefinition (instant)
``tier.blocked``                definition failed the promotion gate (instant)
``guard.trip``                  deadline/step/memory budget expiry (instant)
``artifact.cache`` (span)       one persistent-cache lookup or store
                                (``op=`` get/put, ``key=`` digest prefix)
``artifact.cache.hits``         persistent-cache outcomes (counters);
                                ``.misses``, ``.stores``, ``.evictions``,
                                ``.corrupt`` alongside
``server.request`` (span)       one engine-server request, ``session=``,
                                ``tenant=``
``server.requests``             requests received (counter); ``server.ok``,
                                ``server.failures``, ``server.retries``,
                                ``server.shed``, ``server.admitted`` alongside
``server.queue_depth``          admission queue depth at each enqueue
                                (histogram)
``server.retry``                one backoff retry (instant, ``attempt=``,
                                ``delay=``)
``server.breaker``              request-breaker transition (instant,
                                ``scope=``, ``from=``, ``to=``)
``server.pressure``             memory-pressure level change (instant,
                                ``from=``, ``to=``, ``used_bytes=``)
``server.session``              session lifecycle (instant, ``action=``
                                created/evicted)
``server.admit``                admission slot granted (instant,
                                ``queue_depth=``)
``server.shed``                 request rejected/shed (instant,
                                ``reason=``)
``server.latency_seconds``      end-to-end request latency (quantile
                                histogram: p50/p95/p99)
``session.execute``             one request on a session's worker thread
                                (span, ``session=``, ``tier_cap=``)
``compile.function``            one ``FunctionCompile`` call (span,
                                ``cache=`` hit/miss/off)
``hotspot.promotions.<tier>``   promotions by landing tier (counters)
==============================  =================================================

Every record is stamped with the active request context
(:mod:`repro.observe.context`) when one is set, so the server's flight
recorder (:mod:`repro.observe.flight`) can reconstruct the full
per-request timeline — ``{"op": "trace", "request": "req-..."}`` on the
serve protocol, or ``python -m repro top`` for the live overview.

Usage::

    from repro.observe import with_tracing

    with with_tracing() as tracer:
        session.run("fib[19]")
    tracer.write_chrome_trace("out.json")      # chrome://tracing / Perfetto
    print(tracer.metrics.to_json())            # counters + histograms

or process-wide from the CLI: ``python -m repro --trace out.json --metrics``.

When tracing is disabled — the default — every instrumentation site costs
one module-attribute load and a ``None`` test; no event objects, clock
reads, or metric updates happen at all.
"""

from repro.observe.context import (
    TraceContext,
    activate,
    current_context,
    mint_context,
)
from repro.observe.flight import FlightRecorder, telemetry_enabled
from repro.observe.metrics import Histogram, MetricsRegistry
from repro.observe.trace import (
    SpanRecord,
    Tracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    with_tracing,
)
from repro.observe import trace as _trace
from contextlib import contextmanager

__all__ = [
    "FlightRecorder", "Histogram", "MetricsRegistry", "SpanRecord",
    "TraceContext", "Tracer", "activate", "active_tracer",
    "current_context", "disable_tracing", "enable_tracing",
    "mint_context", "telemetry_enabled", "with_tracing",
    "event", "span", "count",
]


def event(name: str, category: str = "repro", **args) -> None:
    """Record an instant event on the active tracer; noop when disabled.

    Convenience wrapper for cold sites (promotion, breaker transitions);
    hot loops should cache ``trace.TRACER`` in a local instead.
    """
    tracer = _trace.TRACER
    if tracer is not None:
        tracer.event(name, category, **args)


@contextmanager
def span(name: str, category: str = "repro", **args):
    """Span the block on the active tracer; a plain passthrough when off."""
    tracer = _trace.TRACER
    if tracer is None:
        yield None
    else:
        with tracer.span(name, category, **args) as record:
            yield record


def count(name: str, delta: int = 1) -> None:
    """Bump a counter on the active tracer's registry; noop when disabled."""
    tracer = _trace.TRACER
    if tracer is not None:
        tracer.metrics.count(name, delta)
