"""Request-scoped trace context, propagated via :mod:`contextvars`.

Every span and instant event the tracer records is stamped with the
:class:`TraceContext` active at emission time, so a production trace can
be sliced back into per-request timelines — *which* request compiled,
hit the artifact cache, tripped a guard, or got demoted, not just that
somebody did.

The context is minted once per request at the server's front door
(:meth:`repro.server.core.EngineServer.submit`), carried over the
newline-JSON protocol (clients may supply their own ``trace`` id to join
a distributed trace; the ``request`` id is always server-minted), and
propagated to worker threads by copying the ``contextvars`` context into
``run_in_executor`` — so the evaluator/VM/pipeline spans emitted on a
worker thread land under the owning request automatically.

Hot-path contract: instrumentation reads one ``ContextVar`` per record
*creation* (never on the disabled path — the ``TRACER`` guard in
:mod:`repro.observe.trace` short-circuits first), which is a single
dict-free lookup on the current context object.
"""

from __future__ import annotations

import itertools
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True)
class TraceContext:
    """Identity of one request as the telemetry plane sees it.

    ``trace_id`` groups causally related requests (a client may thread its
    own through the protocol); ``request_id`` names exactly one
    ``submit`` call and is the key per-request timelines are
    reconstructed under.  ``sampled`` is the head-sampling decision made
    at mint time — the flight recorder retains unsampled requests only
    when they turn out to be *interesting* (slow, failed, shed, retried,
    or demoted).
    """

    trace_id: str
    request_id: str
    session: str = ""
    tenant: str = ""
    sampled: bool = True


#: the active request context; ``None`` outside any request scope
CURRENT: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_trace_context", default=None
)

#: process-wide request sequence — request ids stay unique and ordered
#: within one server process; the trace id carries cross-process identity
_SEQUENCE = itertools.count(1)


def current_context() -> Optional[TraceContext]:
    """The request context active on this thread/task, or ``None``."""
    return CURRENT.get()


def mint_context(
    session: str = "",
    tenant: str = "",
    trace_id: Optional[str] = None,
    sampled: bool = True,
) -> TraceContext:
    """Mint the context for one request (server-side, one per submit)."""
    sequence = next(_SEQUENCE)
    request_id = f"req-{sequence:08d}"
    if not trace_id:
        trace_id = f"tr-{uuid.uuid4().hex[:12]}"
    return TraceContext(
        trace_id=trace_id,
        request_id=request_id,
        session=session,
        tenant=tenant,
        sampled=sampled,
    )


@contextmanager
def activate(context: Optional[TraceContext]) -> Iterator[
        Optional[TraceContext]]:
    """Make ``context`` current for the block (and restore on exit)."""
    token = CURRENT.set(context)
    try:
        yield context
    finally:
        CURRENT.reset(token)
