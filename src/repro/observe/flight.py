"""The always-on flight recorder: bounded, sampled, safe to leave on.

The PR 3 tracer answers "where did the time go" for an *opt-in* run; a
production server needs the question answered for the request that went
wrong **last Tuesday**, which means telemetry that is always armed and
still bounded in memory and overhead.  :class:`FlightRecorder` is a
:class:`~repro.observe.trace.Tracer` whose record stream is routed, not
merely appended:

* records stamped with a request id accumulate in a **per-request
  buffer** (bounded per request and in the number of open requests);
* when the server finishes the request, :meth:`finish_request` either
  flushes the buffer into the bounded **ring** or drops it, according to
  **head sampling** (``REPRO_TELEMETRY_SAMPLE``, decided at mint time)
  plus **tail retention**: every failed, shed, retried, slow, or
  demotion/guard-trip/breaker-touching request is kept regardless of the
  sampling decision — the interesting 1% never depends on the dice;
* records outside any request scope (REPL evaluation, AOT warm-up,
  background promotion) go straight to the ring.

Snapshots
---------

:meth:`auto_snapshot` freezes the ring plus all open buffers into a
bounded list of named snapshots.  The recorder arms itself: a
``server.breaker`` transition to ``open`` and a ``server.pressure``
transition to ``CRITICAL`` trigger a snapshot from inside the event
stream, whichever subsystem emitted it — no server plumbing required.
:meth:`write_snapshots` dumps each one as a Chrome-trace JSON file.

State machine (per request)::

    mint ──► buffering ──► finish ──► retained (ring)      [sampled or
                 │                                           interesting]
                 │                └──► dropped (counted)    [otherwise]
                 └──► overflow: oldest open buffer evicted to the ring
                      decision (counted as truncated)

Overhead: the buffer/ring paths cost one routing branch and one deque or
list append over the plain tracer; CI gates the whole always-on recorder
at ≤5% over the fully-disabled path (``bench_dispatch.py
--trace-overhead``, noise-widened like every perf gate in this repo).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Optional

from repro.observe import context as _context
from repro.observe.trace import SpanRecord, Tracer

DEFAULT_RING_EVENTS = 8192
DEFAULT_SAMPLE = 1.0
DEFAULT_SNAPSHOTS = 4
DEFAULT_SLOW_SECONDS = 0.25
#: per-request buffer bound — a single request recording more spans than
#: this keeps the newest ones counted but not stored
MAX_REQUEST_EVENTS = 2048
#: open-request bound — buffers past this are force-flushed oldest-first
MAX_OPEN_REQUESTS = 1024

#: event names whose presence makes an unsampled request worth keeping
NOTABLE_EVENTS = frozenset({
    "guard.trip",
    "tier.demote",
    "server.retry",
    "server.breaker",
    "server.pressure",
    "server.shed",
})


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "")
    try:
        return float(raw)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else default


def telemetry_enabled() -> bool:
    """``REPRO_TELEMETRY`` master switch (default: on)."""
    raw = os.environ.get("REPRO_TELEMETRY", "").strip().lower()
    return raw not in {"0", "off", "false", "no", "disabled"}


class FlightRecorder(Tracer):
    """A bounded, sampling, self-snapshotting tracer for production use."""

    background = True

    def __init__(
        self,
        max_events: Optional[int] = None,
        sample: Optional[float] = None,
        max_snapshots: Optional[int] = None,
        slow_seconds: Optional[float] = None,
    ):
        super().__init__()
        self.max_events = (
            max_events if max_events is not None
            else _env_int("REPRO_FLIGHT_MAX_EVENTS", DEFAULT_RING_EVENTS)
        )
        self.sample = (
            sample if sample is not None
            else _env_float("REPRO_TELEMETRY_SAMPLE", DEFAULT_SAMPLE)
        )
        self.max_snapshots = (
            max_snapshots if max_snapshots is not None
            else _env_int("REPRO_FLIGHT_SNAPSHOTS", DEFAULT_SNAPSHOTS)
        )
        self.slow_seconds = (
            slow_seconds if slow_seconds is not None
            else _env_float("REPRO_FLIGHT_SLOW_SECONDS", DEFAULT_SLOW_SECONDS)
        )
        #: the ring of retained records — ``self.events`` so every base
        #: Tracer query (``spans``/``instants``/``chrome_trace``) reads it
        self.events = deque()
        self._buffers: dict[str, list] = {}
        self._lock = threading.Lock()
        self._sample_accumulator = 0.0
        self.retained_requests = 0
        self.dropped_requests = 0
        self.truncated_requests = 0
        self.dropped_events = 0
        self.snapshots: list[dict] = []

    # -- head sampling --------------------------------------------------------

    def sample_next(self) -> bool:
        """The head-sampling decision for the next minted request.

        Deterministic error-diffusion stride instead of a random draw: a
        rate of 0.25 retains exactly every fourth healthy request, so
        tests and replayed workloads see stable retention.
        """
        rate = self.sample
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        with self._lock:
            self._sample_accumulator += rate
            if self._sample_accumulator >= 1.0:
                self._sample_accumulator -= 1.0
                return True
            return False

    # -- record routing -------------------------------------------------------

    def _emit(self, record: SpanRecord) -> None:
        request = record.request
        if request:
            with self._lock:
                buffer = self._buffers.get(request)
                if buffer is None:
                    if len(self._buffers) >= MAX_OPEN_REQUESTS:
                        # a leaked/forgotten request must not pin memory:
                        # force the oldest open buffer through retention
                        oldest = next(iter(self._buffers))
                        stale = self._buffers.pop(oldest)
                        self._retain_locked(stale)
                    buffer = self._buffers[request] = []
                if len(buffer) < MAX_REQUEST_EVENTS:
                    buffer.append(record)
                else:
                    self.dropped_events += 1
        else:
            with self._lock:
                self._retain_locked([record])
        self._maybe_auto_snapshot(record)

    def _retain_locked(self, records: list) -> None:
        ring = self.events
        ring.extend(records)
        while len(ring) > self.max_events:
            ring.popleft()
            self.dropped_events += 1

    # -- request lifecycle ----------------------------------------------------

    def finish_request(
        self,
        context: "_context.TraceContext",
        ok: bool = True,
        rejected: bool = False,
        retries: int = 0,
        latency: float = 0.0,
    ) -> bool:
        """Close the request's buffer: flush to the ring or drop.

        Returns whether the request was retained.  Tail retention keeps
        every request that failed, was shed, retried, ran slow (past
        ``slow_seconds``), or whose buffer carries a notable event
        (guard trip, tier demotion, breaker/pressure transition).
        """
        with self._lock:
            buffer = self._buffers.pop(context.request_id, [])
        interesting = (
            not ok
            or rejected
            or retries > 0
            or latency >= self.slow_seconds
            or any(record.name in NOTABLE_EVENTS for record in buffer)
        )
        if context.sampled or interesting:
            with self._lock:
                self._retain_locked(buffer)
                self.retained_requests += 1
                if len(buffer) >= MAX_REQUEST_EVENTS:
                    self.truncated_requests += 1
            return True
        with self._lock:
            self.dropped_requests += 1
        return False

    def open_requests(self) -> int:
        with self._lock:
            return len(self._buffers)

    # -- timeline reconstruction ----------------------------------------------

    def timeline(self, request_id: str) -> list:
        """Every retained record of one request, oldest first.

        Searches the ring, any still-open buffer, and the frozen
        snapshots, deduplicating records that appear in both a snapshot
        and the live ring.
        """
        with self._lock:
            candidates = list(self.events)
            buffer = self._buffers.get(request_id)
            if buffer is not None:
                candidates.extend(buffer)
            for snapshot in self.snapshots:
                candidates.extend(snapshot["events"])
        seen = set()
        found = []
        for record in candidates:
            if record.request == request_id and id(record) not in seen:
                seen.add(id(record))
                found.append(record)
        found.sort(key=lambda record: record.start)
        return found

    def timeline_dict(self, request_id: str) -> list:
        return [record.to_dict() for record in self.timeline(request_id)]

    # -- snapshots ------------------------------------------------------------

    def _maybe_auto_snapshot(self, record: SpanRecord) -> None:
        if record.duration is not None:
            return
        if record.name == "server.breaker" and \
                record.args.get("to") == "open":
            self.auto_snapshot(
                f"breaker-open:{record.args.get('scope', '?')}"
            )
        elif record.name == "server.pressure" and \
                record.args.get("to") == "CRITICAL":
            self.auto_snapshot("pressure-critical")

    def auto_snapshot(self, reason: str) -> dict:
        """Freeze the ring plus all open buffers under ``reason``."""
        with self._lock:
            events = list(self.events)
            for buffer in self._buffers.values():
                events.extend(buffer)
            snapshot = {
                "reason": reason,
                "at": time.time(),
                "events": events,
            }
            self.snapshots.append(snapshot)
            while len(self.snapshots) > self.max_snapshots:
                self.snapshots.pop(0)
        return snapshot

    def write_snapshots(self, directory: str) -> list:
        """Dump every snapshot (and the live ring) as Chrome-trace files."""
        os.makedirs(directory, exist_ok=True)
        written = []
        with self._lock:
            snapshots = list(self.snapshots)
            ring = list(self.events)
        for index, snapshot in enumerate(snapshots):
            slug = "".join(
                ch if ch.isalnum() or ch in "-_" else "-"
                for ch in snapshot["reason"]
            )
            path = os.path.join(directory, f"flight-{index}-{slug}.json")
            self._write_chrome(path, snapshot["events"])
            written.append(path)
        path = os.path.join(directory, "flight-ring.json")
        self._write_chrome(path, ring)
        written.append(path)
        return written

    def _write_chrome(self, path: str, records: list) -> None:
        from repro.observe.trace import _jsonable

        out = []
        for record in records:
            args = _jsonable(record.args)
            if record.request:
                args["request"] = record.request
                args["trace_id"] = record.trace_id
            entry = {
                "name": record.name,
                "cat": record.category,
                "ts": record.start * 1e6,
                "pid": 1,
                "tid": record.thread % 100000,
                "args": args,
            }
            if record.is_span():
                entry["ph"] = "X"
                entry["dur"] = record.duration * 1e6
            else:
                entry["ph"] = "i"
                entry["s"] = "t"
            out.append(entry)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(out, handle, indent=1)

    # -- reporting ------------------------------------------------------------

    def recent(self, limit: int = 50) -> list:
        """The newest ``limit`` retained records, oldest first."""
        with self._lock:
            ring = list(self.events)
        return ring[-max(0, limit):]

    def stats(self) -> dict:
        with self._lock:
            return {
                "sample": self.sample,
                "slow_seconds": self.slow_seconds,
                "ring_events": len(self.events),
                "ring_capacity": self.max_events,
                "open_requests": len(self._buffers),
                "retained_requests": self.retained_requests,
                "dropped_requests": self.dropped_requests,
                "truncated_requests": self.truncated_requests,
                "dropped_events": self.dropped_events,
                "snapshots": [
                    {"reason": s["reason"], "at": s["at"],
                     "events": len(s["events"])}
                    for s in self.snapshots
                ],
            }
