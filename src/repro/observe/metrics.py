"""Counters and quantile-capable histograms for ``repro.observe``.

A :class:`MetricsRegistry` is a flat namespace of monotonically increasing
**counters** (``count("eval.rule_applications")``) and value-recording
**histograms** (``observe("pipeline.pass.cse", seconds)``).  Metric names
are dotted paths whose first segment names the subsystem that emits them —
``eval.*``, ``vm.*``, ``pipeline.*``, ``hotspot.*``, ``guard.*``,
``server.*`` — so a JSON export groups naturally.

Histograms keep moments (count/total/min/max) *and* fixed log-scale
buckets — ten per decade, covering ``1e-9 .. ~1e5`` — so p50/p95/p99 are
first-class without per-value storage.  The layout is unit-agnostic: it
assumes only that observed values are positive and span at most fourteen
decades, which covers nanoseconds-to-hours in seconds, bytes, and counts
alike.  Quantile estimates carry the bucket's relative error (one tenth
of a decade, ≈ ±12%), clamped into the observed min/max.

Thread-safety contract (the server hammers one registry from its worker
pool): counters are **sharded per writer thread** — each thread bumps a
private dict, reads merge the shards — so the hot path takes no lock and
concurrent totals still reconcile exactly.  Histogram recording and all
snapshot reads serialize on one registry lock; they are orders of
magnitude rarer than counter bumps (per span vs per rule application).

Snapshots round-trip through JSON losslessly::

    registry.to_json() == MetricsRegistry.from_json(registry.to_json()).to_json()
"""

from __future__ import annotations

import json
import math
import threading
from typing import Optional

#: log-bucket layout: bucket ``i`` covers ``[10^(i/10), 10^((i+1)/10))``
BUCKETS_PER_DECADE = 10
_MIN_INDEX = -9 * BUCKETS_PER_DECADE   # 1e-9
_MAX_INDEX = 5 * BUCKETS_PER_DECADE - 1  # just under 1e5
_UNDERFLOW = _MIN_INDEX - 1              # values <= 0 (and < 1e-9)


def _bucket_index(value: float) -> int:
    if value <= 0.0:
        return _UNDERFLOW
    index = math.floor(math.log10(value) * BUCKETS_PER_DECADE)
    if index < _MIN_INDEX:
        return _UNDERFLOW
    return min(index, _MAX_INDEX)


class Histogram:
    """Streaming summary of observed values: moments plus log buckets."""

    __slots__ = ("count", "total", "minimum", "maximum", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        #: sparse ``bucket index -> observation count``
        self.buckets: dict[int, int] = {}

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        index = _bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, fraction: float) -> Optional[float]:
        """Estimate the ``fraction`` quantile from the log buckets.

        Returns ``None`` on an empty histogram (or one restored from a
        pre-bucket snapshot).  The estimate is the geometric midpoint of
        the bucket holding the target rank, clamped into the observed
        ``[min, max]``; the underflow bucket reports the observed minimum.
        """
        if not self.count or not self.buckets:
            return None
        target = max(1, math.ceil(fraction * self.count))
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                if index == _UNDERFLOW:
                    return self.minimum if self.minimum is not None else 0.0
                low = 10.0 ** (index / BUCKETS_PER_DECADE)
                high = 10.0 ** ((index + 1) / BUCKETS_PER_DECADE)
                estimate = math.sqrt(low * high)
                if self.maximum is not None:
                    estimate = min(estimate, self.maximum)
                if self.minimum is not None:
                    estimate = max(estimate, self.minimum)
                return estimate
        return self.maximum  # pragma: no cover - ranks always land above

    @property
    def p50(self) -> Optional[float]:
        return self.quantile(0.50)

    @property
    def p95(self) -> Optional[float]:
        return self.quantile(0.95)

    @property
    def p99(self) -> Optional[float]:
        return self.quantile(0.99)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": {
                str(index): self.buckets[index]
                for index in sorted(self.buckets)
            },
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    @classmethod
    def from_snapshot(cls, data: dict) -> "Histogram":
        histogram = cls()
        histogram.count = data["count"]
        histogram.total = data["total"]
        histogram.minimum = data["min"]
        histogram.maximum = data["max"]
        histogram.buckets = {
            int(index): count
            for index, count in data.get("buckets", {}).items()
        }
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Histogram n={self.count} total={self.total:.6g} "
            f"min={self.minimum} max={self.maximum} p99={self.p99}>"
        )


class MetricsRegistry:
    """A named collection of counters and histograms with JSON export."""

    def __init__(self):
        self._lock = threading.Lock()
        self._tls = threading.local()
        #: one private counter dict per writer thread (single-writer each)
        self._shards: list[dict] = []
        #: counters restored from snapshots / merged by ``from_dict``
        self._base: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- recording -----------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        shard = getattr(self._tls, "shard", None)
        if shard is None:
            shard = self._tls.shard = {}
            with self._lock:
                self._shards.append(shard)
        shard[name] = shard.get(name, 0) + delta

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.record(value)

    # -- reading -------------------------------------------------------------

    @property
    def counters(self) -> dict:
        """Merged view of the base counters plus every thread's shard."""
        with self._lock:
            shards = list(self._shards)
            merged = dict(self._base)
        for shard in shards:
            # list(...) snapshots the shard in one GIL-atomic C call, so a
            # concurrently writing owner thread cannot resize it mid-walk
            for name, value in list(shard.items()):
                merged[name] = merged.get(name, 0) + value
        return merged

    def counter(self, name: str) -> int:
        with self._lock:
            shards = list(self._shards)
            total = self._base.get(name, 0)
        for shard in shards:
            total += shard.get(name, 0)
        return total

    def histogram(self, name: str) -> Optional[Histogram]:
        return self.histograms.get(name)

    def clear(self) -> None:
        with self._lock:
            self._base.clear()
            for shard in self._shards:
                shard.clear()
            self.histograms.clear()

    # -- export --------------------------------------------------------------

    def as_dict(self) -> dict:
        counters = self.counters
        with self._lock:
            snapshots = {
                name: histogram.snapshot()
                for name, histogram in sorted(self.histograms.items())
            }
        return {
            "counters": dict(sorted(counters.items())),
            "histograms": snapshots,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        registry = cls()
        registry._base.update(data.get("counters", {}))
        for name, snapshot in data.get("histograms", {}).items():
            registry.histograms[name] = Histogram.from_snapshot(snapshot)
        return registry

    @classmethod
    def from_json(cls, text: str) -> "MetricsRegistry":
        return cls.from_dict(json.loads(text))

    def __eq__(self, other) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricsRegistry counters={len(self.counters)} "
            f"histograms={len(self.histograms)}>"
        )
