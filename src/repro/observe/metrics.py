"""Counters and histograms for the observability layer (`repro.observe`).

A :class:`MetricsRegistry` is a flat namespace of monotonically increasing
**counters** (``count("eval.rule_applications")``) and value-recording
**histograms** (``observe("pipeline.pass.cse", seconds)``).  Metric names
are dotted paths whose first segment names the subsystem that emits them —
``eval.*``, ``vm.*``, ``pipeline.*``, ``hotspot.*``, ``guard.*`` — so a
JSON export groups naturally.

The registry is deliberately dumb: plain dict updates under the GIL, no
locks, no background flushing.  The evaluator runs one computation per
session thread, and the hot-path contract lives one level up — nothing in
this module is ever called when tracing is disabled (see
:mod:`repro.observe.trace` for the module-level guard flag).

Snapshots round-trip through JSON losslessly::

    registry.to_json() == MetricsRegistry.from_json(registry.to_json()).to_json()
"""

from __future__ import annotations

import json
from typing import Optional


class Histogram:
    """Streaming summary of observed values: count/total/min/max.

    We keep moments, not buckets: the consumers (the ``--metrics`` report,
    the perf-smoke job) want per-pass totals and extremes, and a fixed
    bucket layout would bake in assumptions about units.
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }

    @classmethod
    def from_snapshot(cls, data: dict) -> "Histogram":
        histogram = cls()
        histogram.count = data["count"]
        histogram.total = data["total"]
        histogram.minimum = data["min"]
        histogram.maximum = data["max"]
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Histogram n={self.count} total={self.total:.6g} "
            f"min={self.minimum} max={self.maximum}>"
        )


class MetricsRegistry:
    """A named collection of counters and histograms with JSON export."""

    def __init__(self):
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- recording -----------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.record(value)

    # -- reading -------------------------------------------------------------

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self.histograms.get(name)

    def clear(self) -> None:
        self.counters.clear()
        self.histograms.clear()

    # -- export --------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        registry = cls()
        registry.counters.update(data.get("counters", {}))
        for name, snapshot in data.get("histograms", {}).items():
            registry.histograms[name] = Histogram.from_snapshot(snapshot)
        return registry

    @classmethod
    def from_json(cls, text: str) -> "MetricsRegistry":
        return cls.from_dict(json.loads(text))

    def __eq__(self, other) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricsRegistry counters={len(self.counters)} "
            f"histograms={len(self.histograms)}>"
        )
