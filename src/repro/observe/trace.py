"""Structured-event tracing with a zero-overhead-when-disabled guard.

The tracer answers the question the static ``--stats`` table cannot:
*where does the time go* across the three execution tiers and the compiler
pipeline.  It records two event shapes:

* **spans** — named intervals with wall-clock start/duration, emitted by
  the evaluator (top-level evaluations), the compiler pipeline (one span
  per pass, with IR node-count deltas), the WVM (per run), and the hotspot
  profiler (promotion attempts);
* **instant events** — point occurrences such as ``tier.promote``,
  ``tier.demote``, and ``guard.trip``, carrying structured ``args``.

Hot-path contract
-----------------

The module-level :data:`TRACER` is the *only* thing instrumentation sites
touch when tracing is off: one module-attribute load and a ``None`` test,
the same disarmed-cost discipline :mod:`repro.testing.faults` uses for its
injection sites.  No formatting, no allocation, no clock read happens
unless a tracer is installed.  Sites look like::

    from repro.observe import trace as _trace
    ...
    tracer = _trace.TRACER
    if tracer is not None:
        tracer.metrics.count("eval.rule_applications")

Export
------

:meth:`Tracer.chrome_trace` renders the recorded events in the Chrome
trace-event JSON format (the ``[{"ph": "X", "ts": ..., "dur": ...}, ...]``
array form), loadable in ``chrome://tracing`` and Perfetto;
:meth:`Tracer.write_chrome_trace` writes it to a file.  Timestamps are
microseconds relative to tracer creation.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.observe import context as _context
from repro.observe.metrics import MetricsRegistry

#: default span-buffer bound — generous (a traced bench run records a few
#: thousand events), but a *bound*: before PR 9 a long traced session grew
#: ``Tracer.events`` without limit
DEFAULT_MAX_SPANS = 100_000


def max_spans_from_environment() -> int:
    """``REPRO_TRACE_MAX_SPANS``, falling back to the default on junk."""
    raw = os.environ.get("REPRO_TRACE_MAX_SPANS", "")
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_MAX_SPANS
    return value if value > 0 else DEFAULT_MAX_SPANS


@dataclass
class SpanRecord:
    """One finished interval (or instant, when ``duration`` is ``None``)."""

    name: str
    category: str
    #: seconds since the tracer's origin
    start: float
    #: seconds; ``None`` marks an instant event
    duration: Optional[float]
    #: structured payload (symbol names, counts, IR sizes, ...)
    args: dict = field(default_factory=dict)
    #: name of the enclosing span on the same thread, "" at top level
    parent: str = ""
    #: nesting depth at emission time (0 = top level)
    depth: int = 0
    thread: int = 0
    #: owning request / distributed trace, "" outside any request scope
    #: (stamped from :mod:`repro.observe.context` at creation time)
    request: str = ""
    trace_id: str = ""

    def is_span(self) -> bool:
        return self.duration is not None

    def to_dict(self) -> dict:
        """The wire form the server's ``events``/``trace`` ops return."""
        payload = {
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "duration": self.duration,
            "args": _jsonable(self.args),
            "thread": self.thread,
            "depth": self.depth,
        }
        if self.request:
            payload["request"] = self.request
        if self.trace_id:
            payload["trace_id"] = self.trace_id
        return payload


class Tracer:
    """Collects spans, instant events, and metrics for one tracing session."""

    #: background tracers (the flight recorder) yield the ``TRACER`` slot
    #: to an explicit ``with_tracing`` block instead of making it raise
    background = False

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 max_spans: Optional[int] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: bounded record stream: deque.append is atomic under the GIL, so
        #: the hot path takes no lock; eviction past ``max_spans`` runs
        #: under ``_evict_lock`` so concurrent emitters cannot double-pop
        self.events: deque[SpanRecord] = deque()
        self.max_spans = (max_spans if max_spans is not None
                          else max_spans_from_environment())
        #: spans evicted oldest-first once the buffer filled
        self.dropped_spans = 0
        self._evict_lock = threading.Lock()
        self._origin = time.perf_counter()
        self._tls = threading.local()

    # -- clock ---------------------------------------------------------------

    def now(self) -> float:
        """Seconds since tracer creation (the span timebase)."""
        return time.perf_counter() - self._origin

    def since(self, perf_counter_value: float) -> float:
        """Convert a raw ``time.perf_counter()`` reading to the timebase."""
        return perf_counter_value - self._origin

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _record(self, name: str, category: str, start: float,
                duration: Optional[float], args: dict) -> SpanRecord:
        """Build one record, stamped with the active request context."""
        stack = self._stack()
        record = SpanRecord(
            name=name,
            category=category,
            start=start,
            duration=duration,
            args=args,
            parent=stack[-1].name if stack else "",
            depth=len(stack),
            thread=threading.get_ident(),
        )
        context = _context.CURRENT.get()
        if context is not None:
            record.request = context.request_id
            record.trace_id = context.trace_id
        return record

    def _emit(self, record: SpanRecord) -> None:
        """Append one finished record; evict oldest-first past the bound."""
        events = self.events
        events.append(record)
        if len(events) > self.max_spans:
            with self._evict_lock:
                while len(events) > self.max_spans:
                    try:
                        events.popleft()
                    except IndexError:  # pragma: no cover - racing eviction
                        break
                    self.dropped_spans += 1

    # -- spans ---------------------------------------------------------------

    @contextmanager
    def span(self, name: str, category: str = "repro", **args) -> Iterator[SpanRecord]:
        """Record a named interval around the block (nesting-aware)."""
        record = self._record(name, category, self.now(), None, dict(args))
        stack = self._stack()
        stack.append(record)
        try:
            yield record
        finally:
            stack.pop()
            record.duration = self.now() - record.start
            self._emit(record)

    def complete(
        self, name: str, category: str, start: float, **args
    ) -> SpanRecord:
        """Record an already-finished interval begun at ``start`` (a value
        from :meth:`now`); for sites where a ``with`` block is awkward."""
        record = self._record(name, category, start,
                              self.now() - start, dict(args))
        self._emit(record)
        return record

    # -- instants and counters ----------------------------------------------

    def event(self, name: str, category: str = "repro", **args) -> SpanRecord:
        """Record an instant event (``tier.promote``, ``guard.trip``, ...)."""
        record = self._record(name, category, self.now(), None, dict(args))
        self._emit(record)
        return record

    def count(self, name: str, delta: int = 1) -> None:
        self.metrics.count(name, delta)

    # -- queries -------------------------------------------------------------

    def spans(self, name: Optional[str] = None,
              category: Optional[str] = None,
              request: Optional[str] = None) -> list[SpanRecord]:
        found = [e for e in self.events if e.is_span()]
        if name is not None:
            found = [e for e in found if e.name == name]
        if category is not None:
            found = [e for e in found if e.category == category]
        if request is not None:
            found = [e for e in found if e.request == request]
        return found

    def instants(self, name: Optional[str] = None,
                 request: Optional[str] = None) -> list[SpanRecord]:
        found = [e for e in self.events if not e.is_span()]
        if name is not None:
            found = [e for e in found if e.name == name]
        if request is not None:
            found = [e for e in found if e.request == request]
        return found

    def categories(self) -> set[str]:
        return {e.category for e in self.events}

    # -- Chrome-trace export --------------------------------------------------

    def chrome_trace(self) -> list[dict]:
        """The trace-event array (``chrome://tracing`` / Perfetto JSON)."""
        out = []
        for record in list(self.events):
            args = _jsonable(record.args)
            if record.request:
                args["request"] = record.request
                args["trace_id"] = record.trace_id
            entry = {
                "name": record.name,
                "cat": record.category,
                "ts": record.start * 1e6,
                "pid": 1,
                "tid": record.thread % 100000,
                "args": args,
            }
            if record.is_span():
                entry["ph"] = "X"
                entry["dur"] = record.duration * 1e6
            else:
                entry["ph"] = "i"
                entry["s"] = "t"  # thread-scoped instant
            out.append(entry)
        return out

    def write_chrome_trace(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, indent=1)
        return path


def _jsonable(args: dict) -> dict:
    """Chrome-trace ``args`` must be JSON-serializable; stringify the rest."""
    out = {}
    for key, value in args.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = str(value)
    return out


# -- the module-level guard flag ----------------------------------------------------

#: the active tracer; ``None`` when tracing is disabled (the common case).
#: Hot paths load this attribute and test ``is not None`` — nothing else.
TRACER: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    return TRACER


def enable_tracing(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process-wide tracer."""
    global TRACER
    if tracer is None:
        tracer = Tracer()
    TRACER = tracer
    return tracer


def disable_tracing() -> Optional[Tracer]:
    """Remove the active tracer and return it (for inspection/export)."""
    global TRACER
    tracer = TRACER
    TRACER = None
    return tracer


@contextmanager
def with_tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Scope tracing to a block — the test/benchmark entry point.

    Not reentrant: nested ``with_tracing`` blocks would silently splice
    streams, so a second activation raises while one is live (mirroring
    :func:`repro.testing.faults.inject_faults`).  The always-on flight
    recorder is the one exception — a *background* tracer steps aside for
    the explicit block and is reinstalled afterwards, so ``--trace`` and
    the recorder coexist.
    """
    global TRACER
    stashed = TRACER
    if stashed is not None and not stashed.background:
        raise RuntimeError("tracing is already enabled")
    active = enable_tracing(tracer)
    try:
        yield active
    finally:
        TRACER = stashed
