"""``repro.perflab`` — the continuous performance-observability subsystem.

Where :mod:`repro.observe` answers *where does the time go inside one
run* (spans, counters, Chrome traces), the perflab answers *how does
performance move across commits*: one declarative registry of every
benchmark in the repo, one rigorous timing core, one schema-versioned
trajectory store, and one comparator that tells improvement from noise
from regression.  Driven by ``python -m repro bench``.

Modules
-------

``stats``     shared timing core (warmup, gc paused, min/median/MAD,
              dispersion flag) — also used by the Figure-2 harness and
              the ``benchmarks/*.py`` scripts
``registry``  ``BenchSpec`` table wrapping every workload (Figure 2,
              dispatch/tier-up, ablations, FindRoot auto-compile,
              compile time, soft failure)
``runner``    executes specs, captures per-benchmark traces and an
              embedded ``repro.observe`` metrics snapshot
``store``     appends schema-v1 records to ``BENCH_*.json`` (and
              migrates pre-schema records on first touch)
``compare``   noise-aware improved/stable/noisy/regressed verdicts
``report``    the markdown report with the Figure-2 normalized table
``cli``       the ``python -m repro bench`` subcommand

Only :mod:`~repro.perflab.stats` is imported eagerly: the registry pulls
in the benchmark suite (which itself uses the timing core), so the
heavier modules load on first attribute access.
"""

from repro.perflab.stats import (  # noqa: F401
    Sample,
    best_of,
    mad,
    measure,
    median,
    noise_threshold,
    scalar,
)

__all__ = [
    "Sample", "best_of", "mad", "measure", "median", "noise_threshold",
    "scalar",
    "stats", "registry", "runner", "store", "compare", "report", "cli",
]

_LAZY = ("registry", "runner", "store", "compare", "report", "cli")


def __getattr__(name):
    if name in _LAZY:
        import importlib

        return importlib.import_module(f"repro.perflab.{name}")
    raise AttributeError(f"module 'repro.perflab' has no attribute {name!r}")
