"""``python -m repro bench`` — the unified benchmark entry point.

One invocation replaces the eleven per-script commands: select specs
(``--suite``/``--filter``), run them through the rigorous timing core,
append schema-versioned records to the ``BENCH_*.json`` trajectory
files, and optionally diff against the trajectory baseline
(``--compare``), render a markdown report (``--report``), and capture
per-benchmark Chrome traces (``--trace-dir``).

Exit status: non-zero only when ``--compare`` finds a regression beyond
the noise-widened threshold; ``noisy`` verdicts soft-warn and pass —
the CI perf job relies on exactly this contract.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.benchsuite.data import bench_scale
from repro.perflab import compare as comparison
from repro.perflab import report as reporting
from repro.perflab.registry import RunConfig, SUITES, resolve_specs
from repro.perflab.runner import run_specs
from repro.perflab.store import ARTIFACT_FILES, TrajectoryStore, default_root


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="run the registered benchmark suites and append "
                    "schema-versioned records to the BENCH_*.json "
                    "performance trajectory",
    )
    parser.add_argument(
        "--suite", default="smoke",
        help=f"suite to run: one of {sorted(SUITES)}, 'smoke' "
             "(fast CI subset, the default), or 'all'",
    )
    parser.add_argument(
        "--filter", dest="name_filter", default=None, metavar="NAME",
        help="only specs whose name contains NAME "
             "(e.g. 'figure2.fnv1a', 'ablation')",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="diff the new records against the trajectory baseline and "
             "print a per-measurement verdict (exit 1 on regression)",
    )
    parser.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the markdown perf report to FILE",
    )
    parser.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="capture a per-benchmark Chrome trace of each spec's probe "
             "run into DIR",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="workload scale (default: REPRO_BENCH_SCALE or the CI size)",
    )
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repeats per measurement (default 3)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="untimed warmup iterations (default 1)")
    parser.add_argument(
        "--bench-dir", metavar="DIR", default=None,
        help="directory holding the BENCH_*.json files "
             "(default: the repo root)",
    )
    parser.add_argument(
        "--no-append", action="store_true",
        help="run and compare without writing the trajectory files",
    )
    parser.add_argument("--list", action="store_true", dest="list_specs",
                        help="list the selected specs and exit")
    return parser


def main(argv=None, output=None) -> int:
    out = output or sys.stdout
    # Compile-time measurements must time the *pipeline*, not a cache
    # probe: a warm persistent artifact cache would silently turn
    # compiler.compile_time (and every compile inside a timed region)
    # into microsecond lookups.  Specs that measure the cache, like
    # aot.warm_boot, manage their own isolated stores.
    os.environ["REPRO_ARTIFACT_CACHE"] = "off"
    try:
        args = _parser().parse_args(
            list(sys.argv[2:] if argv is None else argv))
    except SystemExit as error:
        return int(error.code or 0)

    try:
        specs = resolve_specs(args.suite, args.name_filter)
    except ValueError as error:
        out.write(f"error: {error}\n")
        return 2
    if not specs:
        out.write(f"error: no benchmarks match --suite {args.suite!r}"
                  f" --filter {args.name_filter!r}\n")
        return 2
    if args.list_specs:
        for spec in specs:
            out.write(f"{spec.name:<34} [{spec.suite} -> "
                      f"{ARTIFACT_FILES[spec.artifact]}] {spec.title}\n")
        return 0

    scale = args.scale if args.scale is not None else bench_scale()
    config = RunConfig(scale=scale, repeats=args.repeats,
                       warmup=args.warmup, trace_dir=args.trace_dir)
    store = TrajectoryStore(args.bench_dir or default_root())

    out.write(f"perflab: {len(specs)} benchmark(s), suite={args.suite}, "
              f"scale={scale}, repeats={args.repeats}\n")
    records = run_specs(specs, config, suite_label=args.suite,
                        store=store, out=out)

    # baselines come from the trajectory as it stood BEFORE this run
    baselines = {}
    verdicts = {}
    for artifact, record in sorted(records.items()):
        trajectory = store.load(artifact)
        baselines[artifact] = comparison.baseline_record(
            trajectory, scale=scale)
        if args.compare:
            verdicts[artifact] = comparison.compare_records(
                record, baselines[artifact])

    if not args.no_append:
        for artifact, record in sorted(records.items()):
            path = store.append(artifact, record)
            out.write(f"appended record -> {path}\n")

    status = 0
    if args.compare:
        out.write("\n-- trajectory comparison --\n")
        for artifact in sorted(verdicts):
            for verdict in verdicts[artifact]:
                out.write(verdict.describe() + "\n")
        worst = comparison.worst_status(
            [v for vs in verdicts.values() for v in vs])
        if worst == "regressed":
            out.write("\nFAIL: at least one benchmark regressed beyond "
                      "the noise threshold\n")
            status = 1
        elif worst == "noisy":
            out.write("\nwarning: movement beyond the base threshold but "
                      "within measurement noise (soft-warn, not failing)\n")
        else:
            out.write(f"\nok: trajectory {worst}\n")

    if args.report:
        text = reporting.render_markdown(records, verdicts, baselines)
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(text)
        out.write(f"report -> {args.report}\n")
    if args.trace_dir:
        out.write(f"traces -> {args.trace_dir}\n")
    return status
