"""Noise-aware trajectory comparison: improved / stable / noisy / regressed.

The comparator diffs the newest BENCH record against a baseline from the
trajectory and classifies every ``(benchmark, measurement)`` pair.  The
classification is deliberately conservative — a perf gate that fires on
timer jitter trains people to ignore it:

* timings compare on **best-of-N** (the classic contention-robust
  estimator), and seconds-unit baselines are rescaled by the two
  records' **calibration ratio** — a fixed spin loop timed when each
  record was taken — so a uniformly slower machine (CPU contention,
  frequency scaling, different host) doesn't read as a code regression;
* the **relative delta** is sign-normalized so positive always means
  "worse" (for ``direction: higher`` measurements like speedup factors,
  a drop is the regression);
* the **regression threshold** (default 50%, ``REPRO_BENCH_THRESHOLD``;
  CI boxes burst-throttle by ±30%, so anything tighter cries wolf) is
  widened to ``noise_scale x`` the larger of the two samples' relative
  MADs, so dispersed measurements must move further to count;
* deltas that land between the base threshold and the widened one are
  ``noisy`` — reported, soft-warned in CI, but not failing;
* second-resolution measurements whose absolute movement is under the
  **timer floor** (default 1 ms) are ``stable`` regardless of ratio —
  a 40 µs wobble on an 80 µs benchmark is not a 50% regression;
* measurements marked ``"gate": false`` (derived ratios whose arms are
  both gated on their own — gating the quotient double-counts the same
  jitter with worse statistics) report movement but cap at ``noisy``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

#: relative slowdown beyond which (after noise widening) a measurement regresses
DEFAULT_REGRESSION_THRESHOLD = 0.5
#: how many relative MADs widen the threshold for dispersed samples
DEFAULT_NOISE_SCALE = 4.0
#: absolute movement (seconds) below which a timing delta is timer noise
DEFAULT_MIN_DELTA_SECONDS = 0.001

#: ranking for summarizing a run; later = worse
STATUS_ORDER = ("new", "improved", "stable", "noisy", "regressed")


def regression_threshold(default: float = DEFAULT_REGRESSION_THRESHOLD) -> float:
    raw = os.environ.get("REPRO_BENCH_THRESHOLD")
    if raw is None:
        return default
    return float(raw)


@dataclass(frozen=True)
class Verdict:
    benchmark: str
    measurement: str
    status: str
    current: float
    baseline: Optional[float] = None
    #: sign-normalized relative delta (positive = worse); None for "new"
    delta: Optional[float] = None
    #: the noise-widened threshold the delta was judged against
    threshold: Optional[float] = None
    unit: str = "seconds"
    direction: str = "lower"

    def describe(self) -> str:
        label = f"{self.benchmark}/{self.measurement}"
        if self.status == "new":
            return f"{label:<44} new        {_fmt(self.current, self.unit)}"
        sign = "+" if self.delta >= 0 else ""
        return (
            f"{label:<44} {self.status:<10} "
            f"{sign}{self.delta * 100:.1f}% "
            f"({_fmt(self.baseline, self.unit)} -> "
            f"{_fmt(self.current, self.unit)}, "
            f"threshold {self.threshold * 100:.0f}%)"
        )


def _fmt(value: float, unit: str) -> str:
    if unit == "seconds":
        if value >= 1.0:
            return f"{value:.3f}s"
        return f"{value * 1000:.3g}ms"
    return f"{value:.3g}{'' if unit == 'x' else ' ' + unit}"


def classify(current: dict, baseline: Optional[dict],
             base_threshold: Optional[float] = None,
             noise_scale: float = DEFAULT_NOISE_SCALE,
             min_delta_seconds: float = DEFAULT_MIN_DELTA_SECONDS,
             calibration_ratio: float = 1.0,
             benchmark: str = "", measurement: str = "") -> Verdict:
    """Judge one measurement against its baseline counterpart."""
    unit = current.get("unit", "seconds")
    direction = current.get("direction", "lower")
    cur = current.get("best", current["median"])
    if baseline is None:
        return Verdict(benchmark, measurement, "new", cur,
                       unit=unit, direction=direction)
    base = baseline.get("best", baseline["median"])
    cur_raw, base_raw = cur, base
    if current.get("best_units") and baseline.get("best_units"):
        # both sides carry per-repeat spin-loop witnesses: judge in
        # machine-neutral work units, which cancel the load burst at the
        # exact moment it hit the timed region
        cur = current["best_units"]
        base = baseline["best_units"]
    elif unit == "seconds":
        # rescale the baseline to this run's machine speed; ratios and
        # factors are already machine-neutral
        base = base * calibration_ratio
    if base_threshold is None:
        # a spec may declare a wider tolerance for a measurement whose
        # value is legitimately volatile (e.g. a 70x tier-up factor
        # whose denominator is a ~1ms region)
        base_threshold = current.get("threshold")
    if base_threshold is None:
        base_threshold = regression_threshold()

    if direction == "higher":
        delta = (base - cur) / base if base else 0.0
    else:
        delta = (cur - base) / base if base else 0.0

    rel_mads = []
    for m in (current, baseline):
        med, spread = m.get("median") or 0.0, m.get("mad") or 0.0
        if med > 0:
            rel_mads.append(spread / med)
    widened = max(base_threshold,
                  noise_scale * max(rel_mads, default=0.0))

    if unit == "seconds" and abs(cur_raw - base_raw) < min_delta_seconds:
        status = "stable"
    elif delta > widened:
        status = "regressed"
    elif delta > base_threshold:
        status = "noisy"
    elif delta < -widened:
        status = "improved"
    else:
        status = "stable"
    if status == "regressed" and not current.get("gate", True):
        status = "noisy"  # informational measurement: report, never fail
    # display raw values (human-readable); the delta is judged on the
    # machine-neutral form, so it may differ from the raw quotient
    return Verdict(benchmark, measurement, status, cur_raw, base_raw,
                   delta, widened, unit, direction)


def calibration_ratio(current: Optional[dict], baseline: Optional[dict],
                      clamp: float = 4.0) -> float:
    """``current_calibration / baseline_calibration``: >1 means this run's
    machine is slower, so second-unit baselines are scaled up before the
    delta is taken.  Clamped — a wildly different calibration means the
    records aren't comparable, not that the machine is 40x slower."""
    cur = (current or {}).get("calibration_seconds")
    base = (baseline or {}).get("calibration_seconds")
    if not cur or not base:
        return 1.0
    ratio = cur / base
    return min(max(ratio, 1.0 / clamp), clamp)


def compare_records(current: dict, baseline: Optional[dict],
                    **thresholds) -> list:
    """Verdicts for every measurement in ``current``; measurements the
    baseline record lacks come back as ``new``."""
    verdicts = []
    base_benchmarks = (baseline or {}).get("benchmarks") or {}
    record_cal = calibration_ratio(current, baseline) if baseline else 1.0
    for bench_name, entry in sorted(current.get("benchmarks", {}).items()):
        base_entry = base_benchmarks.get(bench_name) or {}
        base_measurements = base_entry.get("measurements") or {}
        # prefer the calibration taken right next to this benchmark —
        # contention drifts *within* a run, so the record-level ratio
        # under- or over-corrects individual specs
        bench_cal = calibration_ratio(entry, base_entry)
        cal = bench_cal if bench_cal != 1.0 else record_cal
        for key, measurement in sorted(entry.get("measurements", {}).items()):
            verdicts.append(classify(
                measurement, base_measurements.get(key),
                calibration_ratio=cal,
                benchmark=bench_name, measurement=key, **thresholds,
            ))
    return verdicts


def baseline_record(trajectory, scale: Optional[float] = None,
                    suite: Optional[str] = None) -> Optional[dict]:
    """The comparison baseline: the most recent prior record, preferring
    one taken at the same scale (and suite, when given) so workload-size
    changes don't masquerade as perf movement."""
    if not trajectory:
        return None
    candidates = list(trajectory)
    if scale is not None:
        same_scale = [r for r in candidates if r.get("scale") == scale]
        if same_scale:
            candidates = same_scale
    if suite is not None:
        same_suite = [r for r in candidates if r.get("suite") == suite]
        if same_suite:
            candidates = same_suite
    return candidates[-1]


def worst_status(verdicts) -> str:
    """The most severe status present ('stable' for an empty list)."""
    worst = "stable"
    for verdict in verdicts:
        if STATUS_ORDER.index(verdict.status) > STATUS_ORDER.index(worst):
            worst = verdict.status
    return worst
