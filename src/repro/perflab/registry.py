"""The declarative benchmark registry: every workload in the repo as a
named :class:`BenchSpec`.

One table replaces eleven ad-hoc script entry points: the seven Figure-2
kernels (via :class:`~repro.benchsuite.harness.Figure2Harness`, checksum
verification included), the dispatch/tier-up microbenchmarks, the four §6
ablations, the §1 FindRoot auto-compile experiment, §5 compile time, and
the §2.2 soft-failure transcript.  Each spec declares

* ``suite`` — the group ``python -m repro bench --suite`` selects
  (``figure2``, ``dispatch``, ``evaluator``, ``ablations``, ``compiler``),
* ``artifact`` — which ``BENCH_*.json`` trajectory file its record joins,
* ``run`` — the measured workload, returning :class:`SpecResult`
  measurements built on :mod:`repro.perflab.stats`,
* ``probe`` — a small representative run executed *outside* the timed
  region under an active tracer, feeding the record's embedded
  ``repro.observe`` metrics snapshot and the per-benchmark Chrome trace,
* ``smoke`` — membership in the fast CI suite.

Specs verify their answers (tier checksums, known fib values, identical
roots) and record ``verified`` so a trajectory point that silently
computed garbage is distinguishable from a healthy one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.perflab import stats

SUITES = ("figure2", "dispatch", "evaluator", "ablations", "compiler",
          "server")


@dataclass(frozen=True)
class RunConfig:
    """One ``repro bench`` invocation's knobs."""

    scale: float
    repeats: int = 3
    warmup: int = 1
    trace_dir: Optional[str] = None


@dataclass
class SpecResult:
    measurements: dict
    meta: dict = field(default_factory=dict)
    verified: Optional[bool] = None


@dataclass(frozen=True)
class BenchSpec:
    name: str
    suite: str
    artifact: str
    title: str
    run: Callable[[RunConfig], SpecResult]
    probe: Optional[Callable[[RunConfig], None]] = None
    smoke: bool = False


# -- Figure 2 ---------------------------------------------------------------


def _figure2_run(name: str):
    def run(config: RunConfig) -> SpecResult:
        from repro.benchsuite import Figure2Harness

        harness = Figure2Harness(scale=config.scale,
                                 repeats=config.repeats,
                                 warmup=config.warmup)
        result = harness.run(name)  # _verify raises on checksum mismatch
        measurements: dict = {}
        meta: dict = {}
        for tier, tr in result.tiers.items():
            if tr.seconds is None:
                meta[f"{tier}_note"] = tr.note or "unsupported"
                continue
            if tr.sample is not None:
                measurements[f"{tier}_seconds"] = tr.sample.as_measurement()
            else:
                measurements[f"{tier}_seconds"] = stats.scalar(tr.seconds)
            if tr.note:
                meta[f"{tier}_note"] = tr.note
        c_sample = result.tiers.get("c_port")
        c_sample = c_sample.sample if c_sample is not None else None
        for tier in ("new", "bytecode"):
            tr = result.tiers.get(tier)
            if tr is None or tr.seconds is None:
                continue
            # pairwise repeat ratios keep real dispersion so the
            # comparator can widen its threshold on jittery arms
            if c_sample is not None and tr.sample is not None:
                ratio_m = stats.ratio_sample(
                    tr.sample, c_sample).as_measurement()
            else:
                ratio = result.ratio(tier)
                if ratio is None:
                    continue
                ratio_m = stats.scalar(ratio, unit="x")
            # both arms gate on their own; the quotient is informational
            ratio_m["gate"] = False
            measurements[f"{tier}_vs_c_ratio"] = ratio_m
        return SpecResult(measurements, meta, verified=True)

    return run


def _figure2_probe(name: str):
    def probe(config: RunConfig) -> None:
        from repro.benchsuite import programs, reference
        from repro.compiler import FunctionCompile

        source = getattr(programs, f"NEW_{name.upper()}")
        # the compile pipeline is the trace payload (pass:<name> spans)
        if name == "primeq":
            FunctionCompile(source, constants={
                "primeTable": reference.prime_sieve_bitmap(),
                "witnesses": programs.RM_WITNESSES,
            })
        else:
            FunctionCompile(source)

    return probe


# -- dispatch / tier-up ------------------------------------------------------


def _tierup_run(config: RunConfig) -> SpecResult:
    from repro.benchsuite import dispatch
    from repro.mexpr import parse

    warm, call, expected = dispatch.fib_workload(config.scale)
    interpreted = dispatch.fib_session(promote=False)
    promoted = dispatch.fib_session(promote=True)
    promoted.evaluate(parse(warm))  # cross the threshold before timing
    verified = (
        "fib" in promoted.hotspot.promoted
        and interpreted.evaluate(parse(call)).to_python() == expected
        and promoted.evaluate(parse(call)).to_python() == expected
    )
    call_expr = parse(call)
    s_interp, _ = stats.measure(interpreted.evaluate, call_expr,
                                repeats=config.repeats, warmup=0)
    s_prom, _ = stats.measure(promoted.evaluate, call_expr,
                              repeats=config.repeats, warmup=0, inner=5)
    factor = stats.ratio_sample(s_interp, s_prom).as_measurement(
        direction="higher")
    # the factor's denominator is a ~1ms region, so its value swings with
    # machine load while staying far above 1; both arms gate on their own
    factor["gate"] = False
    return SpecResult(
        {
            "interpreted_seconds": s_interp.as_measurement(),
            "promoted_seconds": s_prom.as_measurement(),
            "factor": factor,
        },
        meta={
            "workload": f"recursive-downvalue {call}",
            "promoted_tier": promoted.hotspot.promoted["fib"].tier_kind
            if "fib" in promoted.hotspot.promoted else None,
        },
        verified=verified,
    )


def _tierup_probe(config: RunConfig) -> None:
    from repro.benchsuite import dispatch
    from repro.mexpr import parse

    warm, _call, _ = dispatch.fib_workload(config.scale)
    session = dispatch.fib_session(promote=True)
    session.evaluate_protected(parse(warm))  # hotspot.promote span


def _orderless_run(config: RunConfig) -> SpecResult:
    from repro.benchsuite import dispatch
    from repro.engine import Evaluator
    from repro.mexpr import parse

    session = Evaluator()
    source = parse(dispatch.orderless_source())
    sample, _ = stats.measure(session.evaluate, source,
                              repeats=config.repeats,
                              warmup=config.warmup)
    return SpecResult({"seconds": sample.as_measurement()}, verified=True)


def _orderless_probe(config: RunConfig) -> None:
    from repro.benchsuite import dispatch
    from repro.engine import Evaluator
    from repro.mexpr import parse

    Evaluator().evaluate_protected(parse(dispatch.orderless_source(20)))


def _thousand_rule_run(config: RunConfig) -> SpecResult:
    from repro.benchsuite import dispatch
    from repro.mexpr import parse

    session = dispatch.ruletable_session()
    calls = [parse(f"table[{index}]") for index in range(0, 1000, 7)]
    expected = [index * index for index in range(0, 1000, 7)]

    def lookup_all():
        return [session.evaluate(call).to_python() for call in calls]

    sample, answers = stats.measure(lookup_all, repeats=config.repeats,
                                    warmup=config.warmup)
    return SpecResult({"seconds": sample.as_measurement()},
                      verified=answers == expected)


def _thousand_rule_probe(config: RunConfig) -> None:
    from repro.benchsuite import dispatch
    from repro.mexpr import parse

    session = dispatch.ruletable_session(rules=50)
    session.evaluate_protected(parse("table[7]"))  # dispatch-index counters


# -- §1: FindRoot auto-compilation ------------------------------------------


_FINDROOT = "FindRoot[Cos[x]*Exp[x] - x*x + Sin[3.0*x], {x, 0.5}]"


def _autocompile_run(config: RunConfig) -> SpecResult:
    from repro.compiler import disable_auto_compilation, enable_auto_compilation
    from repro.engine import Evaluator
    from repro.mexpr import full_form, parse

    program = parse(_FINDROOT)
    solves = max(2, config.repeats)

    interpreted = Evaluator()
    disable_auto_compilation(interpreted)
    compiled = Evaluator()
    enable_auto_compilation(compiled)
    root_interp = interpreted.evaluate(program)
    root_compiled = compiled.evaluate(program)  # warms the compile cache
    verified = full_form(root_interp) == full_form(root_compiled)

    def solve_many(session):
        for _ in range(solves):
            session.evaluate(program)

    s_interp, _ = stats.measure(solve_many, interpreted,
                                repeats=config.repeats, warmup=0)
    s_comp, _ = stats.measure(solve_many, compiled,
                              repeats=config.repeats, warmup=0)
    factor = stats.ratio_sample(s_interp, s_comp).as_measurement(
        direction="higher")
    factor["gate"] = False  # see dispatch.tierup — arms gate on their own
    return SpecResult(
        {
            "interpreted_seconds": s_interp.as_measurement(),
            "autocompiled_seconds": s_comp.as_measurement(),
            "factor": factor,
        },
        meta={"equation": _FINDROOT, "solves_per_repeat": solves},
        verified=verified,
    )


def _autocompile_probe(config: RunConfig) -> None:
    from repro.compiler import enable_auto_compilation
    from repro.engine import Evaluator
    from repro.mexpr import parse

    session = Evaluator()
    enable_auto_compilation(session)
    session.evaluate_protected(parse(_FINDROOT))


# -- §2.2: the soft-failure transcript --------------------------------------


_FIB_200 = 280571172992510140037611932413038677189525


def _soft_failure_run(config: RunConfig) -> SpecResult:
    from repro.benchsuite import programs
    from repro.compiler import FunctionCompile
    from repro.engine import Evaluator

    session = Evaluator()
    fib = FunctionCompile(programs.ITERATIVE_FIB, evaluator=session)
    verified = (fib(90) == 2880067194370816120 and fib(200) == _FIB_200)
    s_machine, _ = stats.measure(fib, 90, repeats=config.repeats,
                                 warmup=config.warmup)
    s_fallback, _ = stats.measure(fib, 200, repeats=config.repeats,
                                  warmup=config.warmup)
    return SpecResult(
        {
            "machine_path_seconds": s_machine.as_measurement(),
            "fallback_path_seconds": s_fallback.as_measurement(),
        },
        meta={
            "transcript": "cfib[200] -> IntegerOverflow -> interpreter bignum",
            "interpreter_reruns": fib.stats().interpreter_reruns,
        },
        verified=verified,
    )


def _elision_speedup_run(config: RunConfig) -> SpecResult:
    """Dataflow check elision A/B (DESIGN.md §12): the same Figure-2 loop
    kernels compiled with ``ElideChecks`` on (default) vs off, on ≥2
    kernels.  The elided build drops overflow guards on proven counter
    arithmetic, bounds predicates on proven Part accesses, and abort
    checkpoints in bounded loops."""
    from repro.benchsuite import data as workloads
    from repro.benchsuite import programs
    from repro.compiler import FunctionCompile

    sizes = workloads.figure2_sizes(config.scale)
    kernels = {
        "histogram": (
            programs.NEW_HISTOGRAM,
            workloads.histogram_data(sizes.histogram_length),
        ),
        "blur": (
            programs.NEW_BLUR,
            workloads.blur_image_nested(sizes.blur_side),
        ),
    }
    measurements: dict = {}
    speedups: dict = {}
    verified_kernels = 0
    for name, (source, argument) in kernels.items():
        elided = FunctionCompile(source)
        checked = FunctionCompile(
            source, ElideChecks=False, IndexCheckElision=False,
        )
        info = next(iter(elided.program.functions.values())).information
        elided_count = (
            info.get("OverflowChecksElided", 0)
            + info.get("IndexChecksElided", 0)
            + info.get("CheckpointsCoalesced", 0)
        )
        same = elided(argument).data == checked(argument).data
        s_elided, _ = stats.measure(elided, argument,
                                    repeats=config.repeats,
                                    warmup=config.warmup)
        s_checked, _ = stats.measure(checked, argument,
                                     repeats=config.repeats,
                                     warmup=config.warmup)
        speedup = stats.ratio_sample(s_checked, s_elided).as_measurement(
            direction="higher")
        # best-of ratios still swing with machine load; each arm gates on
        # its own seconds, the ratio is informational
        speedup["gate"] = False
        measurements[f"{name}_elided_seconds"] = s_elided.as_measurement()
        measurements[f"{name}_checked_seconds"] = s_checked.as_measurement()
        measurements[f"{name}_speedup"] = speedup
        speedups[name] = s_checked.best / s_elided.best
        if same and elided_count > 0 and speedups[name] > 1.0:
            verified_kernels += 1
    return SpecResult(
        measurements,
        meta={
            "speedups": speedups,
            "kernels_faster_when_elided": verified_kernels,
        },
        verified=verified_kernels >= 2,
    )


def _elision_speedup_probe(config: RunConfig) -> None:
    from repro.benchsuite import data as workloads
    from repro.benchsuite import programs
    from repro.compiler import FunctionCompile

    kernel = FunctionCompile(programs.NEW_HISTOGRAM)
    kernel(workloads.histogram_data(10_000))


def _soft_failure_probe(config: RunConfig) -> None:
    from repro.benchsuite import programs
    from repro.compiler import FunctionCompile
    from repro.engine import Evaluator

    fib = FunctionCompile(programs.ITERATIVE_FIB, evaluator=Evaluator())
    fib(200)  # the overflow + fallback event stream


# -- §6 ablations ------------------------------------------------------------


def _inlining_run(config: RunConfig) -> SpecResult:
    from repro.benchsuite import data as workloads
    from repro.benchsuite import programs, reference
    from repro.compiler import FunctionCompile

    sizes = workloads.figure2_sizes(config.scale)
    points = workloads.mandelbrot_points(max(sizes.mandel_resolution, 0.2))
    inlined = FunctionCompile(programs.NEW_MANDELBROT)
    no_inline = FunctionCompile(programs.NEW_MANDELBROT, InlinePolicy=None)

    def drive(kernel):
        return sum(kernel(point) for point in points)

    verified = (drive(inlined) == drive(no_inline)
                == drive(reference.mandelbrot_point))
    s_in, _ = stats.measure(drive, inlined, repeats=config.repeats,
                            warmup=config.warmup)
    s_out, _ = stats.measure(drive, no_inline, repeats=config.repeats,
                             warmup=config.warmup)
    return SpecResult(
        {
            "inlined_seconds": s_in.as_measurement(),
            "no_inline_seconds": s_out.as_measurement(),
        },
        meta={"no_inline_over_inlined": s_out.best / s_in.best,
              "paper": "10x slowdown for Mandelbrot without inlining"},
        verified=verified,
    )


def _abort_run(config: RunConfig) -> SpecResult:
    from repro.benchsuite import data as workloads
    from repro.benchsuite import programs
    from repro.compiler import FunctionCompile

    sizes = workloads.figure2_sizes(config.scale)
    data = workloads.histogram_data(sizes.histogram_length)
    checked = FunctionCompile(programs.NEW_HISTOGRAM)
    unchecked = FunctionCompile(programs.NEW_HISTOGRAM, AbortHandling=False)
    verified = checked(data).data == unchecked(data).data
    s_on, _ = stats.measure(checked, data, repeats=config.repeats,
                            warmup=config.warmup)
    s_off, _ = stats.measure(unchecked, data, repeats=config.repeats,
                             warmup=config.warmup)
    return SpecResult(
        {
            "abort_on_seconds": s_on.as_measurement(),
            "abort_off_seconds": s_off.as_measurement(),
        },
        meta={"abort_tax": s_on.best / s_off.best,
              "paper": "abort checking inhibits the tight histogram loop"},
        verified=verified,
    )


def _constants_run(config: RunConfig) -> SpecResult:
    from repro.benchsuite import data as workloads
    from repro.benchsuite import programs, reference
    from repro.compiler import FunctionCompile

    sizes = workloads.figure2_sizes(config.scale)
    limit = min(sizes.primeq_limit, 20_000)
    table = reference.prime_sieve_bitmap()

    def build(handling):
        return FunctionCompile(
            programs.NEW_PRIMEQ,
            constants={"primeTable": table,
                       "witnesses": programs.RM_WITNESSES},
            ConstantArrayHandling=handling,
        )

    hoisted, naive = build("hoisted"), build("naive")
    verified = hoisted(limit) == naive(limit)
    s_hoisted, _ = stats.measure(hoisted, limit, repeats=config.repeats,
                                 warmup=config.warmup)
    s_naive, _ = stats.measure(naive, limit, repeats=config.repeats,
                               warmup=config.warmup)
    return SpecResult(
        {
            "hoisted_seconds": s_hoisted.as_measurement(),
            "naive_seconds": s_naive.as_measurement(),
        },
        meta={"naive_over_hoisted": s_naive.best / s_hoisted.best,
              "paper": "1.5x degradation from constant-array handling"},
        verified=verified,
    )


def _copy_run(config: RunConfig) -> SpecResult:
    from repro.benchsuite import data as workloads
    from repro.benchsuite import programs
    from repro.compiler import FunctionCompile
    from repro.runtime import PackedArray

    sizes = workloads.figure2_sizes(config.scale)
    data = workloads.presorted_list(sizes.qsort_length)

    def less(a, b):
        return a < b

    with_copy = FunctionCompile(programs.NEW_QSORT)
    in_place = FunctionCompile(programs.NEW_QSORT, CopyInsertion=False,
                               ArgumentAlias=True)
    probe_input = list(data)
    with_copy(probe_input, less)
    verified = probe_input == data  # the F5 copy left the input untouched

    s_copy, _ = stats.measure(with_copy, data, less,
                              repeats=config.repeats, warmup=config.warmup)

    def run_in_place():
        packed = PackedArray.from_nested(list(data), "Integer64")
        return in_place(packed, less)

    s_in_place, _ = stats.measure(run_in_place, repeats=config.repeats,
                                  warmup=config.warmup)
    return SpecResult(
        {
            "with_copy_seconds": s_copy.as_measurement(),
            "in_place_seconds": s_in_place.as_measurement(),
        },
        meta={"copy_over_in_place": s_copy.best / s_in_place.best,
              "paper": "QSort's 1.2x-over-C is the F5 mutability copy"},
        verified=verified,
    )


# -- §5: compile time --------------------------------------------------------


def _compile_time_run(config: RunConfig) -> SpecResult:
    from repro.benchsuite import programs, reference
    from repro.bytecode import compile_function
    from repro.compiler import FunctionCompile
    from repro.mexpr import parse

    sources = {
        "fnv1a": programs.NEW_FNV1A,
        "mandelbrot": programs.NEW_MANDELBROT,
        "dot": programs.NEW_DOT,
        "blur": programs.NEW_BLUR,
        "histogram": programs.NEW_HISTOGRAM,
        "qsort": programs.NEW_QSORT,
    }
    measurements: dict = {}
    for name, source in sources.items():
        sample, compiled = stats.measure(FunctionCompile, source,
                                         repeats=config.repeats, warmup=0)
        assert compiled is not None
        measurements[f"{name}_seconds"] = sample.as_measurement()

    table = reference.prime_sieve_bitmap()
    sample, _ = stats.measure(
        lambda: FunctionCompile(
            programs.NEW_PRIMEQ,
            constants={"primeTable": table,
                       "witnesses": programs.RM_WITNESSES},
        ),
        repeats=max(1, config.repeats - 1), warmup=0,
    )
    measurements["primeq_seconds"] = sample.as_measurement()

    specs = parse(programs.BYTECODE_HISTOGRAM_SPECS)
    body = parse(programs.BYTECODE_HISTOGRAM_BODY)
    sample, _ = stats.measure(lambda: compile_function(specs, body),
                              repeats=config.repeats, warmup=0)
    measurements["bytecode_histogram_seconds"] = sample.as_measurement()
    return SpecResult(
        measurements,
        meta={"paper": "§5: the suite measures compilation time and "
                       "time to run specific passes"},
        verified=True,
    )


def _compile_time_probe(config: RunConfig) -> None:
    from repro.benchsuite import programs
    from repro.compiler import FunctionCompile

    FunctionCompile(programs.NEW_FNV1A)  # pipeline.pass.<name> histograms


# -- template-JIT baseline: tier-up latency and steady state -----------------


#: Figure-2 kernels with a constant-free bytecode lowering — the common
#: subset all three compilers accept from the same specs/body pair
_TEMPLATE_KERNELS = ("fnv1a", "mandelbrot", "histogram", "blur")


def _template_sources(name: str):
    from repro.benchsuite import programs
    from repro.mexpr import parse

    specs = parse(getattr(programs, f"BYTECODE_{name.upper()}_SPECS"))
    body = parse(getattr(programs, f"BYTECODE_{name.upper()}_BODY"))
    return specs, body, getattr(programs, f"NEW_{name.upper()}")


def _template_latency_run(config: RunConfig) -> SpecResult:
    """Tier-up latency: the template stitcher's single linear pass vs the
    full ``FunctionCompile`` pipeline, per kernel.  ``verified`` asserts
    the baseline tier's whole reason to exist — compile latency at least
    10x below the optimizing pipeline on every kernel."""
    from repro.compiler import FunctionCompile
    from repro.template_jit import compile_template_function

    measurements: dict = {}
    ratios: dict = {}
    for name in _TEMPLATE_KERNELS:
        specs, body, new_source = _template_sources(name)
        s_template, artifact = stats.measure(
            compile_template_function, specs, body,
            repeats=config.repeats, warmup=1, inner=5,
        )
        s_full, compiled = stats.measure(
            FunctionCompile, new_source,
            repeats=config.repeats, warmup=0,
        )
        assert artifact is not None and compiled is not None
        measurements[f"{name}_template_seconds"] = (
            s_template.as_measurement()
        )
        full = s_full.as_measurement()
        full["gate"] = False  # compiler.compile_time owns this trajectory
        measurements[f"{name}_full_seconds"] = full
        ratio = stats.ratio_sample(s_full, s_template).as_measurement(
            direction="higher")
        ratio["gate"] = False  # the quotient of two gated arms
        measurements[f"{name}_latency_ratio"] = ratio
        ratios[name] = s_full.best / s_template.best
    return SpecResult(
        measurements,
        meta={
            "kernels": list(_TEMPLATE_KERNELS),
            "latency_ratios": {k: round(v, 1) for k, v in ratios.items()},
            "gate": "template compile latency >= 10x below full pipeline",
        },
        verified=all(value >= 10.0 for value in ratios.values()),
    )


def _template_latency_probe(config: RunConfig) -> None:
    from repro.template_jit import compile_template_function

    specs, body, _ = _template_sources("fnv1a")
    compile_template_function(specs, body)  # template.compile span


def _template_throughput_run(config: RunConfig) -> SpecResult:
    """Steady-state quality of the stitched code: the template tier must
    beat the bytecode interpreter on the Figure-2 kernels it covers (the
    rung would be pointless below it), while agreeing on every answer."""
    from repro.benchsuite import data as workloads
    from repro.bytecode import compile_function
    from repro.template_jit import compile_template_function

    sizes = workloads.figure2_sizes(config.scale)
    codes = list(workloads.fnv_string(sizes.fnv_length).encode("utf-8"))
    histogram = workloads.histogram_data(sizes.histogram_length)
    points = workloads.mandelbrot_points(sizes.mandel_resolution)

    def drive_mandelbrot(kernel):
        return sum(kernel(point) for point in points)

    arms = {
        "fnv1a": lambda kernel: kernel(codes),
        "histogram": lambda kernel: kernel(histogram),
        "mandelbrot": drive_mandelbrot,
    }
    measurements: dict = {}
    verified = True
    speedups: dict = {}
    for name, drive in arms.items():
        specs, body, _ = _template_sources(name)
        template = compile_template_function(specs, body)
        bytecode = compile_function(specs, body)
        verified = verified and drive(template) == drive(bytecode)
        s_template, _ = stats.measure(drive, template,
                                      repeats=config.repeats,
                                      warmup=config.warmup)
        s_bytecode, _ = stats.measure(drive, bytecode,
                                      repeats=config.repeats,
                                      warmup=config.warmup)
        measurements[f"{name}_template_seconds"] = (
            s_template.as_measurement()
        )
        bc = s_bytecode.as_measurement()
        bc["gate"] = False  # figure2.<name> owns the VM trajectory
        measurements[f"{name}_bytecode_seconds"] = bc
        factor = stats.ratio_sample(s_bytecode, s_template).as_measurement(
            direction="higher")
        factor["gate"] = False
        measurements[f"{name}_speedup_over_vm"] = factor
        speedups[name] = s_bytecode.best / s_template.best
        verified = verified and speedups[name] > 1.0
    return SpecResult(
        measurements,
        meta={
            "speedups_over_vm": {k: round(v, 2)
                                 for k, v in speedups.items()},
            "gate": "stitched code beats the bytecode interpreter",
        },
        verified=verified,
    )


# -- AOT warm images: cold vs warm server boot --------------------------------


#: the measured prelude — mirrors examples/preludes/arith.wl, inlined so
#: the spec does not depend on the working directory
_AOT_PRELUDE = (
    "fib[n_Integer] := If[n < 2, n, fib[n - 1] + fib[n - 2]]",
    "tri[n_Integer] := Quotient[n * (n + 1), 2]",
    "sq[x_Integer] := x * x",
    "hyp[a_Real, b_Real] := Sqrt[a * a + b * b]",
)


def _aot_warm_boot_run(config: RunConfig) -> SpecResult:
    """Cold vs warm server boot: building a base image and promoting the
    prelude's definitions to the compiled tier, with (warm) and without
    (cold) the AOT image's embedded artifacts.  ``verified`` asserts the
    whole point of the tentpole — a warm boot must beat a cold one — and
    that both boots compute identical answers from the compiled tier."""
    from repro.artifacts import aot
    from repro.artifacts.store import activate_store, active_override
    from repro.mexpr import parse

    entry_store = active_override()
    try:
        manifest = aot.build_image(_AOT_PRELUDE)

        def boot_cold():
            _, evaluator = aot.boot_cold(manifest)
            return evaluator

        def boot_warm():
            _, evaluator = aot.boot_warm(manifest)
            return evaluator

        s_cold, cold_evaluator = stats.measure(
            boot_cold, repeats=config.repeats, warmup=0)
        s_warm, warm_evaluator = stats.measure(
            boot_warm, repeats=config.repeats, warmup=1)
        call = parse("fib[18]")
        verified = (
            len(manifest["preload"]) == len(_AOT_PRELUDE)
            and cold_evaluator.evaluate(call).to_python() == 2584
            and warm_evaluator.evaluate(call).to_python() == 2584
            and warm_evaluator.hotspot.promoted["fib"].tier_kind
            == "compiled"
            and s_warm.best < s_cold.best
        )
    finally:
        activate_store(entry_store)
    speedup = stats.ratio_sample(s_cold, s_warm).as_measurement(
        direction="higher")
    speedup["gate"] = False  # the quotient of two gated arms
    return SpecResult(
        {
            "cold_boot_seconds": s_cold.as_measurement(),
            "warm_boot_seconds": s_warm.as_measurement(),
            "warm_speedup": speedup,
        },
        meta={
            "definitions": len(_AOT_PRELUDE),
            "preloaded": manifest["preload"],
            "image_objects": len(manifest["objects"]),
            "gate": "warm boot strictly beats cold boot",
        },
        verified=verified,
    )


def _aot_warm_boot_probe(config: RunConfig) -> None:
    from repro.artifacts import aot
    from repro.artifacts.store import activate_store, active_override

    entry_store = active_override()
    try:
        # artifact.cache get/put spans and counters under the tracer
        manifest = aot.build_image(_AOT_PRELUDE[:1])
        aot.boot_warm(manifest)
    finally:
        activate_store(entry_store)


# -- the engine server under load --------------------------------------------


def _server_load_run(config: RunConfig) -> SpecResult:
    """The multi-session server's latency distribution and overload
    behaviour: a healthy run measures p50/p99 and throughput across
    ``config.repeats`` full load-generator passes, then a deliberately
    starved configuration (one worker, a two-deep queue) verifies the
    admission controller sheds rather than queues without bound."""
    from repro.server import LoadSpec, ServerConfig, run_load

    requests = max(5, int(50 * config.scale))
    spec = LoadSpec(clients=6, requests_per_client=requests, seed=7)
    p50s, p99s, rates = [], [], []
    hist_p50s, hist_p99s = [], []
    all_ok = True
    for repeat in range(max(1, config.repeats)):
        report, _stats = run_load(config=ServerConfig(), spec=spec)
        all_ok = all_ok and report.failed == 0 and report.shed == 0
        p50s.append(report.p50)
        p99s.append(report.p99)
        rates.append(report.throughput)
        if report.hist_p50 is not None:
            hist_p50s.append(report.hist_p50)
        if report.hist_p99 is not None:
            hist_p99s.append(report.hist_p99)

    overload = ServerConfig(max_concurrent=1, queue_limit=2)
    overload_report, _stats = run_load(
        config=overload,
        spec=LoadSpec(clients=12, requests_per_client=requests, seed=7),
    )
    shed_engaged = overload_report.shed > 0
    shed_bounded = overload_report.shed_rate < 1.0

    p99 = stats.Sample(samples=tuple(p99s)).as_measurement()
    p99["gate"] = False  # the tail swings with scheduler jitter
    throughput = stats.Sample(
        samples=tuple(rates), unit="rps").as_measurement(direction="higher")
    throughput["gate"] = False  # the reciprocal surface of the latencies
    shed = stats.scalar(overload_report.shed_rate, unit="fraction")
    shed["gate"] = False  # informational: proves shedding engages
    measurements = {
        "latency_p50_seconds": stats.Sample(
            samples=tuple(p50s)).as_measurement(),
        "latency_p99_seconds": p99,
        "throughput_rps": throughput,
        "overload_shed_rate": shed,
    }
    # the flight recorder's log-bucket estimates of the same quantiles:
    # tracked ungated so drift between the histogram and the exact
    # nearest-rank values is visible in the trajectory, never a CI failure
    for key, samples in (("latency_hist_p50_seconds", hist_p50s),
                         ("latency_hist_p99_seconds", hist_p99s)):
        if samples:
            row = stats.Sample(samples=tuple(samples)).as_measurement()
            row["gate"] = False
            measurements[key] = row
    return SpecResult(
        measurements,
        meta={
            "clients": spec.clients,
            "requests_per_client": requests,
            "overload": "1 worker, queue_limit 2, 12 clients",
        },
        verified=all_ok and shed_engaged and shed_bounded,
    )


def _server_load_probe(config: RunConfig) -> None:
    from repro.server import LoadSpec, ServerConfig, run_load

    # a small pass under the tracer: server.request spans, queue-depth
    # histograms, admission counters
    run_load(config=ServerConfig(max_concurrent=2, queue_limit=4),
             spec=LoadSpec(clients=3, requests_per_client=3, seed=7))


# -- the table ---------------------------------------------------------------


def _specs() -> tuple:
    figure2 = tuple(
        BenchSpec(
            name=f"figure2.{name}",
            suite="figure2",
            artifact="figure2",
            title=f"Figure 2 {name} (all tiers, checksum-verified)",
            run=_figure2_run(name),
            probe=_figure2_probe(name),
            smoke=name in ("fnv1a", "dot"),
        )
        for name in ("fnv1a", "mandelbrot", "dot", "blur", "histogram",
                     "primeq", "qsort")
    )
    return figure2 + (
        BenchSpec("dispatch.tierup", "dispatch", "evaluator",
                  "profile-guided tier-up (recursive fib)",
                  _tierup_run, _tierup_probe, smoke=True),
        BenchSpec("dispatch.orderless_plus", "dispatch", "evaluator",
                  "deep Orderless Plus canonicalization",
                  _orderless_run, _orderless_probe),
        BenchSpec("dispatch.thousand_rule", "dispatch", "evaluator",
                  "1000-rule DownValue dispatch",
                  _thousand_rule_run, _thousand_rule_probe),
        BenchSpec("evaluator.autocompile_findroot", "evaluator", "evaluator",
                  "FindRoot auto-compilation speedup (§1)",
                  _autocompile_run, _autocompile_probe),
        BenchSpec("evaluator.soft_failure", "evaluator", "evaluator",
                  "soft-failure fallback cost (§2.2 cfib transcript)",
                  _soft_failure_run, _soft_failure_probe, smoke=True),
        BenchSpec("ablation.inlining", "ablations", "compiler",
                  "function-inlining ablation (Mandelbrot, §6)",
                  _inlining_run),
        BenchSpec("ablation.abort", "ablations", "compiler",
                  "abort-check ablation (Histogram, §6)",
                  _abort_run),
        BenchSpec("ablation.constants", "ablations", "compiler",
                  "constant-array handling ablation (PrimeQ, §6)",
                  _constants_run),
        BenchSpec("ablation.copy", "ablations", "compiler",
                  "mutability-copy ablation (QSort, §6)",
                  _copy_run),
        BenchSpec("analysis.elision_speedup", "compiler", "compiler",
                  "dataflow check-elision A/B on Figure-2 loop kernels "
                  "(gate: faster when elided on >=2 kernels)",
                  _elision_speedup_run, _elision_speedup_probe, smoke=True),
        BenchSpec("compiler.compile_time", "compiler", "compiler",
                  "compile time per Figure-2 program (§5)",
                  _compile_time_run, _compile_time_probe, smoke=True),
        BenchSpec("compiler.template_latency", "compiler", "compiler",
                  "tier-up latency: template stitch vs full pipeline "
                  "(gate: >=10x faster)",
                  _template_latency_run, _template_latency_probe,
                  smoke=True),
        BenchSpec("compiler.template_throughput", "compiler", "compiler",
                  "steady-state template code vs the bytecode VM "
                  "(Figure-2 kernels)",
                  _template_throughput_run, smoke=True),
        BenchSpec("aot.warm_boot", "compiler", "compiler",
                  "AOT warm image: cold vs warm server boot "
                  "(gate: warm < cold)",
                  _aot_warm_boot_run, _aot_warm_boot_probe, smoke=True),
        BenchSpec("server.loadgen", "server", "server",
                  "multi-session server under load (p50/p99, shed rate)",
                  _server_load_run, _server_load_probe),
    )


ALL_SPECS = _specs()


def resolve_specs(suite: Optional[str] = None,
                  name_filter: Optional[str] = None) -> list:
    """The specs a ``--suite``/``--filter`` selection names.

    ``suite`` may be a registered suite, ``smoke`` (the fast CI subset,
    spanning all three artifacts), or ``all``/``None``.
    """
    if suite in (None, "all"):
        selected = list(ALL_SPECS)
    elif suite == "smoke":
        selected = [spec for spec in ALL_SPECS if spec.smoke]
    elif suite in SUITES:
        selected = [spec for spec in ALL_SPECS if spec.suite == suite]
    else:
        raise ValueError(
            f"unknown suite {suite!r}; expected one of "
            f"{sorted(SUITES + ('smoke', 'all'))}"
        )
    if name_filter:
        selected = [spec for spec in selected if name_filter in spec.name]
    return selected
