"""The markdown perf report: run metadata, the paper-style Figure-2
normalized table, per-measurement trajectory verdicts, and a digest of
the embedded observability metrics."""

from __future__ import annotations

from typing import Optional

from repro.perflab.compare import Verdict, worst_status

_STATUS_GLYPH = {
    "improved": "✅ improved",
    "stable": "· stable",
    "noisy": "〰 noisy",
    "regressed": "❌ regressed",
    "new": "• new",
}


def render_markdown(records: dict, verdicts: dict,
                    baselines: Optional[dict] = None) -> str:
    """``records``/``verdicts``/``baselines`` map artifact name ->
    record / list[Verdict] / baseline record (or None)."""
    lines = ["# Perflab report", ""]
    meta_record = next(iter(records.values()), None)
    if meta_record is not None:
        commit = meta_record.get("commit") or "unknown"
        dirty = " (dirty)" if meta_record.get("dirty") else ""
        host = meta_record.get("host") or {}
        lines += [
            f"- **commit**: `{commit}`{dirty}",
            f"- **timestamp**: {meta_record.get('timestamp')}",
            f"- **suite**: {meta_record.get('suite')} at scale "
            f"{meta_record.get('scale')}",
            f"- **host**: {host.get('implementation', '?')} "
            f"{host.get('python', '?')} on {host.get('platform', '?')} "
            f"({host.get('cpu_count', '?')} cpus)",
            "",
        ]

    figure2 = _figure2_rows(records)
    if figure2:
        lines += [
            "## Figure 2 — slowdown vs hand-optimized reference",
            "",
            "Normalized to the hand-optimized C-port stand-in; bytecode is"
            " display-capped at 2.5 with the actual factor annotated, as in"
            " the paper's figure.",
            "",
            "| benchmark | new compiler | bytecode (capped 2.5) |"
            " bytecode actual |",
            "|---|---|---|---|",
        ]
        lines += figure2
        lines.append("")

    all_verdicts = [v for vs in verdicts.values() for v in vs]
    if all_verdicts:
        lines += [
            "## Trajectory verdicts",
            "",
            f"Overall: **{worst_status(all_verdicts)}**",
            "",
            "| benchmark | measurement | status | delta | baseline |"
            " current |",
            "|---|---|---|---|---|---|",
        ]
        for verdict in sorted(all_verdicts,
                              key=lambda v: (v.benchmark, v.measurement)):
            lines.append(_verdict_row(verdict))
        lines.append("")

    metric_lines = _metrics_digest(records)
    if metric_lines:
        lines += ["## Observability snapshot", ""] + metric_lines + [""]
    return "\n".join(lines)


def _figure2_rows(records: dict) -> list:
    record = records.get("figure2")
    if not record:
        return []
    rows = []
    for name, entry in sorted(record.get("benchmarks", {}).items()):
        if not name.startswith("figure2."):
            continue
        measurements = entry.get("measurements", {})
        new_ratio = measurements.get("new_vs_c_ratio")
        bytecode_ratio = measurements.get("bytecode_vs_c_ratio")
        new_text = (f"{new_ratio['median']:.2f}x"
                    if new_ratio is not None else "—")
        if bytecode_ratio is None:
            capped_text, actual_text = "unsupported", "—"
        else:
            actual = bytecode_ratio["median"]
            capped_text = f"{min(actual, 2.5):.2f}"
            actual_text = f"{actual:.1f}x"
        rows.append(f"| {name.split('.', 1)[1]} | {new_text} |"
                    f" {capped_text} | {actual_text} |")
    return rows


def _verdict_row(verdict: Verdict) -> str:
    status = _STATUS_GLYPH.get(verdict.status, verdict.status)
    if verdict.status == "new" or verdict.delta is None:
        delta_text, base_text = "—", "—"
    else:
        sign = "+" if verdict.delta >= 0 else ""
        delta_text = f"{sign}{verdict.delta * 100:.1f}%"
        base_text = _value(verdict.baseline, verdict.unit)
    return (
        f"| {verdict.benchmark} | {verdict.measurement} | {status} |"
        f" {delta_text} | {base_text} |"
        f" {_value(verdict.current, verdict.unit)} |"
    )


def _value(value: Optional[float], unit: str) -> str:
    if value is None:
        return "—"
    if unit == "seconds":
        return f"{value:.3f}s" if value >= 1.0 else f"{value * 1000:.3g}ms"
    return f"{value:.3g}{'x' if unit == 'x' else ''}"


def _metrics_digest(records: dict, limit: int = 12) -> list:
    lines = []
    for artifact, record in sorted(records.items()):
        metrics = record.get("metrics") or {}
        counters = metrics.get("counters") or {}
        if not counters:
            continue
        lines.append(f"**{artifact}** probe counters "
                     f"({len(counters)} total):")
        lines.append("")
        top = sorted(counters.items(), key=lambda kv: -kv[1])[:limit]
        for name, value in top:
            lines.append(f"- `{name}` = {value}")
        lines.append("")
    return lines
