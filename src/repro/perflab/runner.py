"""Executes registry specs and assembles trajectory records.

The runner keeps the measurement honest by construction:

* the **timed region is never traced** — spec ``run`` callables execute
  with no active tracer, so the trajectory is not polluted by
  observability overhead;
* each spec's **probe** (a small representative workload) then runs under
  a fresh :class:`repro.observe.Tracer`; its counters and histograms are
  merged into a per-artifact metrics snapshot embedded in the record, and
  with ``trace_dir`` set the probe's Chrome trace is written to
  ``<trace_dir>/<spec>.json`` for artifact upload;
* probe failures are recorded in the benchmark's ``meta``, never fatal —
  a broken trace hook must not lose a trajectory point.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Optional

from repro.perflab import stats
from repro.perflab.registry import BenchSpec, RunConfig, SpecResult
from repro.perflab.store import TrajectoryStore, make_record


def _merge_metrics(target: dict, snapshot: dict) -> None:
    """Fold one tracer's registry snapshot into the artifact-level one."""
    for name, value in snapshot.get("counters", {}).items():
        counters = target.setdefault("counters", {})
        counters[name] = counters.get(name, 0) + value
    for name, hist in snapshot.get("histograms", {}).items():
        histograms = target.setdefault("histograms", {})
        existing = histograms.get(name)
        if existing is None:
            histograms[name] = dict(hist)
            continue
        existing["count"] += hist["count"]
        existing["total"] += hist["total"]
        for key, pick in (("min", min), ("max", max)):
            values = [v for v in (existing.get(key), hist.get(key))
                      if v is not None]
            existing[key] = pick(values) if values else None


def _run_probe(spec: BenchSpec, config: RunConfig,
               entry: dict, metrics: dict) -> None:
    """The traced companion run: metrics snapshot + optional Chrome trace."""
    if spec.probe is None:
        return
    from repro.observe import trace as _trace

    if _trace.TRACER is not None:  # respect an outer tracing session
        entry["meta"]["probe_skipped"] = "tracing already enabled"
        return
    tracer = _trace.enable_tracing()
    try:
        spec.probe(config)
    except Exception as error:  # never lose the trajectory point
        entry["meta"]["probe_error"] = f"{type(error).__name__}: {error}"
    finally:
        _trace.disable_tracing()
    _merge_metrics(metrics, tracer.metrics.as_dict())
    if config.trace_dir:
        trace_dir = Path(config.trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
        tracer.write_chrome_trace(str(trace_dir / f"{spec.name}.json"))


def run_specs(specs, config: RunConfig, suite_label: str,
              store: Optional[TrajectoryStore] = None,
              out=None) -> dict:
    """Run every spec, grouped by artifact; returns
    ``{artifact: record}`` (unappended — the CLI owns persistence)."""
    out = out or sys.stdout
    grouped: dict = {}
    metrics_by_artifact: dict = {}
    for spec in specs:
        out.write(f"  running {spec.name} ...")
        out.flush()
        # a spin-loop timing taken adjacent to each spec: machine-speed
        # drift *within* a run (CPU contention comes in bursts longer
        # than one spec but shorter than the whole suite) is corrected
        # per benchmark by the comparator, not just per record
        calibration = stats.calibrate(repeats=3)
        result: SpecResult = spec.run(config)
        entry = {
            "title": spec.title,
            "verified": result.verified,
            "calibration_seconds": calibration,
            "measurements": result.measurements,
            "meta": dict(result.meta),
        }
        metrics = metrics_by_artifact.setdefault(spec.artifact, {})
        _run_probe(spec, config, entry, metrics)
        grouped.setdefault(spec.artifact, {})[spec.name] = entry
        headline = _headline(result)
        verified = "ok" if result.verified else "UNVERIFIED"
        out.write(f" {headline} [{verified}]\n")
    root = store.root if store is not None else None
    return {
        artifact: make_record(
            suite=suite_label,
            scale=config.scale,
            benchmarks=benchmarks,
            metrics=metrics_by_artifact.get(artifact) or None,
            root=root,
        )
        for artifact, benchmarks in grouped.items()
    }


def _headline(result: SpecResult) -> str:
    """One human-readable number for the progress line."""
    measurements = result.measurements
    for key in ("factor", "new_vs_c_ratio"):
        if key in measurements:
            return f"{key}={measurements[key]['median']:.2f}x"
    for key, measurement in measurements.items():
        if measurement.get("unit") == "seconds":
            return f"{key}={measurement['median'] * 1000:.2f}ms"
    return f"{len(measurements)} measurements"
