"""The shared timing core for the performance lab.

Every timed region in the repo — the Figure-2 harness tiers, the dispatch
microbenchmarks, the ablations, the `python -m repro bench` runner — goes
through :func:`measure`, replacing the copy-pasted ``perf_counter``
best-of-N loops the benchmark scripts previously carried.  The discipline:

* **warmup iterations** run before anything is timed (caches, promotion,
  and allocator state settle outside the measured region);
* **gc is paused** while the clock runs (collection pauses are the single
  largest source of CPython timing outliers) and restored afterwards;
* every repeat is kept, so a :class:`Sample` can report **min / median /
  MAD** instead of a bare minimum, plus a **dispersion flag** — when
  MAD/median exceeds the noise threshold the measurement is marked noisy
  and downstream comparisons widen their regression thresholds instead of
  crying wolf.

Measurements serialize to a flat dict (:meth:`Sample.as_measurement`,
:func:`scalar`) that the trajectory store appends to the ``BENCH_*.json``
files and the comparator consumes.
"""

from __future__ import annotations

import gc
import os
import time
from dataclasses import dataclass
from typing import Optional

#: default relative-dispersion limit above which a measurement is "noisy"
DEFAULT_NOISE_THRESHOLD = 0.15


def noise_threshold(default: float = DEFAULT_NOISE_THRESHOLD) -> float:
    """The MAD/median ratio above which a sample is flagged noisy
    (``REPRO_BENCH_NOISE`` overrides the default)."""
    raw = os.environ.get("REPRO_BENCH_NOISE")
    if raw is None:
        return default
    return float(raw)


def median(values) -> float:
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of an empty sample")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values, center: Optional[float] = None) -> float:
    """Median absolute deviation — the robust spread the comparator uses."""
    center = median(values) if center is None else center
    return median([abs(v - center) for v in values])


@dataclass(frozen=True)
class Sample:
    """The timed repeats of one benchmark region, with robust summaries."""

    samples: tuple
    warmup: int = 0
    unit: str = "seconds"
    #: spin-loop timings taken immediately before each repeat — the
    #: machine-speed witness that lets the comparator cancel load bursts
    calibrations: Optional[tuple] = None

    @property
    def repeats(self) -> int:
        return len(self.samples)

    @property
    def best(self) -> float:
        return min(self.samples)

    @property
    def median(self) -> float:
        return median(self.samples)

    @property
    def mad(self) -> float:
        return mad(self.samples)

    @property
    def rel_dispersion(self) -> float:
        """MAD / median; 0.0 for single-repeat or zero-median samples."""
        center = self.median
        if center <= 0.0 or self.repeats < 2:
            return 0.0
        return self.mad / center

    @property
    def noisy(self) -> bool:
        return self.rel_dispersion > noise_threshold()

    @property
    def best_units(self) -> Optional[float]:
        """Best repeat in machine-neutral work units: each repeat divided
        by the spin-loop time observed right before it, so a load burst
        that slows both proportionally cancels out."""
        if not self.calibrations:
            return None
        return min(raw / cal
                   for raw, cal in zip(self.samples, self.calibrations))

    def as_measurement(self, direction: str = "lower") -> dict:
        """The serialized form stored in BENCH records and compared
        across the trajectory."""
        measurement = {
            "unit": self.unit,
            "direction": direction,
            "best": self.best,
            "median": self.median,
            "mad": self.mad,
            "repeats": self.repeats,
            "noisy": self.noisy,
        }
        units = self.best_units
        if units is not None:
            measurement["best_units"] = units
        return measurement


def ratio_sample(numerator: Sample, denominator: Sample,
                 unit: str = "x") -> Sample:
    """Pairwise per-repeat ratios of two timed samples.

    A speedup factor published as a bare scalar has zero spread, so the
    comparator can't widen its threshold when the underlying timings are
    jittery; pairing repeat ``i`` of each arm keeps the dispersion."""
    pairs = zip(numerator.samples, denominator.samples)
    return Sample(tuple(n / d for n, d in pairs), unit=unit)


def scalar(value: float, direction: str = "lower",
           unit: str = "seconds") -> dict:
    """A single observed value in measurement form (ratios, factors, and
    migrated v0 records that kept only one number)."""
    return {
        "unit": unit,
        "direction": direction,
        "best": value,
        "median": value,
        "mad": 0.0,
        "repeats": 1,
        "noisy": False,
    }


def measure(callable_, *args, repeats: int = 3, warmup: int = 1,
            inner: int = 1, unit: str = "seconds"):
    """Time ``callable_(*args)``: warmup runs, then ``repeats`` timed
    iterations (each averaging ``inner`` back-to-back calls) with gc
    paused.  Returns ``(Sample, last_result)``.

    A fixed spin loop is timed immediately before every repeat — a
    machine-speed witness captured *inside* the load burst that may be
    slowing the repeat itself, so the trajectory comparator can judge
    ``raw / calibration`` work units instead of raw wall time.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    result = None
    for _ in range(warmup):
        result = callable_(*args)
    samples = []
    calibrations = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            cal_start = time.perf_counter()
            _calibration_workload()
            calibrations.append(time.perf_counter() - cal_start)
            start = time.perf_counter()
            for _ in range(inner):
                result = callable_(*args)
            samples.append((time.perf_counter() - start) / inner)
    finally:
        if gc_was_enabled:
            gc.enable()
    sample = Sample(tuple(samples), warmup=warmup, unit=unit,
                    calibrations=tuple(calibrations))
    return sample, result


def best_of(callable_, *args, repeats: int = 3, warmup: int = 0,
            inner: int = 1) -> float:
    """Minimum over ``repeats`` timed runs — the drop-in replacement for
    the scripts' hand-rolled best-of loops."""
    sample, _ = measure(callable_, *args, repeats=repeats, warmup=warmup,
                        inner=inner)
    return sample.best


def _calibration_workload() -> int:
    total = 0
    for i in range(200_000):
        total += i * i
    return total


def calibrate(repeats: int = 5) -> float:
    """Best-of timing of a fixed pure-Python spin loop.

    Stored in every trajectory record; the comparator divides the two
    records' calibrations to correct for machine-speed drift (CPU
    contention, frequency scaling, a different host) so a uniformly
    slower box doesn't read as a code regression.
    """
    sample, _ = measure(_calibration_workload, repeats=repeats, warmup=1)
    return sample.best
