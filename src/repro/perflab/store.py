"""The performance-trajectory store: schema-versioned ``BENCH_*.json``.

Each artifact file holds a JSON array of **records**, one per benchmark
run, appended over the repo's life so any PR can be diffed against the
trajectory.  Schema v1 (``"schema": 1``)::

    {
      "schema": 1,
      "timestamp": "2026-08-06T12:00:00",
      "commit": "b0917ca...",          # git HEAD at run time (None outside git)
      "dirty": false,                   # uncommitted changes present?
      "host": {"python": ..., "implementation": ..., "platform": ...,
               "machine": ..., "cpu_count": ...},
      "scale": 0.05,                    # REPRO_BENCH_SCALE / --scale
      "suite": "smoke",
      "benchmarks": {
        "<spec name>": {
          "title": ...,
          "verified": true,             # checksum/answer verification ran
          "measurements": {"<key>": {unit, direction, best, median, mad,
                                     repeats, noisy}},
          "meta": {...}
        }
      },
      "metrics": {...}                  # embedded repro.observe snapshot
    }

Records written before this schema existed (the bare dicts
``bench_dispatch.py`` used to append to ``BENCH_evaluator.json``) are
migrated on load by :func:`migrate`; appending through the store rewrites
the file fully migrated, so old artifacts converge to v1 on first touch.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Optional

from repro.perflab.stats import calibrate, scalar

SCHEMA_VERSION = 1

#: logical artifact name -> file at the repo root
ARTIFACT_FILES = {
    "figure2": "BENCH_figure2.json",
    "compiler": "BENCH_compiler.json",
    "evaluator": "BENCH_evaluator.json",
    "server": "BENCH_server.json",
}


def host_fingerprint() -> dict:
    """Enough machine identity to judge whether two records are comparable."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def git_revision(root) -> tuple:
    """``(commit_sha, dirty)`` for the repo at ``root``; ``(None, None)``
    outside a git checkout or without a git binary."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=str(root),
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=str(root),
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        return sha, bool(status)
    except Exception:
        return None, None


def make_record(suite: str, scale: float, benchmarks: dict,
                metrics: Optional[dict] = None,
                root: Optional[Path] = None) -> dict:
    commit, dirty = git_revision(root or Path.cwd())
    return {
        "schema": SCHEMA_VERSION,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "commit": commit,
        "dirty": dirty,
        "host": host_fingerprint(),
        "scale": scale,
        "suite": suite,
        #: fixed spin-loop timing for machine-speed drift correction
        "calibration_seconds": calibrate(),
        "benchmarks": benchmarks,
        "metrics": metrics,
    }


# -- migration ---------------------------------------------------------------


def migrate(raw: dict) -> dict:
    """Bring a stored record to the current schema (v1 passes through)."""
    if raw.get("schema") == SCHEMA_VERSION:
        return raw
    if "schema" in raw:
        raise ValueError(f"unknown BENCH record schema {raw['schema']!r}")
    return _migrate_v0(raw)


def _migrate_v0(raw: dict) -> dict:
    """The pre-perflab ``bench_dispatch.py`` record shape: a timestamp,
    a ``tierup`` dict, and two bare seconds values — no commit, host, or
    repeat statistics (hence ``repeats: 1`` scalars)."""
    benchmarks: dict = {}
    tierup = raw.get("tierup")
    if tierup:
        benchmarks["dispatch.tierup"] = {
            "title": "profile-guided tier-up (recursive fib)",
            "verified": None,
            "measurements": {
                "interpreted_seconds": scalar(tierup["interpreted_seconds"]),
                "promoted_seconds": scalar(tierup["promoted_seconds"]),
                "factor": scalar(tierup["factor"], direction="higher",
                                 unit="x"),
            },
            "meta": {
                "workload": tierup.get("workload"),
                "promoted_tier": tierup.get("promoted_tier"),
            },
        }
    if "orderless_plus_seconds" in raw:
        benchmarks["dispatch.orderless_plus"] = {
            "title": "deep Orderless Plus canonicalization",
            "verified": None,
            "measurements": {
                "seconds": scalar(raw["orderless_plus_seconds"]),
            },
            "meta": {},
        }
    if "thousand_rule_dispatch_seconds" in raw:
        benchmarks["dispatch.thousand_rule"] = {
            "title": "1000-rule DownValue dispatch",
            "verified": None,
            "measurements": {
                "seconds": scalar(raw["thousand_rule_dispatch_seconds"]),
            },
            "meta": {},
        }
    return {
        "schema": SCHEMA_VERSION,
        "timestamp": raw.get("timestamp"),
        "commit": None,
        "dirty": None,
        "host": None,
        "scale": None,
        "suite": "dispatch",
        "calibration_seconds": None,
        "benchmarks": benchmarks,
        "metrics": None,
        "migrated_from": 0,
    }


# -- the store ----------------------------------------------------------------


class TrajectoryStore:
    """Reads and appends the per-artifact trajectory files under ``root``."""

    def __init__(self, root=None):
        self.root = Path(root) if root is not None else Path.cwd()

    def path(self, artifact: str) -> Path:
        try:
            return self.root / ARTIFACT_FILES[artifact]
        except KeyError:
            raise ValueError(
                f"unknown artifact {artifact!r}; "
                f"expected one of {sorted(ARTIFACT_FILES)}"
            ) from None

    def load(self, artifact: str) -> list:
        """The artifact's trajectory, migrated to the current schema."""
        path = self.path(artifact)
        if not path.exists():
            return []
        raw = json.loads(path.read_text(encoding="utf-8"))
        return [migrate(record) for record in raw]

    def append(self, artifact: str, record: dict) -> Path:
        """Append ``record``, rewriting any pre-v1 history migrated."""
        history = self.load(artifact)
        history.append(record)
        path = self.path(artifact)
        path.write_text(json.dumps(history, indent=2) + "\n",
                        encoding="utf-8")
        return path


def default_root() -> Path:
    """The repo root when run from a checkout (walk up from this file
    until a BENCH/pyproject marker), else the current directory."""
    here = Path(__file__).resolve()
    for candidate in here.parents:
        if (candidate / "pyproject.toml").exists():
            return candidate
    return Path.cwd()
