"""The compiled-code runtime library.

Generated code (Python backend) and the bytecode VM both link against this
package: checked machine arithmetic (F2), packed tensors, reference-counted
memory management (F7), UTF-8 string primitives, the abort channel (F3), and
the shared BLAS bridge.
"""

from repro.runtime.abort import (
    abort_checks_enabled,
    attach_abort_source,
    runtime_check_abort,
)
from repro.runtime.blas import dgemm, dot_nested
from repro.runtime.guard import (
    ExecutionGuard,
    FailureLog,
    FailureRecord,
    FallbackStats,
    CircuitBreaker,
    Tier,
    FAILURE_LOG,
    active_guard,
    charge_memory,
    guard_checkpoint,
    guard_scope,
)
from repro.runtime.checked import (
    INT64_MAX,
    INT64_MIN,
    check_int64,
    checked_binary_mod_Integer64_Integer64,
    checked_binary_plus_Integer64_Integer64,
    checked_binary_power_Integer64_Integer64,
    checked_binary_quotient_Integer64_Integer64,
    checked_binary_subtract_Integer64_Integer64,
    checked_binary_times_Integer64_Integer64,
    checked_divide_Real64,
    checked_unary_minus_Integer64,
)
from repro.runtime.memory import (
    memory_acquire,
    memory_release,
    memory_stats,
    reset_memory_stats,
)
from repro.runtime.packed import PackedArray, packed_from_iterable
from repro.runtime.primes import is_probable_prime, small_prime_table
from repro.runtime.strings import (
    from_character_codes,
    string_byte_at,
    string_drop,
    string_join,
    string_length,
    string_take,
    string_utf8_bytes,
    to_character_codes,
)

__all__ = [
    "CircuitBreaker", "ExecutionGuard", "FAILURE_LOG", "FailureLog",
    "FailureRecord", "FallbackStats", "INT64_MAX", "INT64_MIN",
    "PackedArray", "Tier", "abort_checks_enabled", "active_guard",
    "attach_abort_source", "charge_memory", "check_int64",
    "guard_checkpoint", "guard_scope",
    "checked_binary_mod_Integer64_Integer64",
    "checked_binary_plus_Integer64_Integer64",
    "checked_binary_power_Integer64_Integer64",
    "checked_binary_quotient_Integer64_Integer64",
    "checked_binary_subtract_Integer64_Integer64",
    "checked_binary_times_Integer64_Integer64", "checked_divide_Real64",
    "checked_unary_minus_Integer64", "dgemm", "dot_nested",
    "from_character_codes", "is_probable_prime", "memory_acquire",
    "memory_release", "memory_stats", "packed_from_iterable",
    "reset_memory_stats", "runtime_check_abort", "small_prime_table",
    "string_byte_at", "string_drop", "string_join", "string_length",
    "string_take", "string_utf8_bytes", "to_character_codes",
]
