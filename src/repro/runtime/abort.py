"""The abort channel shared by compiled code and its host engine (F3).

The compiler inserts ``runtime_check_abort()`` calls at loop headers and
function prologues (§4.5).  "The abort checks if a user initiated abort
signal has been issued to the Wolfram Engine and, if so, throws a hardware
exception" — our hardware exception is :class:`WolframAbort`, which the
``CompiledCodeFunction`` wrapper lets propagate to the host so resources are
freed by Python unwinding (the generated cleanup the paper describes).

The same checkpoints double as *guard* checkpoints: an active
:class:`~repro.runtime.guard.ExecutionGuard` (``TimeConstrained``,
``MemoryConstrained``, step budgets) is polled here, so compiled code obeys
deadlines and budgets exactly where it is abortable.

Standalone-exported code runs with no host engine attached; there the abort
half degrades to a noop, matching §4.6: "when using code in standalone
mode, certain functionalities such as interpreter integration and abortable
code are disabled, since they depend on the Wolfram Engine".  Guard polling
is engine-independent (pure wall clock / counters) and keeps working.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import WolframAbort
from repro.runtime.guard import guard_checkpoint
from repro.testing import faults as _faults

#: the host's abort poll; ``None`` when running standalone
_abort_poll: Optional[Callable[[], bool]] = None


def attach_abort_source(poll: Optional[Callable[[], bool]]) -> None:
    """Connect compiled code's abort checks to a host engine's abort flag."""
    global _abort_poll
    _abort_poll = poll


def runtime_check_abort() -> None:
    """The check compiled code executes at loop heads and prologues."""
    if _faults._INJECTOR is not None:
        _faults.fire("abort.check")
    if _abort_poll is not None and _abort_poll():
        raise WolframAbort()
    guard_checkpoint()


def abort_checks_enabled() -> bool:
    return _abort_poll is not None
