"""BLAS bridge shared by every implementation tier.

§6 (Dot): "Both the new compiler and bytecode compiler leverage the Wolfram
Engine's runtime to perform the matrix multiplication.  The Wolfram Engine's
runtime in turn calls the MKL library.  Since all implementations use the
MKL library ... no performance difference is observed."

Our MKL is ``numpy.dot``; the interpreter, the bytecode VM, compiled code,
and the hand-optimized reference all route matrix products through here, so
the Figure-2 Dot bar is ~1.0 for every tier by construction.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.packed import PackedArray


def dgemm(a: PackedArray, b: PackedArray) -> PackedArray:
    """Matrix-matrix (or matrix-vector) product via the host BLAS."""
    result = np.dot(a.to_numpy(), b.to_numpy())
    result_type = (
        "Integer64"
        if a.element_type.startswith("Integer") and b.element_type.startswith("Integer")
        else "Real64"
    )
    return PackedArray.from_numpy(np.atleast_1d(result), result_type)


def dot_nested(a: list, b: list) -> list | float:
    """Dot for nested-list tensors (interpreter representation)."""
    result = np.dot(np.asarray(a), np.asarray(b))
    if np.ndim(result) == 0:
        return result.item()
    return result.tolist()
