"""Checked machine arithmetic for compiled code (feature F2).

The new compiler's generated code performs *checked* Integer64 operations:
"All machine numerical operations are checked for errors by the compiler
runtime" (§4.5).  Python integers never overflow, so the checks compare
against the Integer64 range and raise :class:`IntegerOverflowError`, which
``CompiledCodeFunction`` converts into the paper's revert-to-interpreter
behaviour (the ``cfib[200]`` transcript).

These functions are installed in the globals of generated Python code under
the same ``checked_binary_plus_Integer64_Integer64``-style mangled names the
paper's LLVM output calls (§A.6.4).
"""

from __future__ import annotations

from repro.errors import IntegerOverflowError, WolframRuntimeError

INT64_MAX = (1 << 63) - 1
INT64_MIN = -(1 << 63)


def check_int64(value: int) -> int:
    if value > INT64_MAX or value < INT64_MIN:
        raise IntegerOverflowError()
    return value


def checked_binary_plus_Integer64_Integer64(a: int, b: int) -> int:
    result = a + b
    if result > INT64_MAX or result < INT64_MIN:
        raise IntegerOverflowError()
    return result


def checked_binary_subtract_Integer64_Integer64(a: int, b: int) -> int:
    result = a - b
    if result > INT64_MAX or result < INT64_MIN:
        raise IntegerOverflowError()
    return result


def checked_binary_times_Integer64_Integer64(a: int, b: int) -> int:
    result = a * b
    if result > INT64_MAX or result < INT64_MIN:
        raise IntegerOverflowError()
    return result


def checked_binary_quotient_Integer64_Integer64(a: int, b: int) -> int:
    if b == 0:
        raise WolframRuntimeError("DivideByZero", "integer division by zero")
    result = a // b
    if result > INT64_MAX or result < INT64_MIN:
        raise IntegerOverflowError()
    return result


def checked_binary_mod_Integer64_Integer64(a: int, b: int) -> int:
    if b == 0:
        raise WolframRuntimeError("DivideByZero", "Mod by zero")
    # Python's % matches Wolfram Mod (result takes the divisor's sign).
    return a % b


def checked_binary_power_Integer64_Integer64(a: int, b: int) -> int:
    if b < 0:
        raise WolframRuntimeError("NegativePower", "negative integer power")
    result = a ** b
    if result > INT64_MAX or result < INT64_MIN:
        raise IntegerOverflowError()
    return result


def checked_unary_minus_Integer64(a: int) -> int:
    result = -a
    if result > INT64_MAX:
        raise IntegerOverflowError()
    return result


def checked_divide_Real64(a: float, b: float) -> float:
    if b == 0.0:
        raise WolframRuntimeError("DivideByZero", "real division by zero")
    return a / b
