"""Guarded execution: resource budgets, deadlines, and tier governance.

The paper's robustness story (§2.3, §4.5) rests on two mechanisms: soft
runtime failure with interpreter fallback (F2) and user-initiated aborts
(F3).  This module generalises both into an *execution guard* that every
tier — the tree-walking interpreter, the bytecode VM, and compiled code —
polls at its existing abort checkpoints:

* :class:`ExecutionGuard` carries a wall-clock **deadline**, an
  **evaluation-step budget**, and a **memory budget**.  Guards nest
  (``TimeConstrained`` inside ``TimeConstrained``); a checkpoint walks the
  chain innermost-out so the tightest constraint fires first, and the
  raised error names the guard that expired so the right handler catches it.
* Deadline expiry raises :class:`~repro.errors.WolframTimeoutError` and
  budget exhaustion :class:`~repro.errors.WolframBudgetError` — both
  subclasses of :class:`~repro.errors.WolframRuntimeError`, so the existing
  soft-failure channel unwinds them cleanly without corrupting session
  state.
* :class:`CircuitBreaker` governs the tier handoff the way Titzer (2023)
  argues tiered runtimes must: after ``threshold`` soft failures at a tier a
  function *demotes itself* (compiled → bytecode → interpreter) and stops
  re-attempting the failing tier.  Every transition is recorded as a
  :class:`FailureRecord` in the global :data:`FAILURE_LOG` — a bounded,
  thread-safe ring buffer (capacity ``REPRO_FAILURE_LOG_MAX``, default
  1024) queryable from ``repro.compiler.api``.

Guards are thread-local: the REPL evaluates on a worker thread and each
engine session polls only the guards its own thread entered.  With no
active guard every checkpoint is a single attribute load and ``None`` test,
so unguarded execution — including standalone exported code (§4.6) — pays
essentially nothing.

Event vocabulary (emitted through :mod:`repro.observe` when tracing is
enabled; emission sits on the raise/transition paths only, so the per-step
checkpoint cost is unchanged):

``guard.trip``
    a constraint expired; args: ``kind`` ("deadline" | "steps" | "memory"),
    ``label`` (the guard's label, e.g. "TimeConstrained"), and the
    used/budget pair for budget kinds;
``tier.demote``
    a :class:`CircuitBreaker` demoted its function one tier; args:
    ``symbol`` (the function the breaker is attributed to), ``from``/``to``
    tier names, and ``kind`` (the failure class that tripped it).  The same
    transition is always recorded as a :class:`FailureRecord` in
    :data:`FAILURE_LOG` whether or not tracing is on.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Optional

from repro import observe as _observe
from repro.errors import WolframBudgetError, WolframTimeoutError
from repro.testing import faults as _faults

_tls = threading.local()

# -- the guard itself ------------------------------------------------------------------


class ExecutionGuard:
    """One nested scope of resource constraints.

    ``deadline`` is an absolute ``time.monotonic()`` instant; ``step_budget``
    counts evaluation steps / VM instructions charged through
    :func:`guard_checkpoint`; ``memory_budget`` counts bytes charged through
    :func:`charge_memory` (packed/boxed tensor allocations and interpreter
    expression construction).
    """

    __slots__ = (
        "deadline", "step_budget", "memory_budget",
        "steps_used", "memory_used", "parent", "label",
    )

    def __init__(
        self,
        deadline: Optional[float] = None,
        step_budget: Optional[int] = None,
        memory_budget: Optional[int] = None,
        label: str = "",
    ):
        self.deadline = deadline
        self.step_budget = step_budget
        self.memory_budget = memory_budget
        self.steps_used = 0
        self.memory_used = 0
        self.parent: Optional[ExecutionGuard] = None
        self.label = label

    @classmethod
    def with_time_limit(cls, seconds: float, label: str = "") -> "ExecutionGuard":
        return cls(deadline=time.monotonic() + seconds, label=label)

    @classmethod
    def with_step_budget(cls, steps: int, label: str = "") -> "ExecutionGuard":
        return cls(step_budget=steps, label=label)

    @classmethod
    def with_memory_budget(cls, nbytes: int, label: str = "") -> "ExecutionGuard":
        return cls(memory_budget=nbytes, label=label)

    def remaining_time(self) -> Optional[float]:
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def check(self, steps: int = 1) -> None:
        """Charge ``steps`` against this guard and every enclosing one."""
        guard: Optional[ExecutionGuard] = self
        now: Optional[float] = None
        while guard is not None:
            if steps:
                guard.steps_used += steps
                if (
                    guard.step_budget is not None
                    and guard.steps_used > guard.step_budget
                ):
                    _observe.event(
                        "guard.trip", "guard", kind="steps",
                        label=guard.label, used=guard.steps_used,
                        budget=guard.step_budget,
                    )
                    raise WolframBudgetError(
                        "steps",
                        f"evaluation-step budget of {guard.step_budget} "
                        "exhausted",
                        guard=guard,
                    )
            if guard.deadline is not None:
                if now is None:
                    now = time.monotonic()
                if now > guard.deadline:
                    _observe.event(
                        "guard.trip", "guard", kind="deadline",
                        label=guard.label,
                    )
                    raise WolframTimeoutError(guard=guard)
            guard = guard.parent

    def charge_memory(self, nbytes: int) -> None:
        guard: Optional[ExecutionGuard] = self
        while guard is not None:
            if guard.memory_budget is not None:
                guard.memory_used += nbytes
                if guard.memory_used > guard.memory_budget:
                    _observe.event(
                        "guard.trip", "guard", kind="memory",
                        label=guard.label, used=guard.memory_used,
                        budget=guard.memory_budget,
                    )
                    raise WolframBudgetError(
                        "memory",
                        f"memory budget of {guard.memory_budget} bytes "
                        "exhausted",
                        guard=guard,
                    )
            guard = guard.parent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline:.3f}")
        if self.step_budget is not None:
            parts.append(f"steps={self.steps_used}/{self.step_budget}")
        if self.memory_budget is not None:
            parts.append(f"memory={self.memory_used}/{self.memory_budget}")
        label = f" {self.label!r}" if self.label else ""
        return f"<ExecutionGuard{label} {' '.join(parts) or 'unconstrained'}>"


# -- the thread-local guard stack ------------------------------------------------------


def active_guard() -> Optional[ExecutionGuard]:
    """The innermost guard on this thread, or ``None``."""
    return getattr(_tls, "top", None)


def push_guard(guard: ExecutionGuard) -> ExecutionGuard:
    guard.parent = getattr(_tls, "top", None)
    _tls.top = guard
    return guard


def pop_guard(guard: ExecutionGuard) -> None:
    if getattr(_tls, "top", None) is guard:
        _tls.top = guard.parent
    else:  # unwound out of order; restore the nearest consistent state
        current = getattr(_tls, "top", None)
        while current is not None and current is not guard:
            current = current.parent
        _tls.top = current.parent if current is not None else None


@contextmanager
def guard_scope(
    guard: Optional[ExecutionGuard] = None,
    *,
    time_limit: Optional[float] = None,
    step_budget: Optional[int] = None,
    memory_budget: Optional[int] = None,
    label: str = "",
) -> Iterator[ExecutionGuard]:
    """Run a block under a (new or given) :class:`ExecutionGuard`."""
    if guard is None:
        guard = ExecutionGuard(
            deadline=(
                time.monotonic() + time_limit if time_limit is not None else None
            ),
            step_budget=step_budget,
            memory_budget=memory_budget,
            label=label,
        )
    push_guard(guard)
    try:
        yield guard
    finally:
        pop_guard(guard)


def guard_checkpoint(steps: int = 1) -> None:
    """Poll the active guard; a noop when no guard is installed.

    This is the call every tier's abort checkpoints make: the evaluator on
    each evaluation step, the VM on instruction batches, compiled code at
    loop headers and prologues (via ``runtime_check_abort``), and standalone
    exported code directly — which is how ``TimeConstrained`` still enforces
    its deadline by wall clock with no engine attached (§4.6).
    """
    if _faults._INJECTOR is not None:
        _faults.fire("guard.checkpoint")
    guard = getattr(_tls, "top", None)
    if guard is not None:
        guard.check(steps)


def charge_memory(nbytes: int) -> None:
    """Charge an allocation against the active guard; noop when unguarded."""
    guard = getattr(_tls, "top", None)
    if guard is not None:
        guard.charge_memory(nbytes)


# -- execution tiers -------------------------------------------------------------------


class Tier(Enum):
    """The execution tiers, fastest first.

    ``TEMPLATE`` is the baseline-compiler rung introduced by the hotspot
    ladder (copy-and-patch stitched Python, microsecond compile latency):
    faster than the bytecode VM at steady state, far cheaper than the full
    pipeline at compile time.  Standalone ``FunctionCompile`` artifacts
    never occupy it — they still demote compiled → bytecode directly.
    """

    COMPILED = "compiled"
    TEMPLATE = "template"
    BYTECODE = "bytecode"
    INTERPRETER = "interpreter"


#: where a tripped tier demotes to.  The compiled tier skips the template
#: rung on demotion: a template artifact is a *promotion* product (built
#: from a hotspot plan), not a fallback a failing compiled artifact could
#: synthesize mid-call, and the bytecode artifact it already carries shares
#: the interpreter-exact semantics the soft-failure contract wants.
DEMOTION: dict[Tier, Tier] = {
    Tier.COMPILED: Tier.BYTECODE,
    Tier.TEMPLATE: Tier.BYTECODE,
    Tier.BYTECODE: Tier.INTERPRETER,
}

@dataclass(frozen=True)
class FailureRecord:
    """One soft failure or tier transition, as observed by the guard layer."""

    sequence: int
    function: str
    tier: Tier
    kind: str
    message: str = ""
    #: set on demotion records: (from_tier, to_tier)
    transition: Optional[tuple[Tier, Tier]] = None


#: ring-buffer capacity of the process-wide failure log; bounded so a
#: long-running multi-tenant server cannot leak memory through it
DEFAULT_FAILURE_LOG_MAX = 1024
_FAILURE_LOG_ENV = "REPRO_FAILURE_LOG_MAX"


def failure_log_capacity_from_environment() -> int:
    raw = os.environ.get(_FAILURE_LOG_ENV)
    if raw is None:
        return DEFAULT_FAILURE_LOG_MAX
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_FAILURE_LOG_MAX


class FailureLog:
    """A bounded, thread-safe, queryable ring of :class:`FailureRecord`.

    The ring (``collections.deque(maxlen=capacity)``) drops the *oldest*
    records once full, so ``failure_records()`` always reflects the most
    recent failures and the log's footprint is O(capacity) no matter how
    long the process serves.  Capacity defaults to ``REPRO_FAILURE_LOG_MAX``
    (:data:`DEFAULT_FAILURE_LOG_MAX` when unset).  All access is serialized
    by a lock: sessions on concurrent server worker threads record into the
    same process-wide log.
    """

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = (
            capacity if capacity is not None
            else failure_log_capacity_from_environment()
        )
        self._records: deque[FailureRecord] = deque(maxlen=self.capacity)
        self._sequence = 0  # counts every record ever made, past evictions
        self._lock = threading.Lock()

    def record(
        self,
        function: str,
        tier: Tier,
        kind: str,
        message: str = "",
        transition: Optional[tuple[Tier, Tier]] = None,
    ) -> FailureRecord:
        with self._lock:
            self._sequence += 1
            entry = FailureRecord(
                sequence=self._sequence,
                function=function,
                tier=tier,
                kind=kind,
                message=message,
                transition=transition,
            )
            self._records.append(entry)  # deque maxlen evicts the oldest
        return entry

    def records(
        self,
        function: Optional[str] = None,
        tier: Optional[Tier] = None,
        kind: Optional[str] = None,
    ) -> list[FailureRecord]:
        with self._lock:
            found: list[FailureRecord] = list(self._records)
        if function is not None:
            found = [r for r in found if r.function == function]
        if tier is not None:
            found = [r for r in found if r.tier == tier]
        if kind is not None:
            found = [r for r in found if r.kind == kind]
        return found

    def transitions(
        self, function: Optional[str] = None
    ) -> list[FailureRecord]:
        return [
            r for r in self.records(function) if r.transition is not None
        ]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


#: the process-wide failure log (queryable via ``repro.compiler.api``)
FAILURE_LOG = FailureLog()


class CircuitBreaker:
    """Per-function tier governor: demote after ``threshold`` soft failures.

    Failures are counted per tier; once a tier accumulates ``threshold``
    soft failures the breaker trips, the function demotes one tier
    (compiled → bytecode → interpreter), and the failing tier is never
    re-attempted until :meth:`reset`.  A tier can also be declared
    :meth:`unavailable` outright (e.g. the program does not translate onto
    the VM's ISA), which demotes immediately.
    """

    def __init__(
        self,
        function: str,
        threshold: int = 3,
        start: Tier = Tier.COMPILED,
        log: Optional[FailureLog] = None,
    ):
        self.function = function
        self.threshold = threshold
        self.start = start
        self.tier = start
        self.failures: dict[Tier, int] = {t: 0 for t in Tier}
        self.log = log if log is not None else FAILURE_LOG
        #: serializes counters and the tier transition: concurrent server
        #: sessions may fail the same function on different worker threads,
        #: and exactly one racing failure must carry the demotion record
        self._lock = threading.Lock()

    def record_failure(self, tier: Tier, kind: str, message: str = "") -> Tier:
        """Count one soft failure; returns the (possibly demoted) tier."""
        self.log.record(self.function, tier, kind, message)
        with self._lock:
            self.failures[tier] += 1
            if (
                tier is self.tier
                and tier in DEMOTION
                and self.failures[tier] >= self.threshold
            ):
                self._demote(tier, kind=f"CircuitOpen:{kind}")
            return self.tier

    def unavailable(self, tier: Tier, reason: str) -> Tier:
        """Declare a tier unusable (compile/translate failure); demote now."""
        with self._lock:
            if tier is self.tier and tier in DEMOTION:
                self._demote(tier, kind="TierUnavailable", message=reason)
            return self.tier

    def _demote(self, tier: Tier, kind: str, message: str = "") -> None:
        target = DEMOTION[tier]
        self.log.record(
            self.function, tier, kind, message, transition=(tier, target)
        )
        self.tier = target
        _observe.event(
            "tier.demote", "guard", symbol=self.function, kind=kind,
            **{"from": tier.value, "to": target.value},
        )

    def tripped(self, tier: Tier) -> bool:
        return self.failures[tier] >= self.threshold

    def reset(self) -> None:
        with self._lock:
            self.tier = self.start
            self.failures = {t: 0 for t in Tier}


@dataclass
class FallbackStats:
    """Inspection/reset API for a compiled function's fallback behaviour.

    Replaces the old bare ``fallback_count`` integer: per-tier call and
    failure counters, failure kinds, and the breaker's current tier.
    Surfaced through ``.stats()`` on both compiled-function artifacts and
    the ``python -m repro --stats`` CLI.
    """

    calls: dict[str, int] = field(default_factory=dict)
    failures: dict[str, int] = field(default_factory=dict)
    kinds: dict[str, int] = field(default_factory=dict)
    interpreter_reruns: int = 0
    current_tier: str = Tier.COMPILED.value

    def record_call(self, tier: Tier) -> None:
        self.calls[tier.value] = self.calls.get(tier.value, 0) + 1

    def record_failure(self, tier: Tier, kind: str) -> None:
        self.failures[tier.value] = self.failures.get(tier.value, 0) + 1
        self.kinds[kind] = self.kinds.get(kind, 0) + 1

    def record_rerun(self) -> None:
        self.interpreter_reruns += 1

    @property
    def fallback_total(self) -> int:
        return self.interpreter_reruns

    def reset(self) -> None:
        self.calls.clear()
        self.failures.clear()
        self.kinds.clear()
        self.interpreter_reruns = 0
        self.current_tier = Tier.COMPILED.value

    def summary(self) -> str:
        calls = ", ".join(f"{t}={n}" for t, n in sorted(self.calls.items()))
        kinds = ", ".join(f"{k}={n}" for k, n in sorted(self.kinds.items()))
        return (
            f"tier={self.current_tier} calls[{calls or 'none'}] "
            f"reruns={self.interpreter_reruns} kinds[{kinds or 'none'}]"
        )
