"""Profile-guided tier-up: promote hot DownValue functions up a tier ladder.

PR 1 shipped the *demotion* half of tier governance — the
:class:`~repro.runtime.guard.CircuitBreaker` walks a failing function down
the ladder.  This module is the symmetric *promotion* half (Titzer 2023: a
tiered runtime needs both directions), now a **three-rung ladder**:

1. **interpreter** — every symbol starts here; a lightweight profiler
   counts DownValue applications per symbol;
2. **template JIT** (``REPRO_TEMPLATE_THRESHOLD``, default 2): at the low
   threshold the definition is synthesized into a typed plan and stitched
   by :mod:`repro.template_jit` — microsecond compile latency, so a
   just-became-hot function gets decent code almost immediately instead of
   stalling on the full pipeline (the copy-and-patch tradeoff, Xu &
   Kjolstad 2021);
3. **full pipeline** (``REPRO_HOTSPOT_THRESHOLD``, default 16): functions
   that *stay* hot tier up again — the same plan is compiled through
   ``FunctionCompile`` and the template entry is replaced.  If the
   compiled tier is unavailable the function simply keeps its template
   artifact (which already beats the bytecode VM).

With the template rung disabled (``REPRO_TEMPLATE_JIT=0``) the ladder
degenerates to the PR 2 behaviour: one promotion at the full threshold,
preferring ``FunctionCompile`` and falling back to the bytecode VM.

The expensive rung is durable: ``FunctionCompile`` (and the bytecode
tier's ``compile_function``) consult the persistent artifact cache
(:mod:`repro.artifacts`), so a function promoted in one process promotes
from a cache hit in the next — no pipeline passes run.  The template rung
deliberately stays cache-free: its stitch is microseconds, cheaper than a
cache probe.  :meth:`HotspotProfiler.preload` is the AOT entry point —
a warm image's manifest replays hot definitions through the full-pipeline
rung at boot, before any call is dispatched.

Governance invariants:

* a promoted artifact keeps its own ``CircuitBreaker`` (renamed to the
  symbol for attribution), so soft failures demote it exactly as PR 1
  specified — a template artifact walks template → bytecode → interpreter;
  when the breaker reaches the interpreter tier the promotion is
  withdrawn entirely and re-promotion is blocked until the definition
  changes;
* any change to the symbol's rules — ``Set``, ``Clear``, ``Block`` restore —
  invalidates the promotion in the same ``state_version`` bump: validation
  runs before every promoted dispatch, a stale entry is dropped, and the
  call falls through to ordinary rule dispatch;
* argument gating is exact: a call whose arguments do not match the
  promoted signature (class and int64 range) is evaluated interpretively,
  never coerced;
* the server's degradation cap (:meth:`HotspotProfiler.demote_all`) ranks
  the rungs compiled > template > bytecode > interpreter and both
  promotion paths re-check it before installing an artifact.

Event vocabulary (emitted through :mod:`repro.observe` when tracing is
enabled; every event carries ``symbol=<name>``):

``hotspot.promote`` (span)
    one promotion attempt — synthesis, compilability gating, and tier
    compilation — timed end to end (tier-up attempts add ``upgrade``);
``template.compile`` (span)
    the stitch+compile of one template artifact (emitted by
    :mod:`repro.template_jit.compiler`);
``tier.promote``
    promotion succeeded; args add ``tier`` ("compiled" | "template" |
    "bytecode") and ``applications`` (the profile count that triggered
    it); tier-ups from the template rung add ``upgraded_from``;
``tier.demote``
    a promoted artifact's breaker exhausted all tiers and the promotion
    was withdrawn; args add ``from``/``to`` tier names (per-failure breaker
    demotions are emitted by :mod:`repro.runtime.guard` under the same
    event name);
``tier.invalidate``
    the promotion was dropped because the definition changed (``Set``,
    ``Clear``, ``Block`` restore) or was explicitly invalidated;
``tier.blocked``
    the definition failed the promotion gate; args add ``reason``.

The same transitions are always recorded as :class:`PromotionEvent` audit
rows (``--stats``) whether or not tracing is on.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro import observe as _observe
from repro.errors import WolframAbort
from repro.mexpr.atoms import MInteger, MReal, MSymbol
from repro.mexpr.expr import MExpr, MExprNormal
from repro.mexpr.symbols import S, to_mexpr
from repro.runtime.guard import Tier

DEFAULT_THRESHOLD = 16
_ENV_KNOB = "REPRO_HOTSPOT_THRESHOLD"

#: the template rung fires almost immediately — its compile is microseconds
DEFAULT_TEMPLATE_THRESHOLD = 2
_TEMPLATE_KNOB = "REPRO_TEMPLATE_THRESHOLD"
#: set to ``0``/``off``/``false`` to disable the template rung entirely
_TEMPLATE_ENABLE_KNOB = "REPRO_TEMPLATE_JIT"

#: pattern-construct heads (mirrors ``engine.definitions._PATTERN_HEADS``)
_PATTERN_HEADS = frozenset({
    "Pattern", "Blank", "BlankSequence", "BlankNullSequence",
    "Alternatives", "Condition", "PatternTest", "HoldPattern",
})

#: control heads usable in a promoted body beyond pure numeric calls
_CONTROL_HEADS = frozenset({"If", "And", "Or", "Not"})

#: exact integer semantics diverge from machine arithmetic for these heads
#: (``5/2`` is ``Rational[5, 2]``, ``2^-1`` is ``1/2``): block promotion of
#: integer-typed definitions that use them
_INT_UNSAFE_HEADS = frozenset({"Divide", "Power", "Sqrt"})

_TYPE_NAMES = {"i": "MachineInteger", "r": "Real64"}

#: promotion synthesizes one branch per non-general rule; past this many
#: rules the If chain stops paying for itself
_MAX_RULES = 8
_INT64_MIN, _INT64_MAX = -(2 ** 63), 2 ** 63 - 1


def threshold_from_environment() -> int:
    raw = os.environ.get(_ENV_KNOB)
    if raw is None:
        return DEFAULT_THRESHOLD
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_THRESHOLD


def template_threshold_from_environment() -> int:
    raw = os.environ.get(_TEMPLATE_KNOB)
    if raw is None:
        return DEFAULT_TEMPLATE_THRESHOLD
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_TEMPLATE_THRESHOLD


def template_enabled_from_environment() -> bool:
    raw = os.environ.get(_TEMPLATE_ENABLE_KNOB)
    if raw is None:
        return True
    return raw.strip().lower() not in ("0", "off", "false", "no")


@dataclass
class PromotedFunction:
    """One symbol's live promotion: artifact + validity + type gate."""

    name: str
    artifact: object
    tier_kind: str  # "compiled" | "template" | "bytecode"
    gate_types: tuple[type, ...]
    kinds: tuple[str, ...]
    #: kernel version the entry was last validated against
    state_version: int
    #: identity snapshot of the rule list backing the promotion
    rules_list: list
    rules: tuple
    hits: int = 0
    #: the synthesized plan, kept on template entries so the tier-up to the
    #: full pipeline skips re-synthesis
    plan: Optional[object] = None
    #: set when a tier-up attempt failed; the entry stays template for good
    upgrade_blocked: bool = False

    def artifact_tier(self) -> Tier:
        breaker = getattr(self.artifact, "_breaker", None)
        if breaker is None:
            breaker = self.artifact.breaker
        return breaker.tier


@dataclass
class PromotionEvent:
    """Audit record surfaced by ``--stats`` and the tests."""

    name: str
    action: str  # "promoted" | "invalidated" | "demoted" | "blocked"
    tier: str
    detail: str = ""


@dataclass
class _Plan:
    """A synthesized, compilable view of one symbol's DownValues."""

    parameters: tuple[str, ...]
    kinds: tuple[str, ...]
    gate_types: tuple[type, ...]
    body: MExpr
    recursive: bool


#: tier ordering for the degradation cap, hottest highest
_TIER_RANK = {
    Tier.COMPILED: 3,
    Tier.TEMPLATE: 2,
    Tier.BYTECODE: 1,
    Tier.INTERPRETER: 0,
}


class HotspotProfiler:
    """Counts DownValue applications and promotes past the threshold.

    The promotion table is shared mutable state when a session's requests
    run on changing server worker threads, so every structural mutation
    (promotion, withdrawal, invalidation) happens under an ``RLock``; the
    per-dispatch counter bumps stay lock-free — a lost increment only
    shifts promotion by one application.
    """

    def __init__(
        self,
        threshold: Optional[int] = None,
        template_threshold: Optional[int] = None,
        template_enabled: Optional[bool] = None,
    ):
        self.threshold = (
            threshold if threshold is not None else threshold_from_environment()
        )
        self.template_threshold = (
            template_threshold if template_threshold is not None
            else template_threshold_from_environment()
        )
        self.template_enabled = (
            template_enabled if template_enabled is not None
            else template_enabled_from_environment()
        )
        self.counts: dict[str, int] = {}
        self.promoted: dict[str, PromotedFunction] = {}
        self.events: list[PromotionEvent] = []
        #: cumulative wall-clock compile cost and promotion count per tier
        #: (surfaced by the ``--stats`` hot-function report)
        self.compile_seconds: dict[str, float] = {}
        self.compile_count: dict[str, int] = {}
        #: the hottest tier promotion may target; lowered by the server's
        #: graceful-degradation path (see :meth:`demote_all`)
        self.max_tier: Tier = Tier.COMPILED
        #: definitions that failed the gate, keyed to the exact rule tuple
        #: that failed — redefinition clears the block
        self._blocked: dict[str, tuple] = {}
        #: definitions the template stitcher declined (keyed like
        #: ``_blocked``): they stay interpreted until the full-pipeline rung
        self._template_blocked: dict[str, tuple] = {}
        self._in_progress: set[str] = set()
        self._lock = threading.RLock()

    # -- dispatch-side API (called from Evaluator._apply_down_values) --------

    def dispatch(self, evaluator, name, definition, expression):
        """Run ``expression`` on the promoted tier, or ``None`` to decline."""
        entry = self.promoted.get(name)
        if entry is None:
            return None
        with self._lock:
            if self.promoted.get(name) is not entry:
                return None  # a racer invalidated or withdrew it
            if not self._validate(evaluator, name, definition, entry):
                return None
            if entry.artifact_tier() is Tier.INTERPRETER:
                # the breaker walked the artifact all the way down:
                # interpreting *through* the artifact adds pure overhead, so
                # withdraw the promotion and block re-promotion until the
                # rules change
                del self.promoted[name]
                self._blocked[name] = entry.rules
                self.events.append(
                    PromotionEvent(name, "demoted", Tier.INTERPRETER.value,
                                   "circuit breaker exhausted all tiers")
                )
                _observe.event(
                    "tier.demote", "hotspot", symbol=name,
                    reason="promotion withdrawn: breaker exhausted all tiers",
                    **{"from": entry.tier_kind, "to": Tier.INTERPRETER.value},
                )
                return None
        # rung 3: a template entry that *stays* hot tiers up to the full
        # pipeline once total applications reach the high threshold
        if (
            entry.tier_kind == "template"
            and not entry.upgrade_blocked
            and self.counts.get(name, 0) + entry.hits + 1 >= self.threshold
        ):
            upgraded = self._attempt_upgrade(evaluator, name, entry)
            if upgraded is not None:
                entry = upgraded
        # the type gate and the artifact call run outside the lock: the
        # artifact is where the time goes, and it never mutates the table
        arguments = expression.args
        if len(arguments) != len(entry.gate_types):
            return None
        values = []
        for argument, gate, kind in zip(
            arguments, entry.gate_types, entry.kinds
        ):
            if type(argument) is not gate:
                return None
            value = argument.value
            if kind == "i" and not _INT64_MIN <= value <= _INT64_MAX:
                return None
            values.append(value)
        entry.hits += 1
        result = entry.artifact(*values)
        if isinstance(result, MExpr):
            return result
        return to_mexpr(result)

    def record(self, evaluator, name, definition, expression) -> None:
        """Count one interpreted rule application; maybe promote.

        Two trigger points implement the ladder's promotion side: the low
        template threshold stitches a baseline artifact (rung 2), the high
        threshold runs the full pipeline directly (rung 1 → 3 when the
        template rung is disabled, declined the definition, or raced).
        """
        count = self.counts.get(name, 0) + 1
        self.counts[name] = count
        if name in self.promoted:
            return
        full = count >= self.threshold
        if not full and not (
            self.template_enabled and count >= self.template_threshold
        ):
            return
        if self.max_tier is Tier.INTERPRETER:
            return  # degraded to the floor: promotion disabled outright
        if not full and self.max_tier in (Tier.BYTECODE,):
            return  # cap below the template rung: wait for the high rung
        with self._lock:
            if name in self.promoted or name in self._in_progress:
                return
            rules = tuple(definition.down_values)
            if self._blocked.get(name) == rules:
                return
            if not full and self._template_blocked.get(name) == rules:
                return  # the stitcher declined: hold for the full pipeline
            self._in_progress.add(name)
        try:
            self._attempt_promotion(
                evaluator, name, definition, expression, full
            )
        finally:
            self._in_progress.discard(name)

    def preload(self, evaluator, name: str) -> bool:
        """AOT warm boot: promote ``name`` straight to the compiled tier
        before any call is ever dispatched.

        The manifest of a warm image (:mod:`repro.artifacts.aot`) lists the
        definitions that were hot when the image was built; at boot the
        server replays them through this method.  The plan synthesis and
        the compiled-tier gate are exactly the runtime promotion path —
        ``FunctionCompile`` inside :meth:`_compile_compiled_tier` hits the
        persistent artifact cache, so a warm preload costs a cache probe
        instead of a pipeline run.  Definitions that synthesis cannot type
        without an observed call (undeclared argument positions) are left
        to runtime profiling; returns ``True`` only when an artifact was
        installed.
        """
        definition = evaluator.state.lookup(name)
        if definition is None or not definition.down_values:
            return False
        if self.max_tier is not Tier.COMPILED:
            return False
        with self._lock:
            if name in self.promoted or name in self._in_progress:
                return False
            self._in_progress.add(name)
        try:
            with _observe.span("hotspot.promote", "hotspot", symbol=name,
                               rung="full", preload=True):
                plan = self._synthesize(name, definition, None)
                if plan is None or plan is _RETRY_LATER:
                    return False
                started = time.perf_counter()
                artifact = self._compile_compiled_tier(evaluator, name, plan)
                elapsed = time.perf_counter() - started
                if artifact is None:
                    return False
                with self._lock:
                    self.promoted[name] = PromotedFunction(
                        name=name,
                        artifact=artifact,
                        tier_kind="compiled",
                        gate_types=plan.gate_types,
                        kinds=plan.kinds,
                        state_version=evaluator.state.state_version,
                        rules_list=definition.down_values,
                        rules=tuple(definition.down_values),
                        plan=plan,
                    )
                    self._charge_compile("compiled", elapsed)
                    self.events.append(
                        PromotionEvent(name, "promoted", "compiled",
                                       "AOT preload")
                    )
            _observe.event("tier.promote", "hotspot", symbol=name,
                           tier="compiled", applications=0, preload=True)
            _observe.count("hotspot.promotions.compiled")
            return True
        finally:
            self._in_progress.discard(name)

    # -- bookkeeping ---------------------------------------------------------

    def _validate(self, evaluator, name, definition, entry) -> bool:
        version = evaluator.state.state_version
        if entry.state_version == version:
            return True
        rules = definition.down_values
        if entry.rules_list is rules and len(rules) == len(entry.rules) and all(
            a is b for a, b in zip(rules, entry.rules)
        ):
            entry.state_version = version  # unrelated definition changed
            return True
        # the rules behind the promotion changed: drop it in this same bump
        del self.promoted[name]
        self.counts[name] = 0
        self._blocked.pop(name, None)
        self._template_blocked.pop(name, None)
        self.events.append(
            PromotionEvent(name, "invalidated", entry.tier_kind,
                           "definition changed")
        )
        _observe.event("tier.invalidate", "hotspot", symbol=name,
                       reason="definition changed")
        return False

    def invalidate(self, name: str) -> None:
        """Explicitly drop a promotion (test/tooling hook)."""
        with self._lock:
            entry = self.promoted.pop(name, None)
            if entry is not None:
                self.counts[name] = 0
                self.events.append(
                    PromotionEvent(name, "invalidated", entry.tier_kind,
                                   "explicit invalidation")
                )
                _observe.event("tier.invalidate", "hotspot", symbol=name,
                               reason="explicit invalidation")

    def demote_all(self, cap: Tier, reason: str = "degradation") -> int:
        """Cap promotion at ``cap`` and withdraw hotter live promotions.

        The graceful-degradation hook of the multi-tenant server: under
        memory pressure sessions step down compiled → bytecode →
        interpreter.  Returns the number of promotions withdrawn.  Raising
        the cap back re-enables promotion, and withdrawn functions
        re-promote once they get hot again — their profile counts restart
        from zero.
        """
        with self._lock:
            self.max_tier = cap
            withdrawn = 0
            for name, entry in list(self.promoted.items()):
                if _TIER_RANK[Tier(entry.tier_kind)] <= _TIER_RANK[cap]:
                    continue
                del self.promoted[name]
                self.counts[name] = 0
                withdrawn += 1
                self.events.append(
                    PromotionEvent(name, "demoted", cap.value, reason)
                )
                _observe.event(
                    "tier.demote", "hotspot", symbol=name, reason=reason,
                    **{"from": entry.tier_kind, "to": cap.value},
                )
            return withdrawn

    def table(self) -> list[tuple]:
        """Rows for the ``--stats`` report: hottest functions first."""
        rows = []
        for name, count in sorted(
            self.counts.items(), key=lambda item: -item[1]
        ):
            entry = self.promoted.get(name)
            if entry is not None:
                status = f"promoted:{entry.tier_kind}"
                tier = entry.artifact_tier().value
                hits = entry.hits
            else:
                status = "blocked" if name in self._blocked else "profiling"
                tier = Tier.INTERPRETER.value
                hits = 0
            rows.append((name, count, status, tier, hits))
        return rows

    def compile_time_table(self) -> list[tuple[str, int, float]]:
        """``(tier, promotions, cumulative compile seconds)`` rows for the
        ``--stats`` report, hottest tier first."""
        order = {"compiled": 0, "template": 1, "bytecode": 2}
        tiers = set(self.compile_count) | set(self.compile_seconds)
        return [
            (
                tier_kind,
                self.compile_count.get(tier_kind, 0),
                self.compile_seconds.get(tier_kind, 0.0),
            )
            for tier_kind in sorted(tiers, key=lambda t: order.get(t, 9))
        ]

    # -- promotion -----------------------------------------------------------

    def _attempt_promotion(self, evaluator, name, definition, expression,
                           full: bool):
        with _observe.span("hotspot.promote", "hotspot", symbol=name,
                           rung="full" if full else "template"):
            self._attempt_promotion_inner(
                evaluator, name, definition, expression, full
            )

    def _attempt_promotion_inner(self, evaluator, name, definition,
                                 expression, full: bool):
        plan = self._synthesize(name, definition, expression)
        if plan is None:
            self._block(name, definition, "definition is not promotable")
            return
        if plan is _RETRY_LATER:
            # e.g. symbolic arguments this call: stay hot, try again next time
            trigger = self.threshold if full else self.template_threshold
            self.counts[name] = trigger - 1
            return
        started = time.perf_counter()
        if full:
            artifact, tier_kind = self._compile_plan(evaluator, name, plan)
        else:
            artifact = self._compile_template(evaluator, name, plan)
            tier_kind = "template" if artifact is not None else ""
            if artifact is None:
                # the stitcher declined; not fatal — the definition stays
                # interpreted until the full-pipeline rung takes over
                with self._lock:
                    self._template_blocked[name] = tuple(
                        definition.down_values
                    )
                    self.events.append(
                        PromotionEvent(
                            name, "blocked", Tier.TEMPLATE.value,
                            "template stitch declined; deferred to the "
                            "full pipeline",
                        )
                    )
                _observe.event(
                    "tier.blocked", "hotspot", symbol=name,
                    tier=Tier.TEMPLATE.value,
                    reason="template stitch declined",
                )
                return
        elapsed = time.perf_counter() - started
        if artifact is None:
            self._block(name, definition, "no tier accepted the definition")
            return
        with self._lock:
            # compilation ran outside the lock; the server's degradation
            # path may have lowered the cap meanwhile (``demote_all`` only
            # withdraws entries already in the table).  Installing an
            # over-cap artifact now would stick until the *next* cap
            # change, so re-check and drop it instead.
            if _TIER_RANK[Tier(tier_kind)] > _TIER_RANK[self.max_tier]:
                self.events.append(
                    PromotionEvent(name, "blocked", self.max_tier.value,
                                   "tier cap lowered during promotion")
                )
                _observe.event("tier.blocked", "hotspot", symbol=name,
                               reason="tier cap lowered during promotion")
                return
            self.promoted[name] = PromotedFunction(
                name=name,
                artifact=artifact,
                tier_kind=tier_kind,
                gate_types=plan.gate_types,
                kinds=plan.kinds,
                state_version=evaluator.state.state_version,
                rules_list=definition.down_values,
                rules=tuple(definition.down_values),
                plan=plan,
            )
            self._charge_compile(tier_kind, elapsed)
            self.events.append(
                PromotionEvent(name, "promoted", tier_kind,
                               f"after {self.counts[name]} applications")
            )
        _observe.event("tier.promote", "hotspot", symbol=name,
                       tier=tier_kind, applications=self.counts[name])
        _observe.count(f"hotspot.promotions.{tier_kind}")

    def _attempt_upgrade(self, evaluator, name, entry):
        """Tier-up a template entry to the full pipeline (rung 2 → 3).

        Only the compiled tier counts as an upgrade — the bytecode VM ranks
        *below* the template artifact, so if ``FunctionCompile`` declines
        the entry is marked ``upgrade_blocked`` and keeps its template
        artifact for good.  Returns the new entry, or ``None``.
        """
        with self._lock:
            if self.promoted.get(name) is not entry \
                    or name in self._in_progress:
                return None
            if self.max_tier is not Tier.COMPILED:
                return None  # capped below the compiled rung: stay template
            self._in_progress.add(name)
        try:
            with _observe.span("hotspot.promote", "hotspot", symbol=name,
                               rung="full", upgrade=True):
                started = time.perf_counter()
                artifact = self._compile_compiled_tier(
                    evaluator, name, entry.plan
                )
                elapsed = time.perf_counter() - started
                if artifact is None:
                    entry.upgrade_blocked = True
                    return None
                with self._lock:
                    if self.promoted.get(name) is not entry:
                        return None  # invalidated/withdrawn while compiling
                    if self.max_tier is not Tier.COMPILED:
                        entry.upgrade_blocked = True
                        return None  # cap lowered during the compile
                    upgraded = PromotedFunction(
                        name=name,
                        artifact=artifact,
                        tier_kind="compiled",
                        gate_types=entry.gate_types,
                        kinds=entry.kinds,
                        state_version=entry.state_version,
                        rules_list=entry.rules_list,
                        rules=entry.rules,
                        hits=entry.hits,
                        plan=entry.plan,
                    )
                    self.promoted[name] = upgraded
                    self._charge_compile("compiled", elapsed)
                    applications = self.counts.get(name, 0) + entry.hits
                    self.events.append(
                        PromotionEvent(
                            name, "promoted", "compiled",
                            f"tier-up from template after {applications} "
                            "applications",
                        )
                    )
            _observe.event(
                "tier.promote", "hotspot", symbol=name, tier="compiled",
                applications=applications, upgraded_from="template",
            )
            if upgraded:
                _observe.count("hotspot.promotions.compiled")
            return upgraded
        finally:
            self._in_progress.discard(name)

    def _charge_compile(self, tier_kind: str, seconds: float) -> None:
        self.compile_seconds[tier_kind] = (
            self.compile_seconds.get(tier_kind, 0.0) + seconds
        )
        self.compile_count[tier_kind] = (
            self.compile_count.get(tier_kind, 0) + 1
        )

    def _block(self, name, definition, reason: str) -> None:
        with self._lock:
            self._blocked[name] = tuple(definition.down_values)
            self.events.append(
                PromotionEvent(name, "blocked", Tier.INTERPRETER.value,
                               reason)
            )
        _observe.event("tier.blocked", "hotspot", symbol=name, reason=reason)

    def _compile_plan(self, evaluator, name, plan):
        if self.max_tier is Tier.COMPILED:
            artifact = self._compile_compiled_tier(evaluator, name, plan)
            if artifact is not None:
                return artifact, "compiled"
        if plan.recursive:
            # the VM has no direct self-call; recursion would bounce through
            # the interpreter escape on every frame
            return None, ""
        try:
            from repro.bytecode.compiled_function import compile_function

            specs = MExprNormal(S.List, [
                MExprNormal(S.List, [
                    MSymbol(p),
                    MExprNormal(S.Blank, [
                        S.Integer if k == "i" else S.Real
                    ]),
                ])
                for p, k in zip(plan.parameters, plan.kinds)
            ])
            artifact = compile_function(specs, plan.body, evaluator=evaluator)
            artifact.breaker.function = name
            return artifact, "bytecode"
        except WolframAbort:
            raise
        except Exception:
            return None, ""

    def _compile_compiled_tier(self, evaluator, name, plan):
        typed_params = [
            MExprNormal(S.Typed, [MSymbol(p), to_mexpr(_TYPE_NAMES[k])])
            for p, k in zip(plan.parameters, plan.kinds)
        ]
        function = MExprNormal(
            S.Function, [MExprNormal(S.List, list(typed_params)), plan.body]
        )
        try:
            from repro.compiler.api import FunctionCompile

            artifact = FunctionCompile(function, evaluator=evaluator)
            # attribute breaker records to the engine-level symbol, so
            # failure_records() reads naturally in --stats
            artifact._breaker.function = name
            return artifact
        except WolframAbort:
            raise
        except Exception:
            return None

    def _compile_template(self, evaluator, name, plan):
        """Stitch the plan on the baseline tier; ``None`` when declined."""
        try:
            from repro.template_jit import compile_template

            return compile_template(
                plan.parameters, plan.kinds, plan.body,
                evaluator=evaluator, name=name,
            )
        except WolframAbort:
            raise
        except Exception:
            return None

    # -- plan synthesis ------------------------------------------------------

    def _synthesize(self, name, definition, expression):
        """Turn the symbol's DownValues into one typed, branching body.

        Shape accepted: every rule is ``name[args...]`` at one fixed arity;
        each argument is either a numeric literal or a (possibly typed)
        blank; exactly one rule — ordered last — is fully general (all
        blanks). Literal rules become an ``If`` chain in rule order, so
        dispatch semantics are preserved exactly.
        """
        rules = definition.down_values
        if not rules or len(rules) > _MAX_RULES:
            return None
        parsed = []
        arity = None
        for rule in rules:
            lhs = rule.lhs
            if lhs.is_atom() or not isinstance(lhs.head, MSymbol) \
                    or lhs.head.name != name:
                return None
            if arity is None:
                arity = len(lhs.args)
            elif len(lhs.args) != arity:
                return None
            slots = []
            for argument in lhs.args:
                slot = _parse_slot(argument)
                if slot is None:
                    return None
                slots.append(slot)
            parsed.append((slots, rule.rhs))
        if arity == 0:
            return None

        general = [
            index for index, (slots, _) in enumerate(parsed)
            if all(kind == "blank" for kind, _, _ in slots)
        ]
        if len(general) != 1 or general[0] != len(parsed) - 1:
            return None
        general_slots, general_rhs = parsed[-1]

        # one declared type per position, consistent across rules
        kinds: list[Optional[str]] = [None] * arity
        for slots, _ in parsed:
            for position, (kind, _, declared) in enumerate(slots):
                if kind != "blank" or declared is None:
                    continue
                if kinds[position] is None:
                    kinds[position] = declared
                elif kinds[position] != declared:
                    return None

        # undeclared positions take the class observed on the hot call;
        # non-numeric arguments mean "not now", not "never".  AOT preload
        # has no observed call (``expression is None``), so a definition
        # with any undeclared position is deferred to runtime profiling.
        gate_types: list[type] = [None] * arity  # type: ignore[list-item]
        for position in range(arity):
            if kinds[position] == "i":
                gate_types[position] = MInteger
            elif kinds[position] == "r":
                gate_types[position] = MReal
            elif expression is None:
                return _RETRY_LATER
            else:
                observed = expression.args[position]
                if type(observed) is MInteger:
                    kinds[position] = "i"
                    gate_types[position] = MInteger
                elif type(observed) is MReal:
                    kinds[position] = "r"
                    gate_types[position] = MReal
                else:
                    return _RETRY_LATER

        # canonical parameter names come from the general rule
        parameters = []
        for position, (kind, payload, _) in enumerate(general_slots):
            if payload:
                parameters.append(payload)
            else:
                parameters.append(f"$hot{position + 1}")

        # rename + compilability-check every rhs, then fold the If chain
        integer_typed = "i" in kinds
        body = self._rewrite_rhs(
            name, general_rhs, general_slots, parameters, integer_typed
        )
        if body is None:
            return None
        recursive = _calls_symbol(general_rhs, name)
        for slots, rhs in reversed(parsed[:-1]):
            branch = self._rewrite_rhs(
                name, rhs, slots, parameters, integer_typed
            )
            if branch is None:
                return None
            recursive = recursive or _calls_symbol(rhs, name)
            conditions = [
                MExprNormal(S.Equal, [MSymbol(parameters[position]), literal])
                for position, (kind, literal, _) in enumerate(slots)
                if kind == "literal"
            ]
            if not conditions:
                return None
            condition = (
                conditions[0] if len(conditions) == 1
                else MExprNormal(S.And, conditions)
            )
            body = MExprNormal(S.If, [condition, branch, body])
        return _Plan(
            parameters=tuple(parameters),
            kinds=tuple(kinds),  # type: ignore[arg-type]
            gate_types=tuple(gate_types),
            body=body,
            recursive=recursive,
        )

    def _rewrite_rhs(self, name, rhs, slots, parameters, integer_typed):
        """Rename rule-local pattern names to the canonical parameters and
        verify every call in the body is compilable."""
        from repro.engine.patterns import substitute

        renames = {}
        bound = set(parameters)
        for position, (kind, payload, _) in enumerate(slots):
            if kind == "blank" and payload:
                renames[payload] = MSymbol(parameters[position])
        if renames:
            rhs = substitute(rhs, renames)
        if not _body_compilable(rhs, name, bound, integer_typed):
            return None
        return rhs


#: sentinel: promotion not possible with *these* arguments, retry later
_RETRY_LATER = object()


def _parse_slot(argument: MExpr):
    """Classify one lhs argument.

    Returns ``("literal", literal_node, None)``,
    ``("blank", pattern_name_or_empty, declared_kind_or_None)``, or ``None``
    when the argument is outside the promotable shape.
    """
    if isinstance(argument, (MInteger, MReal)):
        return ("literal", argument, None)
    if argument.is_atom():
        return None
    head = argument.head
    if not isinstance(head, MSymbol):
        return None
    if head.name == "Pattern" and len(argument.args) == 2:
        pattern_name = argument.args[0]
        if not isinstance(pattern_name, MSymbol):
            return None
        inner = _parse_slot(argument.args[1])
        if inner is None or inner[0] != "blank":
            return None
        return ("blank", pattern_name.name, inner[2])
    if head.name == "Blank":
        if not argument.args:
            return ("blank", "", None)
        required = argument.args[0]
        if isinstance(required, MSymbol):
            if required.name == "Integer":
                return ("blank", "", "i")
            if required.name == "Real":
                return ("blank", "", "r")
        return None
    return None


def _body_compilable(
    body: MExpr, self_name: str, bound: set[str], integer_typed: bool
) -> bool:
    """Conservative gate: every head in ``body`` must be a function the
    bytecode table declares supported (or a control head, or a self-call),
    and every bare symbol must be a bound parameter or True/False/Null."""
    from repro.bytecode.supported import supported_function_names

    allowed = supported_function_names() | _CONTROL_HEADS | {self_name}
    stack = [body]
    while stack:
        node = stack.pop()
        if isinstance(node, MSymbol):
            if node.name not in bound and node.name not in (
                "True", "False", "Null"
            ):
                return False
            continue
        if isinstance(node, (MInteger, MReal)):
            continue
        if node.is_atom():  # strings, complexes: outside the numeric tiers
            return False
        head = node.head
        if not isinstance(head, MSymbol):
            return False
        if head.name in _PATTERN_HEADS:
            return False
        if head.name not in allowed:
            return False
        if integer_typed and head.name in _INT_UNSAFE_HEADS:
            return False
        stack.extend(node.args)
    return True


def _calls_symbol(body: MExpr, name: str) -> bool:
    for sub in body.subexpressions():
        if not sub.is_atom() and isinstance(sub.head, MSymbol) \
                and sub.head.name == name:
            return True
    return False


def enable_hotspot(
    evaluator,
    threshold: Optional[int] = None,
    template_threshold: Optional[int] = None,
    template_enabled: Optional[bool] = None,
):
    """Attach a profiler to an engine session (idempotent)."""
    if getattr(evaluator, "hotspot", None) is None:
        evaluator.hotspot = HotspotProfiler(
            threshold=threshold,
            template_threshold=template_threshold,
            template_enabled=template_enabled,
        )
    return evaluator.hotspot


def disable_hotspot(evaluator) -> None:
    evaluator.hotspot = None
