"""Reference-counted memory management for compiled code (feature F7).

The TWIR memory-management pass (§4.5) inserts ``MemoryAcquire`` at the head
of each variable's live interval and ``MemoryRelease`` at the tail.  Both are
"written polymorphically and are noop for unmanaged objects and Reference
Increment and ReferenceDecrement for reference counted objects" — exactly
what these functions do: machine scalars pass through untouched, while
managed objects (packed arrays, boxed expressions) have their counts
adjusted and are released at zero.

CPython garbage-collects regardless; the explicit counts exist so tests can
assert the paper's invariants (balanced acquire/release, no use after free)
and so the C backend can emit real calls.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.guard import charge_memory
from repro.runtime.packed import PackedArray

#: collected diagnostics: counts of acquire/release per run (test hook)
_STATS = {"acquire": 0, "release": 0, "freed": 0}

#: nominal bytes per packed element (machine word), for guard accounting
_WORD = 8


def memory_acquire(value: Any) -> Any:
    """Polymorphic acquire: refcount increment for managed objects, noop else.

    First acquisition of a managed object also charges its storage against
    the active :class:`~repro.runtime.guard.ExecutionGuard`, which is how
    ``MemoryConstrained`` sees compiled code's tensor allocations.
    """
    if isinstance(value, PackedArray):
        if value.ref_count == 0:
            charge_memory(_WORD * len(value.data))
        value.ref_count += 1
        _STATS["acquire"] += 1
    elif hasattr(value, "ref_count"):
        value.ref_count += 1
        _STATS["acquire"] += 1
    return value


def memory_release(value: Any) -> Any:
    """Polymorphic release: refcount decrement; frees storage at zero."""
    if isinstance(value, PackedArray) or hasattr(value, "ref_count"):
        value.ref_count -= 1
        _STATS["release"] += 1
        if value.ref_count <= 0:
            _STATS["freed"] += 1
    return value


def memory_stats() -> dict[str, int]:
    return dict(_STATS)


def reset_memory_stats() -> None:
    for key in _STATS:
        _STATS[key] = 0
