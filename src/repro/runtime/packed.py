"""Packed tensors for compiled code.

The new compiler operates on unboxed packed arrays (§6: the bytecode
compiler "operates on boxed array, and therefore any operation on arrays
incurs unboxing overhead").  ``PackedArray`` stores elements in a flat Python
list with explicit dimensions: flat-list indexing is the fastest random
element access CPython offers, which keeps the generated code's inner loops
comparable to the hand-optimized reference (our "hand-written C").

Wolfram part indexing is 1-based and supports negative indices; §6 notes
"all array accesses must be predicated at runtime" — ``part_index`` is that
predication, and the compiler can elide it when bounds are provably safe.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import WolframRuntimeError


class PackedArray:
    """A rank-``r`` rectangular tensor over one machine element type."""

    __slots__ = ("data", "dims", "element_type", "ref_count")

    def __init__(self, data: list, dims: tuple[int, ...], element_type: str):
        self.data = data
        self.dims = dims
        self.element_type = element_type
        self.ref_count = 1

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_nested(cls, nested: Sequence, element_type: str = "Real64") -> "PackedArray":
        dims: list[int] = []
        probe = nested
        while isinstance(probe, (list, tuple)):
            dims.append(len(probe))
            probe = probe[0] if probe else None
        flat: list = []
        # validate per level, not just the flat count: compensating ragged
        # rows like [[1,2],[3],[4,5,6]] multiply out to the right total
        _flatten_into(nested, dims, 0, flat)
        return cls(flat, tuple(dims), element_type)

    @classmethod
    def zeros(cls, dims: tuple[int, ...], element_type: str = "Real64") -> "PackedArray":
        size = 1
        for d in dims:
            size *= d
        zero = 0 if element_type.startswith("Integer") else 0.0
        return cls([zero] * size, dims, element_type)

    @classmethod
    def from_numpy(cls, array: np.ndarray, element_type: str | None = None) -> "PackedArray":
        if element_type is None:
            kind = array.dtype.kind
            element_type = {"i": "Integer64", "u": "UnsignedInteger64",
                            "f": "Real64", "c": "ComplexReal64"}.get(kind, "Real64")
        return cls(array.ravel().tolist(), array.shape, element_type)

    # -- structure ------------------------------------------------------------

    @property
    def rank(self) -> int:
        return len(self.dims)

    def __len__(self) -> int:
        return self.dims[0] if self.dims else 0

    @property
    def flat_length(self) -> int:
        return len(self.data)

    def copy(self) -> "PackedArray":
        """Structural copy; used by copy-on-write mutability semantics (F5)."""
        return PackedArray(list(self.data), self.dims, self.element_type)

    def to_numpy(self) -> np.ndarray:
        dtype = {"Integer64": np.int64, "UnsignedInteger8": np.uint8,
                 "Real64": np.float64, "ComplexReal64": np.complex128}.get(
            self.element_type, np.float64
        )
        return np.asarray(self.data, dtype=dtype).reshape(self.dims)

    def to_nested(self) -> list:
        return self.to_numpy().tolist()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedArray):
            return NotImplemented
        return self.dims == other.dims and self.data == other.data

    def __repr__(self) -> str:
        return f"PackedArray({self.element_type}, dims={self.dims})"

    # -- element access -------------------------------------------------------

    def part_index(self, index: int, length: int | None = None) -> int:
        """Normalize a 1-based, possibly negative Wolfram index to 0-based."""
        limit = length if length is not None else (self.dims[0] if self.dims else 0)
        if index < 0:
            index = limit + index + 1
        if index < 1 or index > limit:
            raise WolframRuntimeError(
                "PartOutOfRange", f"part {index} of a length-{limit} array"
            )
        return index - 1

    def get1(self, index: int):
        """Rank-1 element access with Wolfram indexing semantics."""
        return self.data[self.part_index(index, len(self.data) if self.rank == 1 else None)]

    def set1(self, index: int, value) -> None:
        self.data[self.part_index(index)] = value

    def get2(self, i: int, j: int):
        rows, cols = self.dims[0], self.dims[1]
        return self.data[self.part_index(i, rows) * cols + self.part_index(j, cols)]

    def set2(self, i: int, j: int, value) -> None:
        rows, cols = self.dims[0], self.dims[1]
        self.data[self.part_index(i, rows) * cols + self.part_index(j, cols)] = value


def _flatten_into(nested, dims: list, level: int, out: list) -> None:
    if level == len(dims):
        if isinstance(nested, (list, tuple)):
            raise WolframRuntimeError(
                "RaggedArray", "array is not rectangular"
            )
        out.append(nested)
        return
    if not isinstance(nested, (list, tuple)) or len(nested) != dims[level]:
        raise WolframRuntimeError("RaggedArray", "array is not rectangular")
    if level == len(dims) - 1:
        for item in nested:
            if isinstance(item, (list, tuple)):
                raise WolframRuntimeError(
                    "RaggedArray", "array is not rectangular"
                )
        out.extend(nested)
        return
    for item in nested:
        _flatten_into(item, dims, level + 1, out)


def packed_from_iterable(items: Iterable, element_type: str) -> PackedArray:
    data = list(items)
    return PackedArray(data, (len(data),), element_type)
