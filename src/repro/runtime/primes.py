"""Rabin–Miller probabilistic primality test (deterministic for 64-bit).

Used by the engine's ``PrimeQ`` and by the PrimeQ benchmark (§6), which the
paper implements "using the Rabin-Miller primality test" with a 2^14 seed
table of small primes embedded as a constant array.
"""

from __future__ import annotations

#: witnesses giving a deterministic answer for all n < 3.3e24
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_probable_prime(n: int) -> bool:
    """Rabin–Miller with deterministic witnesses (exact below 64 bits)."""
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _DETERMINISTIC_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def small_prime_table(limit: int = 1 << 14) -> list[int]:
    """Sieve of Eratosthenes seed table (the paper's 2^14 constant array)."""
    if limit < 2:
        return []
    sieve = bytearray([1]) * limit
    sieve[0] = sieve[1] = 0
    for i in range(2, int(limit ** 0.5) + 1):
        if sieve[i]:
            sieve[i * i :: i] = bytearray(len(range(i * i, limit, i)))
    return [i for i in range(limit) if sieve[i]]
