"""String runtime for compiled code.

§6 (FNV1a): "The new compiler has builtin support for strings and operates
on the UTF8 bytes within the string."  Compiled string values are Python
``str``; these helpers expose the UTF-8 byte view plus the string primitives
the compiler's type environment declares.
"""

from __future__ import annotations


def string_utf8_bytes(value: str) -> bytes:
    """The UTF-8 byte view compiled code iterates over (FNV1a benchmark)."""
    return value.encode("utf-8")


def string_length(value: str) -> int:
    return len(value)


def string_join(*parts: str) -> str:
    return "".join(parts)


def string_take(value: str, count: int) -> str:
    if count >= 0:
        return value[:count]
    return value[count:]


def string_drop(value: str, count: int) -> str:
    if count >= 0:
        return value[count:]
    return value[:count]


def string_byte_at(data: bytes, index: int) -> int:
    """1-based, negative-index-aware byte access."""
    length = len(data)
    if index < 0:
        index = length + index + 1
    return data[index - 1]


def to_character_codes(value: str) -> list[int]:
    return [ord(c) for c in value]


def from_character_codes(codes: list[int]) -> str:
    return "".join(chr(c) for c in codes)
