"""``repro.server`` — the resilient multi-session engine front-end.

An asyncio server over the synchronous engine: a shared warmed
:class:`BaseImage` with per-session copy-on-write overlays, bounded-queue
admission control with load shedding, per-session and per-tenant circuit
breakers, retry-with-jitter for transient failures, and graceful
degradation (tier demotion, overlay eviction) under memory pressure.
See DESIGN.md §10.
"""

from repro.server.admission import AdmissionController, RequestBudget
from repro.server.base import BaseImage, BaseImageError
from repro.server.breakers import BreakerBoard, RequestBreaker
from repro.server.chaos import ChaosReport, ChaosSpec, run_chaos, unleash
from repro.server.core import EngineServer, Response, ServerConfig
from repro.server.degrade import (
    BUDGET_SCALE,
    TIER_CAPS,
    DegradationManager,
    PressureLevel,
)
from repro.server.loadgen import LoadReport, LoadSpec, generate, run_load
from repro.server.retry import DEFAULT_TRANSIENT_KINDS, RetryPolicy
from repro.server.session import Outcome, Session, SessionState, SessionStats

__all__ = [
    "AdmissionController",
    "BaseImage",
    "BaseImageError",
    "BreakerBoard",
    "BUDGET_SCALE",
    "ChaosReport",
    "ChaosSpec",
    "DEFAULT_TRANSIENT_KINDS",
    "DegradationManager",
    "EngineServer",
    "LoadReport",
    "LoadSpec",
    "Outcome",
    "PressureLevel",
    "RequestBreaker",
    "RequestBudget",
    "Response",
    "RetryPolicy",
    "ServerConfig",
    "Session",
    "SessionState",
    "SessionStats",
    "TIER_CAPS",
    "generate",
    "run_chaos",
    "run_load",
    "unleash",
]
