"""Admission control: per-request budgets, a bounded queue, load shedding.

Every accepted request runs under an :class:`~repro.runtime.guard.
ExecutionGuard` derived from a :class:`RequestBudget` — the deadline /
step / memory budgets PR 1 built for ``TimeConstrained`` become the
server's fairness mechanism: no single request can hold a worker slot
longer than the budget allows, whatever the tenant submitted.

Concurrency is a two-stage funnel:

1. **shed or queue** — at most ``queue_limit`` requests may be *waiting*
   for a worker slot.  A request arriving past that bound is shed
   immediately with a structured :class:`~repro.errors.RejectedError`
   (``reason="queue-full"``) carrying a ``retry_after`` hint scaled by the
   current depth, so clients back off harder the deeper the overload;
2. **run** — at most ``max_concurrent`` requests hold executor slots.

Shedding at the door instead of timing out in the queue keeps the
server's latency distribution honest under overload: a request we cannot
serve within its deadline is cheaper to refuse in microseconds than to
fail in seconds (the classic load-shedding argument).
"""

from __future__ import annotations

import asyncio
import time
from contextlib import asynccontextmanager
from dataclasses import dataclass
from typing import Optional

from repro import observe as _observe
from repro.errors import RejectedError
from repro.runtime.guard import ExecutionGuard


@dataclass(frozen=True)
class RequestBudget:
    """The resource envelope one request may consume."""

    deadline_seconds: Optional[float] = 1.0
    steps: Optional[int] = 2_000_000
    memory_bytes: Optional[int] = 64 * 1024 * 1024

    def make_guard(self, label: str = "server.request") -> ExecutionGuard:
        return ExecutionGuard(
            deadline=(
                time.monotonic() + self.deadline_seconds
                if self.deadline_seconds is not None else None
            ),
            step_budget=self.steps,
            memory_budget=self.memory_bytes,
            label=label,
        )

    def scaled(self, factor: float) -> "RequestBudget":
        """A proportionally tighter budget (degraded-mode admission)."""
        return RequestBudget(
            deadline_seconds=(
                self.deadline_seconds * factor
                if self.deadline_seconds is not None else None
            ),
            steps=int(self.steps * factor) if self.steps is not None else None,
            memory_bytes=(
                int(self.memory_bytes * factor)
                if self.memory_bytes is not None else None
            ),
        )


class AdmissionController:
    """The bounded queue in front of the worker pool."""

    def __init__(
        self,
        max_concurrent: int = 4,
        queue_limit: int = 32,
        base_retry_after: float = 0.05,
    ):
        self.max_concurrent = max_concurrent
        self.queue_limit = queue_limit
        self.base_retry_after = base_retry_after
        self.waiting = 0
        self.running = 0
        self.shed = 0
        self.admitted = 0
        self.peak_queue_depth = 0
        self._slots: Optional[asyncio.Semaphore] = None

    def _semaphore(self) -> asyncio.Semaphore:
        # created lazily so the controller binds to the loop that serves it
        if self._slots is None:
            self._slots = asyncio.Semaphore(self.max_concurrent)
        return self._slots

    def queue_depth(self) -> int:
        return self.waiting

    @asynccontextmanager
    async def slot(self):
        """Admit (or shed) one request; hold a worker slot for the block."""
        if self.waiting >= self.queue_limit:
            self.shed += 1
            _observe.count("server.shed")
            retry_after = self.base_retry_after * (
                1.0 + self.waiting / max(1, self.queue_limit)
            )
            raise RejectedError(
                "queue-full",
                f"admission queue is saturated ({self.waiting} waiting, "
                f"limit {self.queue_limit})",
                retry_after=retry_after,
            )
        semaphore = self._semaphore()
        self.waiting += 1
        self.peak_queue_depth = max(self.peak_queue_depth, self.waiting)
        tracer = _observe.active_tracer()
        if tracer is not None:
            tracer.metrics.observe("server.queue_depth", self.waiting)
        try:
            # a cancelled wait leaves the semaphore un-acquired, so the
            # finally below is the only bookkeeping needed on that path
            await semaphore.acquire()
        finally:
            self.waiting -= 1
        self.running += 1
        self.admitted += 1
        _observe.count("server.admitted")
        _observe.event("server.admit", "server",
                       queue_depth=self.waiting, running=self.running)
        try:
            yield
        finally:
            self.running -= 1
            semaphore.release()

    def snapshot(self) -> dict:
        return {
            "waiting": self.waiting,
            "running": self.running,
            "admitted": self.admitted,
            "shed": self.shed,
            "queue_limit": self.queue_limit,
            "max_concurrent": self.max_concurrent,
            "peak_queue_depth": self.peak_queue_depth,
        }
