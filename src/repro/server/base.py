"""The shared warmed base image multi-tenant sessions are layered over.

One process hosts thousands of sessions, but almost everything a session
needs is identical across tenants: the builtin table, the attribute sets,
and — when the operator supplies a *prelude* of shared definitions — the
DownValue rule lists and their dispatch indexes.  :class:`BaseImage` warms
exactly one :class:`~repro.engine.evaluator.Evaluator` with that prelude,
freezes its :class:`~repro.engine.definitions.KernelState` into an
immutable mapping, and then stamps out per-session evaluators whose states
are copy-on-write overlays (``KernelState(base=...)``): a session that
redefines a prelude symbol gets a private copy, and nothing a session
writes is ever observable from another session.

This is the Futamura-projection reading of the server tier (PAPERS.md,
Williams & Perugini): the frozen image is the engine *specialized* to a
fixed definition set, paid for once at boot instead of once per session.
The projection goes one step further with an AOT **warm image**
(:mod:`repro.artifacts.aot`): :meth:`BaseImage.from_image` boots from a
manifest that embeds the compiled artifacts of the prelude's hot
definitions, so every session's tier-up to compiled code is a cache probe
instead of a pipeline run.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.engine.definitions import Definition, KernelState
from repro.engine.evaluator import Evaluator
from repro.errors import ReproError


class BaseImageError(ReproError):
    """The prelude failed to evaluate while warming the base image."""


class BaseImage:
    """An immutable, shared ``name -> Definition`` layer plus a factory
    for session evaluators layered over it.

    ``preload`` names prelude definitions every session evaluator promotes
    straight to the compiled tier at creation
    (:meth:`~repro.runtime.hotspot.HotspotProfiler.preload`); it is
    normally supplied by a warm image's manifest, where the promotion is
    backed by embedded artifacts.
    """

    def __init__(self, prelude: Iterable[str] = (),
                 preload: Iterable[str] = ()):
        self.prelude = tuple(prelude)
        self.preload = tuple(preload)
        warmer = Evaluator()
        for source in self.prelude:
            try:
                warmer.run(source)
            except ReproError as error:
                raise BaseImageError(
                    f"prelude expression {source!r} failed: {error}"
                ) from error
        if warmer.messages:
            raise BaseImageError(
                "prelude produced messages: " + "; ".join(warmer.messages)
            )
        #: the frozen layer; ``freeze`` pre-builds every dispatch index so
        #: sessions share them instead of paying the first-call rebuild
        self.definitions: Mapping[str, Definition] = warmer.state.freeze()
        # the warming evaluator is discarded here — nothing holds a mutable
        # handle to the frozen definitions

    @classmethod
    def from_image(cls, image) -> "BaseImage":
        """Boot from an AOT warm image (a manifest path or dict).

        Seeds the process artifact store with the image's embedded
        compiled artifacts, then warms the prelude exactly as a cold boot
        would — the difference is that every session's preload of the
        manifest's hot definitions resolves from the cache with zero
        pipeline passes.  See :mod:`repro.artifacts.aot`.
        """
        from repro.artifacts import aot

        manifest = aot.load_image(image) if isinstance(image, str) else image
        aot.validate_manifest(manifest)
        aot.seed_store(manifest)
        return cls(prelude=manifest.get("prelude", ()),
                   preload=manifest.get("preload", ()))

    def __len__(self) -> int:
        return len(self.definitions)

    def create_state(self) -> KernelState:
        """A fresh copy-on-write overlay state sharing this image."""
        return KernelState(base=self.definitions)

    def create_evaluator(
        self,
        recursion_limit: int = 1024,
        iteration_limit: int = 4096,
        compile_support: bool = True,
        hotspot_threshold: Optional[int] = None,
    ) -> Evaluator:
        """A fully equipped session evaluator over a fresh overlay."""
        evaluator = Evaluator(
            recursion_limit=recursion_limit,
            iteration_limit=iteration_limit,
            state=self.create_state(),
        )
        if compile_support:
            from repro.compiler import install_engine_support
            from repro.runtime.hotspot import enable_hotspot

            install_engine_support(evaluator)
            if hotspot_threshold is not None:
                evaluator.hotspot = None
                enable_hotspot(evaluator, threshold=hotspot_threshold)
            profiler = getattr(evaluator, "hotspot", None)
            if profiler is not None:
                # AOT preload: promote the manifest's hot definitions to
                # the compiled tier before the session's first dispatch;
                # with the image's artifacts seeded this is a cache probe
                # per symbol, not a pipeline run
                for name in self.preload:
                    profiler.preload(evaluator, name)
        return evaluator
