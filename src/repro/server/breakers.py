"""Request-level circuit breakers, scoped per session and per tenant.

:class:`~repro.runtime.guard.CircuitBreaker` (PR 1) governs *tier choice*
for one function: failures walk it compiled → bytecode → interpreter.  A
server needs the other classic breaker too — one that governs *admission*:
a session (or a whole tenant, across all its sessions) that keeps failing
stops being allowed to consume worker slots at all, so a runaway tenant
cannot starve healthy neighbours.

:class:`RequestBreaker` is the textbook three-state machine:

``closed``
    requests flow; failures inside the rolling ``window`` are counted, and
    reaching ``threshold`` trips the breaker **open**;
``open``
    requests are refused outright (:class:`~repro.errors.RejectedError`
    with ``retry_after`` = the remaining cooldown) until the cooldown
    elapses; each consecutive trip doubles the cooldown up to ``max_cooldown``
    (exponential backoff at the breaker level);
``half-open``
    after the cooldown one *probe* request is admitted; success closes the
    breaker and resets the backoff, failure re-opens it.  A probe that is
    admitted here but then rejected downstream (queue full, session limit,
    tenant mismatch) reports neither success nor failure — the caller must
    :meth:`~RequestBreaker.abandon_probe` it, or the breaker would stay
    half-open with a phantom probe forever.

The clock is injectable so tests drive the state machine deterministically.
All transitions emit ``server.breaker`` events through :mod:`repro.observe`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro import observe as _observe
from repro.errors import RejectedError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class RequestBreaker:
    """One admission breaker for one scope (a session id or a tenant id)."""

    def __init__(
        self,
        scope: str,
        kind: str = "session",
        threshold: int = 3,
        window: float = 30.0,
        cooldown: float = 1.0,
        max_cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.scope = scope
        self.kind = kind
        self.threshold = threshold
        self.window = window
        self.cooldown = cooldown
        self.max_cooldown = max_cooldown
        self.clock = clock
        self.state = CLOSED
        self.times_opened = 0
        self._failures: list[float] = []
        self._opened_until = 0.0
        self._consecutive_opens = 0
        self._probe_in_flight = False
        self._lock = threading.Lock()

    # -- admission ----------------------------------------------------------

    def admit(self) -> bool:
        """Raise :class:`RejectedError` unless a request may proceed.

        Returns whether this caller holds the half-open probe slot; a
        probe-holding request that never reaches ``record_success`` /
        ``record_failure`` (rejected downstream, internal error) must call
        :meth:`abandon_probe` to hand the slot back.
        """
        with self._lock:
            now = self.clock()
            if self.state == OPEN:
                if now < self._opened_until:
                    raise RejectedError(
                        f"{self.kind}-breaker-open",
                        f"{self.kind} {self.scope!r} breaker is open",
                        retry_after=self._opened_until - now,
                        scope=self.scope,
                    )
                self._transition(HALF_OPEN)
                self._probe_in_flight = True
                return True  # this caller is the probe
            if self.state == HALF_OPEN:
                if self._probe_in_flight:
                    raise RejectedError(
                        f"{self.kind}-breaker-open",
                        f"{self.kind} {self.scope!r} is half-open with a "
                        "probe in flight",
                        retry_after=self.cooldown,
                        scope=self.scope,
                    )
                self._probe_in_flight = True
                return True
            return False

    def abandon_probe(self) -> None:
        """Release a held probe slot without recording an outcome.

        The probe request was rejected before it could run, so it proved
        nothing about the scope's health: stay half-open and let the next
        admitted request become the probe instead.
        """
        with self._lock:
            if self.state == HALF_OPEN and self._probe_in_flight:
                self._probe_in_flight = False

    # -- outcome reporting --------------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            if self.state == HALF_OPEN:
                self._probe_in_flight = False
                self._failures.clear()
                self._consecutive_opens = 0
                self._transition(CLOSED)
            elif self.state == CLOSED and self._failures:
                # a success inside the window ages out nothing by itself —
                # the rolling window does — but it does prove liveness
                self._prune(self.clock())

    def record_failure(self, kind: str = "failure") -> None:
        with self._lock:
            now = self.clock()
            if self.state == HALF_OPEN:
                self._probe_in_flight = False
                self._open(now, kind)
                return
            self._failures.append(now)
            self._prune(now)
            if self.state == CLOSED and len(self._failures) >= self.threshold:
                self._open(now, kind)

    # -- introspection ------------------------------------------------------

    def retry_after(self) -> Optional[float]:
        with self._lock:
            if self.state != OPEN:
                return None
            return max(0.0, self._opened_until - self.clock())

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "scope": self.scope,
                "kind": self.kind,
                "state": self.state,
                "failures_in_window": len(self._failures),
                "threshold": self.threshold,
                "times_opened": self.times_opened,
                "retry_after": (
                    max(0.0, self._opened_until - self.clock())
                    if self.state == OPEN else None
                ),
            }

    # -- internals (lock held) ----------------------------------------------

    def _prune(self, now: float) -> None:
        cutoff = now - self.window
        while self._failures and self._failures[0] < cutoff:
            self._failures.pop(0)

    def _open(self, now: float, kind: str) -> None:
        backoff = min(
            self.max_cooldown, self.cooldown * (2 ** self._consecutive_opens)
        )
        self._consecutive_opens += 1
        self.times_opened += 1
        self._opened_until = now + backoff
        self._failures.clear()
        self._transition(OPEN, kind=kind, cooldown=backoff)

    def _transition(self, state: str, **args) -> None:
        previous, self.state = self.state, state
        _observe.event(
            "server.breaker", "server", scope=self.scope,
            breaker=self.kind, **{"from": previous, "to": state}, **args,
        )


class BreakerBoard:
    """The server's breaker registry: one per session, one per tenant.

    A tenant breaker aggregates failures across *all* the tenant's
    sessions, with a proportionally higher threshold — one poisoned
    session trips only itself, a tenant-wide pattern of abuse trips the
    tenant.
    """

    def __init__(
        self,
        session_threshold: int = 3,
        tenant_threshold: int = 9,
        window: float = 30.0,
        cooldown: float = 1.0,
        max_cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._make = dict(window=window, cooldown=cooldown,
                          max_cooldown=max_cooldown, clock=clock)
        self.session_threshold = session_threshold
        self.tenant_threshold = tenant_threshold
        self.sessions: dict[str, RequestBreaker] = {}
        self.tenants: dict[str, RequestBreaker] = {}
        self._lock = threading.Lock()

    def session(self, session_id: str) -> RequestBreaker:
        with self._lock:
            breaker = self.sessions.get(session_id)
            if breaker is None:
                breaker = self.sessions[session_id] = RequestBreaker(
                    session_id, kind="session",
                    threshold=self.session_threshold, **self._make,
                )
            return breaker

    def tenant(self, tenant_id: str) -> RequestBreaker:
        with self._lock:
            breaker = self.tenants.get(tenant_id)
            if breaker is None:
                breaker = self.tenants[tenant_id] = RequestBreaker(
                    tenant_id, kind="tenant",
                    threshold=self.tenant_threshold, **self._make,
                )
            return breaker

    def admit(self, session_id: str,
              tenant_id: Optional[str]) -> list[RequestBreaker]:
        """Tenant breaker first (the wider scope), then the session's.

        Returns the breakers whose half-open probe slot this request now
        holds; the caller must either report an outcome through
        :meth:`record` or :meth:`RequestBreaker.abandon_probe` each of
        them.  If the session breaker refuses after the tenant breaker
        granted its probe, the tenant probe is released here — otherwise
        the tenant would stay half-open with a phantom probe.
        """
        probes: list[RequestBreaker] = []
        if tenant_id is not None:
            tenant = self.tenant(tenant_id)
            if tenant.admit():
                probes.append(tenant)
        session = self.session(session_id)
        try:
            if session.admit():
                probes.append(session)
        except RejectedError:
            for breaker in probes:
                breaker.abandon_probe()
            raise
        return probes

    def record(self, session_id: str, tenant_id: Optional[str],
               ok: bool, kind: str = "failure") -> None:
        session = self.session(session_id)
        tenant = self.tenant(tenant_id) if tenant_id is not None else None
        if ok:
            session.record_success()
            if tenant is not None:
                tenant.record_success()
        else:
            session.record_failure(kind)
            if tenant is not None:
                tenant.record_failure(kind)

    def drop_session(self, session_id: str) -> None:
        with self._lock:
            self.sessions.pop(session_id, None)

    def snapshot(self) -> dict:
        with self._lock:
            sessions = list(self.sessions.values())
            tenants = list(self.tenants.values())
        return {
            "sessions": {b.scope: b.snapshot() for b in sessions},
            "tenants": {b.scope: b.snapshot() for b in tenants},
        }
