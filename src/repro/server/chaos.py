"""Chaos mode: adversarial tenants driven through the normal server path.

The fault-injection registry (``repro.testing.faults``) is process-global
and not reentrant, so a multi-session chaos run cannot lean on it without
coupling every session's faults together.  Chaos here is therefore
*adversarial traffic*: seeded misbehaving clients submit requests that are
themselves the faults —

``slow``
    an unbounded accumulation loop that burns the step budget (and, with
    tight deadlines, the clock) until the guard trips;
``poison``
    defines an infinitely recursive function in the session, then calls
    it — the recursion limit or step budget must contain it, and the
    poisoned definition must stay invisible to every other session;
``spike``
    materializes a large ``Table`` to trip the memory budget;
``abort``
    schedules a mid-evaluation ``abort_session`` against its own session
    while a long request runs.

Healthy clients run the same workload as the load generator alongside the
adversaries.  The report is the chaos suite's evidence base: zero crashed
sessions, healthy traffic still completing, misbehaving sessions tripping
their breakers, shed rate under 100%.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.server.core import EngineServer, ServerConfig
from repro.server.loadgen import DEFAULT_WORKLOAD, percentile

BEHAVIOURS = ("slow", "poison", "spike", "abort")

#: adversarial request bodies, by behaviour
_SLOW_REQUEST = (
    "Module[{acc = 0}, Do[acc = acc + i * i, {i, 500000}]; acc]"
)
_POISON_DEFINE = "poison{n}[x_] := poison{n}[x + 1]"
_POISON_CALL = "poison{n}[0]"
_SPIKE_REQUEST = "Total[Table[i * i, {{i, {cells}}}]]"
_ABORT_REQUEST = "Module[{acc = 0}, Do[acc = acc + i, {i, 2000000}]; acc]"


@dataclass
class ChaosSpec:
    """Shape of one chaos run (deterministic given ``seed``)."""

    adversaries: int = 4
    healthy_clients: int = 4
    requests_per_client: int = 10
    seed: int = 0
    spike_cells: int = 400_000
    abort_delay: float = 0.05


@dataclass
class ChaosReport:
    """Evidence collected by one chaos run."""

    requests: int = 0
    healthy_requests: int = 0
    healthy_ok: int = 0
    adversary_requests: int = 0
    adversary_contained: int = 0  # failed softly: guard, breaker, or shed
    adversary_ok: int = 0
    shed: int = 0
    retries: int = 0
    duration_seconds: float = 0.0
    behaviour_counts: dict = field(default_factory=dict)
    failure_kinds: dict = field(default_factory=dict)
    healthy_latencies: list = field(default_factory=list)

    def count(self, table: dict, key: str) -> None:
        table[key] = table.get(key, 0) + 1

    @property
    def healthy_success_rate(self) -> float:
        if not self.healthy_requests:
            return 0.0
        return self.healthy_ok / self.healthy_requests

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "healthy_requests": self.healthy_requests,
            "healthy_ok": self.healthy_ok,
            "healthy_success_rate": self.healthy_success_rate,
            "healthy_latency_p99_seconds": percentile(
                self.healthy_latencies, 0.99
            ),
            "adversary_requests": self.adversary_requests,
            "adversary_contained": self.adversary_contained,
            "adversary_ok": self.adversary_ok,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "retries": self.retries,
            "duration_seconds": self.duration_seconds,
            "behaviour_counts": dict(self.behaviour_counts),
            "failure_kinds": dict(self.failure_kinds),
        }


def _adversary_requests(behaviour: str, index: int,
                        spec: ChaosSpec) -> list:
    if behaviour == "poison":
        return [
            _POISON_DEFINE.format(n=index),
            _POISON_CALL.format(n=index),
        ]
    if behaviour == "spike":
        return [_SPIKE_REQUEST.format(cells=spec.spike_cells)]
    if behaviour == "abort":
        return [_ABORT_REQUEST]
    return [_SLOW_REQUEST]


async def unleash(server: EngineServer,
                  spec: Optional[ChaosSpec] = None) -> ChaosReport:
    """Run adversarial and healthy clients concurrently; never raises."""
    spec = spec if spec is not None else ChaosSpec()
    report = ChaosReport()

    async def adversary(index: int) -> None:
        rng = random.Random(spec.seed * 7919 + index)
        session_id = f"bad{index}"
        tenant = f"chaos-t{index % 2}"
        for _ in range(spec.requests_per_client):
            behaviour = BEHAVIOURS[rng.randrange(len(BEHAVIOURS))]
            report.count(report.behaviour_counts, behaviour)
            aborter = None
            if behaviour == "abort":
                async def _fire(sid=session_id):
                    await asyncio.sleep(spec.abort_delay)
                    server.abort_session(sid)

                aborter = asyncio.ensure_future(_fire())
            for source in _adversary_requests(behaviour, index, spec):
                response = await server.submit(
                    source, session_id=session_id, tenant=tenant
                )
                report.requests += 1
                report.adversary_requests += 1
                report.retries += response.retries
                if response.ok:
                    report.adversary_ok += 1
                else:
                    report.adversary_contained += 1
                    if response.rejected:
                        report.shed += 1
                    if response.error:
                        kind = (response.error.get("kind")
                                or response.error.get("reason") or "unknown")
                        report.count(report.failure_kinds, kind)
            if aborter is not None:
                await aborter

    async def healthy(index: int) -> None:
        rng = random.Random(spec.seed * 104_729 + index)
        session_id = f"good{index}"
        tenant = "healthy"
        for _ in range(spec.requests_per_client):
            source = rng.choice(DEFAULT_WORKLOAD).format(n=index)
            response = await server.submit(
                source, session_id=session_id, tenant=tenant
            )
            report.requests += 1
            report.healthy_requests += 1
            report.retries += response.retries
            report.healthy_latencies.append(response.latency_seconds)
            if response.ok:
                report.healthy_ok += 1
            elif response.rejected:
                report.shed += 1
            # yield so adversaries interleave rather than batch
            await asyncio.sleep(rng.uniform(0, 0.002))

    start = time.monotonic()
    await asyncio.gather(
        *(adversary(i) for i in range(spec.adversaries)),
        *(healthy(i) for i in range(spec.healthy_clients)),
    )
    report.duration_seconds = time.monotonic() - start
    return report


def run_chaos(config: Optional[ServerConfig] = None,
              spec: Optional[ChaosSpec] = None,
              flight_dir: Optional[str] = None):
    """Synchronous wrapper: chaos against a fresh server; returns the
    :class:`ChaosReport` and the server's final stats dump.  With
    ``flight_dir``, the flight recorder's snapshots (auto-frozen on
    breaker trips and critical pressure during the run) are written
    there before shutdown — the CI chaos job uploads them as artifacts."""

    async def _run():
        server = EngineServer(config=config)
        try:
            report = await unleash(server, spec)
            stats = server.stats()
            if flight_dir and server.flight is not None:
                server.flight.write_snapshots(flight_dir)
            return report, stats
        finally:
            await server.close()

    return asyncio.run(_run())
