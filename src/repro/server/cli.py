"""``python -m repro serve`` — the server's command-line front door.

Two modes:

* **network** (default): a newline-delimited-JSON TCP protocol.  Each
  request line is ``{"expr": "...", "session": "...", "tenant": "..."}``
  (``session`` defaults to one id per connection); special ops are
  ``{"op": "stats"}``, ``{"op": "abort", "session": "..."}``,
  ``{"op": "ping"}``, and the PR 9 introspection ops —
  ``{"op": "metrics"}`` (counters + quantile histograms),
  ``{"op": "events", "limit": N}`` (newest retained flight-recorder
  records), ``{"op": "trace", "request_id": "req-..."}`` (one request's
  full timeline, the id every eval response returns as
  ``request_id``).  Each response line is the structured
  :class:`~repro.server.core.Response` envelope.
* **--loadgen / --chaos**: spin up an in-process server, drive it with
  the load generator or the chaos harness, print the report, and (with
  ``--dump-stats PATH``) write the full stats dump — the file
  ``python -m repro --stats PATH`` renders as per-session tables.

The protocol is deliberately line-oriented and dependency-free so a
shell one-liner is a client::

    printf '{"expr": "1 + 1"}\\n' | nc localhost 7311
"""

from __future__ import annotations

import argparse
import asyncio
import itertools
import json
import sys
from typing import Optional

from repro.server.chaos import ChaosSpec, run_chaos
from repro.server.core import EngineServer, ServerConfig
from repro.server.loadgen import LoadSpec, run_load

DEFAULT_PORT = 7311

_connection_ids = itertools.count(1)


def build_parser(parser: Optional[argparse.ArgumentParser] = None
                 ) -> argparse.ArgumentParser:
    if parser is None:
        parser = argparse.ArgumentParser(prog="repro serve")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("--prelude", metavar="FILE", default=None,
                        help="file of definitions warmed into the shared "
                        "base image (one expression per line)")
    parser.add_argument("--image", metavar="IMAGE", default=None,
                        help="boot the base image from an AOT warm image "
                        "built by 'python -m repro aot' (overrides "
                        "--prelude)")
    parser.add_argument("--max-concurrent", type=int, default=4)
    parser.add_argument("--queue-limit", type=int, default=32)
    parser.add_argument("--deadline", type=float, default=1.0,
                        help="per-request deadline budget, seconds")
    parser.add_argument("--dump-stats", metavar="PATH", default=None,
                        help="write the server stats dump here on exit")
    parser.add_argument("--flight-dir", metavar="DIR", default=None,
                        help="write flight-recorder snapshots (Chrome-trace "
                        "JSON) into this directory on exit")
    parser.add_argument("--loadgen", action="store_true",
                        help="run the load generator in-process and exit")
    parser.add_argument("--chaos", action="store_true",
                        help="run the chaos harness in-process and exit")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=25,
                        help="requests per client (loadgen/chaos)")
    parser.add_argument("--seed", type=int, default=0)
    return parser


def config_from_args(args: argparse.Namespace) -> ServerConfig:
    from repro.server.admission import RequestBudget

    prelude: tuple = ()
    if args.prelude:
        with open(args.prelude, "r", encoding="utf-8") as handle:
            prelude = tuple(
                line.strip() for line in handle
                if line.strip() and not line.strip().startswith("#")
            )
    config = ServerConfig(
        prelude=prelude,
        image_path=args.image,
        max_concurrent=args.max_concurrent,
        queue_limit=args.queue_limit,
    )
    config.budget = RequestBudget(deadline_seconds=args.deadline)
    return config


async def handle_connection(server: EngineServer,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    default_session = f"conn{next(_connection_ids)}"

    async def reply(payload: dict) -> None:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()

    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                request = json.loads(text)
            except json.JSONDecodeError as error:
                await reply({"ok": False,
                             "error": {"kind": "BadRequest",
                                       "message": str(error)}})
                continue
            op = request.get("op", "eval")
            if op == "ping":
                await reply({"ok": True, "result": "pong"})
            elif op == "stats":
                await reply({"ok": True, "stats": server.stats()})
            elif op == "abort":
                found = server.abort_session(
                    request.get("session", default_session)
                )
                await reply({"ok": found})
            elif op == "metrics":
                await reply({"ok": True, "metrics": server.metrics_dict()})
            elif op == "events":
                try:
                    limit = int(request.get("limit", 50))
                except (TypeError, ValueError):
                    limit = 50
                await reply({"ok": True,
                             "events": server.recent_events(limit)})
            elif op == "trace":
                request_id = str(request.get("request_id")
                                 or request.get("request", ""))
                timeline = server.timeline(request_id)
                await reply({"ok": bool(timeline),
                             "request": request_id,
                             "timeline": timeline})
            elif op == "eval":
                response = await server.submit(
                    str(request.get("expr", "")),
                    session_id=request.get("session", default_session),
                    tenant=request.get("tenant"),
                    trace_id=request.get("trace_id"),
                )
                await reply(response.to_dict())
            else:
                await reply({"ok": False,
                             "error": {"kind": "BadRequest",
                                       "message": f"unknown op {op!r}"}})
    except (asyncio.CancelledError, ConnectionResetError):
        pass  # server shutdown or client gone: close quietly
    finally:
        writer.close()


async def serve(config: ServerConfig, host: str, port: int,
                dump_stats: Optional[str] = None,
                flight_dir: Optional[str] = None) -> None:
    engine = EngineServer(config=config)
    tcp = await asyncio.start_server(
        lambda r, w: handle_connection(engine, r, w), host, port
    )
    address = tcp.sockets[0].getsockname()
    print(f"repro engine server listening on {address[0]}:{address[1]} "
          f"({len(engine.base_image)} base definitions)")
    try:
        async with tcp:
            await tcp.serve_forever()
    finally:
        if dump_stats:
            engine.dump_stats(dump_stats)
        if flight_dir and engine.flight is not None:
            engine.flight.write_snapshots(flight_dir)
        await engine.close()


def _print_report(title: str, report: dict) -> None:
    print(title)
    width = max(len(key) for key in report)
    for key, value in report.items():
        if isinstance(value, float):
            value = f"{value:.6g}"
        print(f"  {key:<{width}}  {value}")


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    config = config_from_args(args)
    if args.loadgen:
        spec = LoadSpec(clients=args.clients,
                        requests_per_client=args.requests, seed=args.seed)
        report, stats = run_load(config=config, spec=spec,
                                 flight_dir=args.flight_dir)
        _print_report("load generator report:", report.to_dict())
        if args.dump_stats:
            _write_stats(args.dump_stats, stats)
        return 0
    if args.chaos:
        spec = ChaosSpec(requests_per_client=args.requests, seed=args.seed)
        report, stats = run_chaos(config=config, spec=spec,
                                  flight_dir=args.flight_dir)
        _print_report("chaos report:", report.to_dict())
        if args.dump_stats:
            _write_stats(args.dump_stats, stats)
        crashed = [sid for sid, info in stats["sessions"].items()
                   if info["state"] == "crashed"]
        return 1 if crashed else 0
    try:
        asyncio.run(serve(config, args.host, args.port,
                          dump_stats=args.dump_stats,
                          flight_dir=args.flight_dir))
    except KeyboardInterrupt:
        print("server stopped", file=sys.stderr)
    return 0


def _write_stats(path: str, stats: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stats, handle, indent=2)
        handle.write("\n")
    print(f"stats dump written to {path}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
