"""``EngineServer`` — the asyncio multi-session engine front-end.

The request path is a small state machine (DESIGN.md §10)::

    admit ──► queue ──► evaluate ──► (retry) ──► respond
      │         │           │
      ▼         ▼           ▼
    breaker   shed       degrade

* **admit** — the per-tenant breaker is checked first (the wider scope),
  then the per-session breaker; an open breaker refuses in microseconds
  with a ``retry_after`` hint.  A session flooding its own serial queue
  past ``session_queue_limit`` is shed without consuming global capacity.
* **queue** — the bounded admission queue
  (:class:`~repro.server.admission.AdmissionController`): saturated means
  shed, not wait-forever.
* **evaluate** — the request runs on a worker thread under an
  :class:`~repro.runtime.guard.ExecutionGuard` derived from the admission
  budget (scaled down under memory pressure).  Each session's requests
  are serialized by a per-session lock, so a session never races itself.
* **retry** — transient soft failures re-run with exponential backoff and
  full jitter (:class:`~repro.server.retry.RetryPolicy`), never past the
  attempt bound, never for guard expiries.  Each attempt acquires its own
  admission slot: a backoff sleep never pins worker capacity, and a retry
  arriving into a saturated queue is shed like any other request.
* **degrade** — every request ticks the
  :class:`~repro.server.degrade.DegradationManager`: under pressure
  sessions step compiled → bytecode → interpreter, and at critical
  pressure cold session overlays are evicted entirely.

Failure isolation invariants the chaos suite pins:

* no request — slow, aborted, poisoned, or memory-hungry — ever crashes
  the server or any other session;
* a misbehaving session trips *its* breaker, and a misbehaving tenant
  *its* breaker, while healthy sessions keep completing;
* no definition written in one session is ever observable from another
  (copy-on-write overlays over the shared base image).
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro import observe as _observe
from repro.observe import context as _obs_context
from repro.observe import trace as _obs_trace
from repro.observe.flight import FlightRecorder, telemetry_enabled
from repro.errors import RejectedError
from repro.server.admission import AdmissionController, RequestBudget
from repro.server.base import BaseImage
from repro.server.breakers import BreakerBoard
from repro.server.degrade import DegradationManager
from repro.server.retry import RetryPolicy
from repro.server.session import Session, SessionState

STATS_SCHEMA = 1


@dataclass
class ServerConfig:
    """Every knob of the engine server, with serving-sized defaults."""

    # sessions
    max_sessions: int = 256
    session_queue_limit: int = 8
    prelude: tuple = ()
    #: path to an AOT warm image (``python -m repro aot``); when set, the
    #: base image boots from it — prelude and artifacts come from the
    #: manifest and ``prelude`` above is ignored
    image_path: Optional[str] = None
    recursion_limit: int = 1024
    iteration_limit: int = 4096
    compile_support: bool = True
    hotspot_threshold: Optional[int] = None
    # admission
    max_concurrent: int = 4
    queue_limit: int = 32
    budget: RequestBudget = field(default_factory=RequestBudget)
    # breakers
    breaker_threshold: int = 3
    tenant_breaker_threshold: int = 9
    breaker_window: float = 30.0
    breaker_cooldown: float = 1.0
    breaker_max_cooldown: float = 30.0
    # retries
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    # degradation
    soft_limit_bytes: int = 256 * 1024 * 1024
    hard_limit_bytes: int = 512 * 1024 * 1024
    idle_ttl: float = 60.0
    # telemetry — the always-on flight recorder (DESIGN.md §7.5).  None
    #: defers to the environment: ``REPRO_TELEMETRY`` (master switch),
    #: ``REPRO_TELEMETRY_SAMPLE``, ``REPRO_FLIGHT_*`` knobs
    telemetry: Optional[bool] = None
    telemetry_sample: Optional[float] = None
    flight_max_events: Optional[int] = None
    slow_request_seconds: Optional[float] = None


@dataclass
class Response:
    """The structured reply to one ``submit``."""

    ok: bool
    session: str
    tenant: Optional[str] = None
    result: Optional[str] = None
    error: Optional[dict] = None
    rejected: bool = False
    retry_after: Optional[float] = None
    retries: int = 0
    latency_seconds: float = 0.0
    #: telemetry identity — the key ``{"op": "trace"}`` timelines hang off
    request_id: str = ""
    trace_id: str = ""

    def to_dict(self) -> dict:
        payload = {
            "ok": self.ok,
            "session": self.session,
            "tenant": self.tenant,
            "latency_seconds": self.latency_seconds,
            "request_id": self.request_id,
            "trace_id": self.trace_id,
        }
        if self.ok:
            payload["result"] = self.result
        else:
            payload["error"] = self.error
        if self.rejected:
            payload["rejected"] = True
            payload["retry_after"] = self.retry_after
        if self.retries:
            payload["retries"] = self.retries
        return payload


class EngineServer:
    """A resilient multi-session engine over one shared base image."""

    def __init__(self, config: Optional[ServerConfig] = None,
                 base_image: Optional[BaseImage] = None,
                 memory_probe=None, clock=time.monotonic):
        self.config = config if config is not None else ServerConfig()
        if base_image is not None:
            self.base_image = base_image
        elif self.config.image_path:
            self.base_image = BaseImage.from_image(self.config.image_path)
        else:
            self.base_image = BaseImage(prelude=self.config.prelude)
        self.clock = clock
        self.sessions: dict[str, Session] = {}
        self.admission = AdmissionController(
            max_concurrent=self.config.max_concurrent,
            queue_limit=self.config.queue_limit,
        )
        self.breakers = BreakerBoard(
            session_threshold=self.config.breaker_threshold,
            tenant_threshold=self.config.tenant_breaker_threshold,
            window=self.config.breaker_window,
            cooldown=self.config.breaker_cooldown,
            max_cooldown=self.config.breaker_max_cooldown,
            clock=clock,
        )
        self.degrade = DegradationManager(
            soft_limit_bytes=self.config.soft_limit_bytes,
            hard_limit_bytes=self.config.hard_limit_bytes,
            idle_ttl=self.config.idle_ttl,
            memory_probe=memory_probe,
        )
        self.started = self.clock()
        self.totals = {"requests": 0, "ok": 0, "failed": 0, "shed": 0,
                       "retries": 0, "aborted": 0, "evicted": 0}
        self._locks: dict[str, asyncio.Lock] = {}
        self._pending: dict[str, int] = {}
        self._evicted_ids: list[str] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        # the always-on flight recorder: installed as the process tracer
        # unless telemetry is off or an explicit tracer is already active
        # (--trace, with_tracing, a perflab probe) — explicit tracing wins
        # and still records every server event, just unbounded/unsampled
        self.flight: Optional[FlightRecorder] = None
        self._owns_flight = False
        use_telemetry = (self.config.telemetry
                         if self.config.telemetry is not None
                         else telemetry_enabled())
        active = _obs_trace.TRACER
        if use_telemetry and active is None:
            self.flight = FlightRecorder(
                max_events=self.config.flight_max_events,
                sample=self.config.telemetry_sample,
                slow_seconds=self._slow_threshold(),
            )
            _obs_trace.enable_tracing(self.flight)
            self._owns_flight = True
        elif isinstance(active, FlightRecorder):
            self.flight = active

    def _slow_threshold(self) -> Optional[float]:
        """Tail-retention slow bound: explicit, or half the deadline."""
        if self.config.slow_request_seconds is not None:
            return self.config.slow_request_seconds
        deadline = self.config.budget.deadline_seconds
        if deadline is not None:
            return max(0.05, 0.5 * deadline)
        return None

    # -- lifecycle ----------------------------------------------------------

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.max_concurrent,
                thread_name_prefix="repro-server",
            )
        return self._executor

    async def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._owns_flight and _obs_trace.TRACER is self.flight:
            _obs_trace.disable_tracing()
            self._owns_flight = False

    # -- the request path ---------------------------------------------------

    async def submit(self, source: str, session_id: str = "default",
                     tenant: Optional[str] = None,
                     trace_id: Optional[str] = None) -> Response:
        """Admit, queue, evaluate (with retries), respond.  Never raises."""
        start = self.clock()
        self.totals["requests"] += 1
        _observe.count("server.requests")
        flight = self.flight
        ctx = _obs_context.mint_context(
            session=session_id, tenant=tenant or "", trace_id=trace_id,
            sampled=flight.sample_next() if flight is not None else True,
        )
        # every span/instant emitted below this point — admission, session
        # execution, tier events, cache lookups — is stamped with this
        # request's identity via the contextvar, reconstructable later as
        # one timeline under ``{"op": "trace", "request": ctx.request_id}``
        token = _obs_context.CURRENT.set(ctx)
        try:
            with _observe.span("server.request", "server",
                               session=session_id, tenant=tenant or ""):
                try:
                    response = await self._submit_inner(
                        source, session_id, tenant, start
                    )
                except RejectedError as rejection:
                    response = self._rejected(
                        rejection, session_id, tenant, start
                    )
                except asyncio.CancelledError:
                    raise
                except Exception as error:
                    # the no-crash invariant holds at the protocol boundary
                    # even for faults the request path never classifies —
                    # e.g. ``run_in_executor`` racing ``close()``
                    self.totals["failed"] += 1
                    _observe.count("server.failures")
                    response = Response(
                        ok=False, session=session_id, tenant=tenant,
                        error={
                            "kind": "InternalError",
                            "message": f"{type(error).__name__}: {error}",
                        },
                        latency_seconds=self.clock() - start,
                    )
        finally:
            _obs_context.CURRENT.reset(token)
        response.request_id = ctx.request_id
        response.trace_id = ctx.trace_id
        tracer = _obs_trace.TRACER
        if tracer is not None:
            tracer.metrics.observe(
                "server.latency_seconds", response.latency_seconds
            )
        if flight is not None:
            flight.finish_request(
                ctx, ok=response.ok, rejected=response.rejected,
                retries=response.retries, latency=response.latency_seconds,
            )
        return response

    async def _submit_inner(self, source: str, session_id: str,
                            tenant: Optional[str], start: float) -> Response:
        probes = self.breakers.admit(session_id, tenant)
        try:
            session = self._session(session_id, tenant)
            pending = self._pending.get(session_id, 0)
            if pending >= self.config.session_queue_limit:
                self.admission.shed += 1
                _observe.count("server.shed")
                raise RejectedError(
                    "session-queue-full",
                    f"session {session_id!r} already has {pending} requests "
                    "queued",
                    retry_after=self.config.budget.deadline_seconds,
                    scope=session_id,
                )
            self._pending[session_id] = pending + 1
            try:
                lock = self._locks.setdefault(session_id, asyncio.Lock())
                async with lock:
                    outcome, retries = await self._run_with_retries(
                        session, source
                    )
            finally:
                remaining = self._pending.get(session_id, 1) - 1
                if remaining:
                    self._pending[session_id] = remaining
                else:
                    self._pending.pop(session_id, None)
        except BaseException:
            # rejected (or crashed, or cancelled) before the breakers could
            # see an outcome: any half-open probe slot this request holds
            # must be handed back, or the scope stays locked out forever
            for breaker in probes:
                breaker.abandon_probe()
            raise

        latency = self.clock() - start
        # aborts are client-initiated, not server failures: they complete
        # the request cleanly and must not trip the breaker
        healthy = outcome.ok or outcome.aborted
        self.breakers.record(session_id, tenant, ok=healthy,
                             kind=outcome.error_kind or "failure")
        if outcome.ok:
            self.totals["ok"] += 1
            _observe.count("server.ok")
        else:
            if outcome.aborted:
                self.totals["aborted"] += 1
            self.totals["failed"] += 1
            _observe.count("server.failures")
        return Response(
            ok=outcome.ok, session=session_id, tenant=tenant,
            result=outcome.value,
            error=(None if outcome.ok else {
                "kind": outcome.error_kind,
                "message": outcome.error_message,
            }),
            retries=retries, latency_seconds=latency,
        )

    async def _run_with_retries(self, session: Session, source: str):
        policy = self.config.retry
        loop = asyncio.get_running_loop()
        attempt = 1
        while True:
            # the admission slot is held only while the attempt actually
            # runs: a backoff sleep must not pin a worker slot during
            # exactly the overload that made the attempt fail.  Each
            # attempt re-reads the pressure controls, so a retry admitted
            # into a degraded server gets the degraded budget.
            async with self.admission.slot():
                control = self.degrade.evaluate(self.sessions)
                self._apply_evictions(control["evict"], keep=session.id)
                budget = self.config.budget.scaled(control["budget_scale"])
                # asyncio does not propagate contextvars into executor
                # threads; carry the request context across explicitly so
                # worker-side spans (session.execute, vm.run, tier events)
                # are stamped with the owning request
                run_context = contextvars.copy_context()
                outcome = await loop.run_in_executor(
                    self._pool(), run_context.run,
                    session.execute, source, budget,
                )
            retryable = (
                not outcome.ok
                and not outcome.aborted
                and outcome.transient
                and outcome.error_kind in policy.transient_kinds
                and attempt < policy.attempts
            )
            if not retryable:
                return outcome, attempt - 1
            delay = policy.delay(attempt)
            session.stats.retries += 1
            self.totals["retries"] += 1
            _observe.count("server.retries")
            _observe.event("server.retry", "server", session=session.id,
                           attempt=attempt, delay=delay,
                           kind=outcome.error_kind)
            await asyncio.sleep(delay)
            attempt += 1

    def _rejected(self, rejection: RejectedError, session_id: str,
                  tenant: Optional[str], start: float) -> Response:
        self.totals["shed"] += 1
        session = self.sessions.get(session_id)
        if session is not None:
            session.stats.rejected += 1
        _observe.event("server.shed", "server", session=session_id,
                       reason=rejection.reason, scope=rejection.scope)
        return Response(
            ok=False, session=session_id, tenant=tenant,
            error=rejection.to_dict(), rejected=True,
            retry_after=rejection.retry_after,
            latency_seconds=self.clock() - start,
        )

    # -- session management -------------------------------------------------

    def _session(self, session_id: str, tenant: Optional[str]) -> Session:
        session = self.sessions.get(session_id)
        if session is not None:
            if tenant is not None and session.tenant != tenant:
                raise RejectedError(
                    "tenant-mismatch",
                    f"session {session_id!r} belongs to tenant "
                    f"{session.tenant!r}",
                    scope=session_id,
                )
            return session
        if len(self.sessions) >= self.config.max_sessions:
            raise RejectedError(
                "session-limit",
                f"server is at its {self.config.max_sessions}-session "
                "capacity",
                retry_after=self.config.idle_ttl,
            )
        evaluator = self.base_image.create_evaluator(
            recursion_limit=self.config.recursion_limit,
            iteration_limit=self.config.iteration_limit,
            compile_support=self.config.compile_support,
            hotspot_threshold=self.config.hotspot_threshold,
        )
        session = Session(session_id, tenant, evaluator)
        self.sessions[session_id] = session
        _observe.event("server.session", "server", session=session_id,
                       tenant=tenant or "", action="created")
        return session

    def _apply_evictions(self, evict: dict, keep: str = "") -> None:
        for session_id, session in evict.items():
            if session_id == keep or session.state is SessionState.RUNNING:
                continue
            lock = self._locks.get(session_id)
            if lock is not None and lock.locked():
                continue  # requests queued behind the lock: not cold
            session.state = SessionState.EVICTED
            self.sessions.pop(session_id, None)
            self._locks.pop(session_id, None)
            self.breakers.drop_session(session_id)
            self._evicted_ids.append(session_id)
            self.totals["evicted"] += 1
            _observe.event("server.session", "server", session=session_id,
                           action="evicted")

    def abort_session(self, session_id: str) -> bool:
        """Request a mid-evaluation abort of the session's running request
        (the server-side F3); thread-safe, returns whether the id exists.

        An abort only makes sense against a *running* evaluation: setting
        the flag on an idle session would linger until its next request
        starts and spuriously abort that unrelated work, so it is dropped.
        """
        session = self.sessions.get(session_id)
        if session is None:
            return False
        if session.state is SessionState.RUNNING:
            session.evaluator.request_abort()
        return True

    # -- reporting ----------------------------------------------------------

    def shed_rate(self) -> float:
        total = self.totals["requests"]
        return self.totals["shed"] / total if total else 0.0

    def stats(self) -> dict:
        return {
            "schema": STATS_SCHEMA,
            "kind": "repro-server-stats",
            "uptime_seconds": self.clock() - self.started,
            "requests": dict(self.totals),
            "shed_rate": self.shed_rate(),
            "admission": self.admission.snapshot(),
            "pressure": self.degrade.snapshot(),
            "breakers": self.breakers.snapshot(),
            "sessions": {
                session_id: session.snapshot()
                for session_id, session in self.sessions.items()
            },
            "evicted_sessions": list(self._evicted_ids),
            "base_image_definitions": len(self.base_image),
            "telemetry": self.flight.stats() if self.flight else {},
        }

    # -- live introspection (the ``metrics``/``events``/``trace`` ops) ------

    def timeline(self, request_id: str) -> list:
        """The retained per-request timeline, as wire-ready dicts."""
        if self.flight is None:
            return []
        return self.flight.timeline_dict(request_id)

    def recent_events(self, limit: int = 50) -> list:
        """The newest retained records across all requests."""
        if self.flight is None:
            return []
        return [record.to_dict() for record in self.flight.recent(limit)]

    def metrics_dict(self) -> dict:
        """Counters and quantile histograms from the active recorder."""
        tracer = _obs_trace.TRACER if self.flight is None else self.flight
        if tracer is None:
            return {"counters": {}, "histograms": {}}
        return tracer.metrics.as_dict()

    def dump_stats(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.stats(), handle, indent=2)
            handle.write("\n")
