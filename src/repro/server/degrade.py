"""Graceful degradation under memory pressure.

A long-running multi-tenant engine cannot simply crash when memory runs
short — it sheds *quality* before it sheds *availability*:

=============  ==========================================================
pressure       response
=============  ==========================================================
``NORMAL``     full service: hotspot promotion up to the compiled tier
``ELEVATED``   sessions demote to the **template** tier (compiled
               artifacts are withdrawn — generated code and its compile
               caches are the most memory-hungry tier; the stitched
               baseline keeps decent speed at a fraction of the
               footprint), new admissions get proportionally tighter
               budgets
``CRITICAL``   sessions demote to the **interpreter** tier, and cold
               session overlays (idle past ``idle_ttl``) are evicted
               entirely, freeing their definitions
=============  ==========================================================

Pressure is read from an injectable probe (tests drive transitions
deterministically); the default probe sums the sessions' deterministic
footprint estimates.  Thresholds use hysteresis — the level steps down
only below ``ratio - hysteresis`` — so the server doesn't flap between
tiers at a boundary.  Every transition emits a ``server.pressure`` event.
"""

from __future__ import annotations

import time
from enum import IntEnum
from typing import Callable, Iterable, Optional

from repro import observe as _observe
from repro.runtime.guard import Tier


class PressureLevel(IntEnum):
    NORMAL = 0
    ELEVATED = 1
    CRITICAL = 2


#: tier cap applied to every session at each pressure level
TIER_CAPS = {
    PressureLevel.NORMAL: Tier.COMPILED,
    PressureLevel.ELEVATED: Tier.TEMPLATE,
    PressureLevel.CRITICAL: Tier.INTERPRETER,
}

#: admission-budget scale factor at each pressure level
BUDGET_SCALE = {
    PressureLevel.NORMAL: 1.0,
    PressureLevel.ELEVATED: 0.5,
    PressureLevel.CRITICAL: 0.25,
}


class DegradationManager:
    """Maps a memory-pressure reading onto tier caps and overlay eviction."""

    def __init__(
        self,
        soft_limit_bytes: int = 256 * 1024 * 1024,
        hard_limit_bytes: int = 512 * 1024 * 1024,
        idle_ttl: float = 60.0,
        hysteresis: float = 0.1,
        memory_probe: Optional[Callable[[], int]] = None,
    ):
        self.soft_limit_bytes = soft_limit_bytes
        self.hard_limit_bytes = hard_limit_bytes
        self.idle_ttl = idle_ttl
        self.hysteresis = hysteresis
        self.memory_probe = memory_probe
        self.level = PressureLevel.NORMAL
        self.transitions = 0
        self.evicted = 0
        self.demotions = 0

    # -- the pressure reading -----------------------------------------------

    def pressure_bytes(self, sessions: Iterable) -> int:
        if self.memory_probe is not None:
            return self.memory_probe()
        return sum(session.memory_estimate() for session in sessions)

    def _classify(self, used: int) -> PressureLevel:
        down = 1.0 - self.hysteresis
        if used >= self.hard_limit_bytes:
            return PressureLevel.CRITICAL
        if used >= self.soft_limit_bytes:
            # at CRITICAL, stay there until below hard_limit * down
            if (self.level is PressureLevel.CRITICAL
                    and used >= self.hard_limit_bytes * down):
                return PressureLevel.CRITICAL
            return PressureLevel.ELEVATED
        if (self.level >= PressureLevel.ELEVATED
                and used >= self.soft_limit_bytes * down):
            return self.level if self.level is PressureLevel.ELEVATED \
                else PressureLevel.ELEVATED
        return PressureLevel.NORMAL

    # -- the control action -------------------------------------------------

    def evaluate(self, sessions: dict, now: Optional[float] = None) -> dict:
        """One control step: read pressure, apply caps, evict cold overlays.

        ``sessions`` is the server's live ``id -> Session`` dict; evicted
        ids are *returned* (with their sessions) rather than deleted here,
        so the server core owns the dict mutation and its own bookkeeping.
        """
        now = now if now is not None else time.monotonic()
        used = self.pressure_bytes(sessions.values())
        level = self._classify(used)
        changed = level is not self.level
        if changed:
            previous, self.level = self.level, level
            self.transitions += 1
            _observe.event(
                "server.pressure", "server", used_bytes=used,
                **{"from": previous.name, "to": level.name},
            )
        cap = TIER_CAPS[level]
        for session in sessions.values():
            self.demotions += session.apply_tier_cap(
                cap, reason=f"memory pressure {level.name}"
            )
        evicted = {}
        if level is PressureLevel.CRITICAL:
            for session_id, session in list(sessions.items()):
                if session.idle_seconds(now) >= self.idle_ttl:
                    evicted[session_id] = session
            self.evicted += len(evicted)
        return {
            "level": level,
            "used_bytes": used,
            "changed": changed,
            "budget_scale": BUDGET_SCALE[level],
            "evict": evicted,
        }

    def snapshot(self) -> dict:
        return {
            "level": self.level.name,
            "soft_limit_bytes": self.soft_limit_bytes,
            "hard_limit_bytes": self.hard_limit_bytes,
            "transitions": self.transitions,
            "evicted": self.evicted,
            "demotions": self.demotions,
        }
