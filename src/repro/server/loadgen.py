"""A deterministic load generator for the engine server.

Drives an in-process :class:`~repro.server.core.EngineServer` with a
seeded mixture of realistic requests — definition writes, pattern
dispatch, arithmetic, small list workloads — spread across sessions and
tenants, and reports the latency distribution (p50 / p99), throughput,
and shed rate.  The perflab ``server`` suite wraps this into a BenchSpec
so overload behaviour is tracked across commits like any other
performance surface.

Everything is seeded: the same :class:`LoadSpec` produces the same
request sequence, so regressions in the latency distribution are
attributable to the engine, not the workload.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.server.core import EngineServer, ServerConfig

#: the default request mixture; ``{n}`` is a per-client integer so
#: definition-heavy clients exercise the copy-on-write overlay path
DEFAULT_WORKLOAD = (
    "f{n}[x_] := x + {n}",
    "f{n}[{n}]",
    "Total[Table[i, {{i, 40}}]]",
    "Map[Function[x, x * x], Range[12]]",
    "Fold[Plus, 0, Range[25]]",
    "StringJoin[\"client\", \"-\", \"{n}\"]",
    "If[{n} > 2, \"big\", \"small\"]",
    "Length[Range[30]]",
)


@dataclass
class LoadSpec:
    """Shape of one load run (all deterministic given ``seed``)."""

    clients: int = 8
    requests_per_client: int = 25
    sessions: int = 4
    tenants: int = 2
    think_time: float = 0.0
    seed: int = 0
    workload: tuple = DEFAULT_WORKLOAD


def percentile(values: list, fraction: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


@dataclass
class LoadReport:
    """What one load run measured."""

    requests: int = 0
    ok: int = 0
    failed: int = 0
    shed: int = 0
    retries: int = 0
    duration_seconds: float = 0.0
    latencies: list = field(default_factory=list)
    #: quantiles read back from the flight recorder's
    #: ``server.latency_seconds`` log-bucket histogram — the estimates the
    #: ``metrics`` op serves in production, cross-checkable here against
    #: the exact nearest-rank ``p50``/``p99`` from the raw sample
    hist_p50: Optional[float] = None
    hist_p99: Optional[float] = None

    @property
    def p50(self) -> float:
        return percentile(self.latencies, 0.50)

    @property
    def p99(self) -> float:
        return percentile(self.latencies, 0.99)

    @property
    def throughput(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.requests / self.duration_seconds

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        payload = {
            "requests": self.requests,
            "ok": self.ok,
            "failed": self.failed,
            "shed": self.shed,
            "retries": self.retries,
            "duration_seconds": self.duration_seconds,
            "throughput_rps": self.throughput,
            "latency_p50_seconds": self.p50,
            "latency_p99_seconds": self.p99,
            "shed_rate": self.shed_rate,
        }
        if self.hist_p50 is not None:
            payload["latency_hist_p50_seconds"] = self.hist_p50
        if self.hist_p99 is not None:
            payload["latency_hist_p99_seconds"] = self.hist_p99
        return payload


async def generate(server: EngineServer,
                   spec: Optional[LoadSpec] = None) -> LoadReport:
    """Run the load against ``server`` and collect a report."""
    spec = spec if spec is not None else LoadSpec()
    report = LoadReport()

    async def client(index: int) -> None:
        rng = random.Random(spec.seed * 10_007 + index)
        session_id = f"s{index % max(1, spec.sessions)}"
        tenant = f"t{index % max(1, spec.tenants)}"
        for _ in range(spec.requests_per_client):
            source = rng.choice(spec.workload).format(n=index)
            response = await server.submit(source, session_id=session_id,
                                           tenant=tenant)
            report.requests += 1
            report.latencies.append(response.latency_seconds)
            report.retries += response.retries
            if response.ok:
                report.ok += 1
            elif response.rejected:
                report.shed += 1
            else:
                report.failed += 1
            if spec.think_time:
                await asyncio.sleep(rng.uniform(0, spec.think_time))

    start = time.monotonic()
    await asyncio.gather(*(client(i) for i in range(spec.clients)))
    report.duration_seconds = time.monotonic() - start
    return report


def attach_hist_quantiles(report: LoadReport, server: EngineServer) -> None:
    """Copy the recorder's latency-histogram quantiles onto the report."""
    flight = server.flight
    if flight is None:
        return
    histogram = flight.metrics.histogram("server.latency_seconds")
    if histogram is not None:
        report.hist_p50 = histogram.p50
        report.hist_p99 = histogram.p99


def run_load(config: Optional[ServerConfig] = None,
             spec: Optional[LoadSpec] = None,
             flight_dir: Optional[str] = None):
    """Synchronous wrapper: build a server, run the load, return both
    the :class:`LoadReport` and the server's final stats dump.  With
    ``flight_dir``, the flight recorder's snapshots and ring are written
    there before shutdown."""

    async def _run():
        server = EngineServer(config=config)
        try:
            report = await generate(server, spec)
            attach_hist_quantiles(report, server)
            stats = server.stats()
            if flight_dir and server.flight is not None:
                server.flight.write_snapshots(flight_dir)
            return report, stats
        finally:
            await server.close()

    return asyncio.run(_run())
