"""Retry with exponential backoff and full jitter for transient failures.

Only *transient* soft failures are retried — failure kinds the operator
declares recoverable (an injected chaos fault, a transient resource blip).
Guard expiries are never retried: a deadline that expired once is expired
on every slower retry too, and step/memory budgets measure the request
itself, not the weather.  Hard errors propagate immediately.

Backoff follows the AWS "full jitter" scheme: attempt ``n`` sleeps a
uniform random draw from ``[0, min(max_delay, base * 2^n)]``.  Jitter
comes from a seeded per-policy :class:`random.Random`, so tests and the
chaos suite replay identical schedules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet

from repro.errors import (
    GUARD_EXCEPTIONS,
    WolframRuntimeError,
)

#: failure kinds retried by default; "Injected" is the chaos harness's
#: transient fault, "Transient" the conventional operator-facing kind
DEFAULT_TRANSIENT_KINDS = frozenset({"Transient", "Injected"})


@dataclass
class RetryPolicy:
    """How many times, how long, and what qualifies as transient."""

    attempts: int = 3
    base_delay: float = 0.01
    max_delay: float = 0.25
    transient_kinds: FrozenSet[str] = DEFAULT_TRANSIENT_KINDS
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def is_transient(self, error: BaseException) -> bool:
        if isinstance(error, GUARD_EXCEPTIONS):
            return False  # an expired budget stays expired
        return (
            isinstance(error, WolframRuntimeError)
            and error.kind in self.transient_kinds
        )

    def delay(self, attempt: int) -> float:
        """Full-jitter backoff for retry number ``attempt`` (1-based)."""
        ceiling = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        return self._rng.uniform(0.0, ceiling)

    def schedule(self) -> list[float]:
        """The delays a fully failing call would sleep (for reports)."""
        return [self.delay(n) for n in range(1, self.attempts)]
