"""One tenant session: an isolated evaluator plus its health bookkeeping.

A session owns a copy-on-write overlay over the server's shared
:class:`~repro.server.base.BaseImage`, so its definitions are private by
construction; everything else here is the robustness envelope — request
execution under an :class:`~repro.runtime.guard.ExecutionGuard`, outcome
classification, a private bounded failure log, and the degradation lever
(:meth:`apply_tier_cap`) the memory-pressure manager pulls.

``execute`` runs on a worker thread (the engine is synchronous); the
asyncio front-end serializes each session's requests with a per-session
lock, so a session never races itself — the remaining shared state
(breakers, hotspot tables, the global failure log) is lock-protected in
its own modules.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro import observe as _observe
from repro.engine.evaluator import Evaluator
from repro.errors import (
    GUARD_EXCEPTIONS,
    ReproError,
    WolframRuntimeError,
)
from repro.mexpr import full_form, parse
from repro.runtime.guard import FailureLog, Tier, guard_scope
from repro.server.admission import RequestBudget

#: per-session failure logs stay small: the server aggregates many of them
SESSION_LOG_CAPACITY = 128


class SessionState(Enum):
    IDLE = "idle"
    RUNNING = "running"
    EVICTED = "evicted"
    #: an exception escaped every handler — must never happen; tracked so
    #: the chaos suite can assert exactly that
    CRASHED = "crashed"


@dataclass
class Outcome:
    """What one request did, as the server core consumes it."""

    ok: bool
    value: Optional[str] = None          # FullForm of the result
    error_kind: Optional[str] = None
    error_message: Optional[str] = None
    aborted: bool = False
    #: transient soft failure, eligible for retry
    transient: bool = False


@dataclass
class SessionStats:
    requests: int = 0
    ok: int = 0
    soft_failures: int = 0
    rejected: int = 0
    retries: int = 0
    aborted: int = 0
    failure_kinds: dict = field(default_factory=dict)

    def record_kind(self, kind: str) -> None:
        self.failure_kinds[kind] = self.failure_kinds.get(kind, 0) + 1


class Session:
    """One tenant's isolated engine session inside the server."""

    def __init__(
        self,
        session_id: str,
        tenant: Optional[str],
        evaluator: Evaluator,
    ):
        self.id = session_id
        self.tenant = tenant
        self.evaluator = evaluator
        self.state = SessionState.IDLE
        self.tier_cap = Tier.COMPILED
        self.created = time.monotonic()
        self.last_active = self.created
        self.stats = SessionStats()
        #: private bounded log: per-session breaker/failure tables in the
        #: stats dump come from here, not the process-wide ring
        self.failure_log = FailureLog(capacity=SESSION_LOG_CAPACITY)
        #: high-water mark of guard-charged memory across requests
        self.peak_memory_charged = 0

    # -- execution (worker thread) ------------------------------------------

    def execute(self, source: str, budget: RequestBudget) -> Outcome:
        """Parse and evaluate one request under its admission budget.

        Never lets an exception escape: every failure — syntax, guard
        expiry, soft runtime failure, recursion blowup — classifies into a
        structured :class:`Outcome`, because §2.3's "sessions cannot
        crash" is the server's core invariant.
        """
        self.state = SessionState.RUNNING
        self.stats.requests += 1
        guard = budget.make_guard(label=f"session:{self.id}")
        with _observe.span("session.execute", "server", session=self.id,
                           tier_cap=self.tier_cap.value):
            return self._execute_guarded(source, guard)

    def _execute_guarded(self, source: str, guard) -> Outcome:
        try:
            expression = parse(source)
            with guard_scope(guard):
                value = self.evaluator.evaluate_protected(expression)
            self.peak_memory_charged = max(
                self.peak_memory_charged, guard.memory_used
            )
            rendered = full_form(value)
            if rendered == "$Aborted":
                self.stats.aborted += 1
                return Outcome(ok=False, aborted=True, error_kind="Aborted",
                               error_message="evaluation aborted")
            self.stats.ok += 1
            return Outcome(ok=True, value=rendered)
        except GUARD_EXCEPTIONS as error:
            return self._soft_failure(error.kind, str(error), transient=False)
        except WolframRuntimeError as error:
            return self._soft_failure(error.kind, str(error), transient=True)
        except ReproError as error:
            return self._soft_failure(type(error).__name__, str(error),
                                      transient=False)
        except Exception as error:  # pragma: no cover - must never happen
            self.state = SessionState.CRASHED
            return Outcome(ok=False, error_kind="Crash",
                           error_message=f"{type(error).__name__}: {error}")
        finally:
            if self.state is not SessionState.CRASHED:
                self.state = SessionState.IDLE
            self.last_active = time.monotonic()
            # a request must not leak abort state into the next one
            self.evaluator.clear_abort()

    def _soft_failure(self, kind: str, message: str,
                      transient: bool) -> Outcome:
        self.stats.soft_failures += 1
        self.stats.record_kind(kind)
        self.failure_log.record(
            f"session:{self.id}", self.tier_cap, kind, message
        )
        return Outcome(ok=False, error_kind=kind, error_message=message,
                       transient=transient)

    # -- degradation levers -------------------------------------------------

    def apply_tier_cap(self, cap: Tier, reason: str = "degradation") -> int:
        """Demote this session's execution tier; returns withdrawn count."""
        if cap is self.tier_cap:
            return 0
        self.tier_cap = cap
        hotspot = getattr(self.evaluator, "hotspot", None)
        if hotspot is None:
            return 0
        return hotspot.demote_all(cap, reason=reason)

    def idle_seconds(self, now: Optional[float] = None) -> float:
        return (now if now is not None else time.monotonic()) - self.last_active

    def memory_estimate(self) -> int:
        """A deterministic session-footprint proxy for the pressure probe:
        overlay entries dominate long-lived footprint, the guard high-water
        mark captures transient evaluation spikes."""
        overlay = self.evaluator.state.overlay_size()
        return overlay * 1024 + self.peak_memory_charged

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> dict:
        hotspot = getattr(self.evaluator, "hotspot", None)
        return {
            "id": self.id,
            "tenant": self.tenant,
            "state": self.state.value,
            "tier_cap": self.tier_cap.value,
            "requests": self.stats.requests,
            "ok": self.stats.ok,
            "soft_failures": self.stats.soft_failures,
            "rejected": self.stats.rejected,
            "retries": self.stats.retries,
            "aborted": self.stats.aborted,
            "failure_kinds": dict(self.stats.failure_kinds),
            "overlay_definitions": self.evaluator.state.overlay_size(),
            "memory_estimate": self.memory_estimate(),
            "idle_seconds": self.idle_seconds(),
            "promoted_functions": (
                sorted(hotspot.promoted) if hotspot is not None else []
            ),
            "failures": [
                {
                    "sequence": record.sequence,
                    "function": record.function,
                    "tier": record.tier.value,
                    "kind": record.kind,
                    "message": record.message,
                }
                for record in self.failure_log.records()
            ],
        }
