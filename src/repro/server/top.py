"""``python -m repro top`` — a live terminal overview of a running server.

A tiny newline-JSON client for the ``serve`` protocol: it issues one
``{"op": "stats"}`` and one ``{"op": "metrics"}`` round trip per refresh
and renders the operator's one-screen answer to "is the server healthy
right now?" —

* request totals and shed rate, uptime;
* latency quantiles (p50/p95/p99) from the flight recorder's
  ``server.latency_seconds`` log-bucket histogram;
* the degradation level and admission queue occupancy;
* the breaker board: every non-closed session/tenant breaker first;
* the session table with each session's tier cap — the tier *mix* line
  summarizes how much of the fleet is degraded;
* artifact-cache hit rate and hotspot promotions by landing tier;
* flight-recorder health (ring occupancy, retained/dropped requests,
  frozen snapshots).

``render_top`` is a pure function of the two reply payloads, so tests
drive it without a socket; the CLI adds ``--watch`` (clear + redraw every
``--interval`` seconds) and ``--json`` (dump the merged payload instead,
for scripting).
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import time
from typing import Optional

from repro.server.cli import DEFAULT_PORT

#: session rows shown before the table elides (busiest first)
MAX_SESSION_ROWS = 12


def _fmt_seconds(value) -> str:
    if value is None:
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _fmt_rate(numerator: int, denominator: int) -> str:
    if not denominator:
        return "-"
    return f"{100.0 * numerator / denominator:.1f}%"


def _latency_line(metrics: dict) -> str:
    histogram = metrics.get("histograms", {}).get("server.latency_seconds")
    if not histogram:
        return "latency    no samples yet"
    return (
        f"latency    p50 {_fmt_seconds(histogram.get('p50'))}   "
        f"p95 {_fmt_seconds(histogram.get('p95'))}   "
        f"p99 {_fmt_seconds(histogram.get('p99'))}   "
        f"n={histogram.get('count', 0)}"
    )


def _cache_line(counters: dict) -> str:
    hits = counters.get("artifact.cache.hits", 0)
    misses = counters.get("artifact.cache.misses", 0)
    promotions = {
        name.rsplit(".", 1)[-1]: value
        for name, value in counters.items()
        if name.startswith("hotspot.promotions.")
    }
    parts = [
        f"cache      hits {hits}  misses {misses}  "
        f"hit-rate {_fmt_rate(hits, hits + misses)}"
    ]
    if promotions:
        mix = "  ".join(
            f"{tier}={count}" for tier, count in sorted(promotions.items())
        )
        parts.append(f"promotions {mix}")
    return "\n".join(parts)


def _breaker_rows(board: dict) -> list:
    rows = []
    for kind in ("sessions", "tenants"):
        for scope, breaker in sorted(board.get(kind, {}).items()):
            state = breaker.get("state", "?")
            if state == "closed":
                continue
            retry = breaker.get("retry_after")
            rows.append(
                f"  {breaker.get('kind', kind[:-1]):<8}{scope:<16}"
                f"{state:<10}opened x{breaker.get('times_opened', 0)}"
                + (f"  retry in {_fmt_seconds(retry)}" if retry else "")
            )
    return rows


def _session_rows(sessions: dict) -> list:
    ordered = sorted(
        sessions.values(),
        key=lambda info: info.get("requests", 0),
        reverse=True,
    )
    rows = []
    for info in ordered[:MAX_SESSION_ROWS]:
        rows.append(
            f"  {info.get('id', '?'):<14}{info.get('state', '?'):<9}"
            f"{info.get('tier_cap', '?'):<12}"
            f"req {info.get('requests', 0):<6}"
            f"ok {info.get('ok', 0):<6}"
            f"fail {info.get('soft_failures', 0):<5}"
            f"shed {info.get('rejected', 0):<5}"
            f"mem {info.get('memory_estimate', 0) // 1024}K"
        )
    if len(ordered) > MAX_SESSION_ROWS:
        rows.append(f"  ... and {len(ordered) - MAX_SESSION_ROWS} more")
    return rows


def render_top(stats: dict, metrics: Optional[dict] = None) -> str:
    """The one-screen server overview, as a string (pure; testable)."""
    metrics = metrics or {}
    counters = metrics.get("counters", {})
    totals = stats.get("requests", {})
    pressure = stats.get("pressure", {})
    admission = stats.get("admission", {})
    sessions = stats.get("sessions", {})
    telemetry = stats.get("telemetry", {})

    tiers: dict[str, int] = {}
    for info in sessions.values():
        cap = info.get("tier_cap", "?")
        tiers[cap] = tiers.get(cap, 0) + 1
    tier_mix = "  ".join(
        f"{tier}={count}" for tier, count in sorted(tiers.items())
    ) or "-"

    lines = [
        f"repro server  up {_fmt_seconds(stats.get('uptime_seconds', 0.0))}  "
        f"pressure {pressure.get('level', '?')}  "
        f"sessions {len(sessions)} (tiers: {tier_mix})",
        f"requests   total {totals.get('requests', 0)}  "
        f"ok {totals.get('ok', 0)}  failed {totals.get('failed', 0)}  "
        f"shed {totals.get('shed', 0)} "
        f"({_fmt_rate(totals.get('shed', 0), totals.get('requests', 0))})  "
        f"retries {totals.get('retries', 0)}  "
        f"evicted {totals.get('evicted', 0)}",
        _latency_line(metrics),
        f"admission  running {admission.get('running', 0)}/"
        f"{admission.get('max_concurrent', 0)}  "
        f"waiting {admission.get('waiting', 0)}/"
        f"{admission.get('queue_limit', 0)}  "
        f"peak queue {admission.get('peak_queue_depth', 0)}",
        _cache_line(counters),
    ]

    breaker_rows = _breaker_rows(stats.get("breakers", {}))
    lines.append(f"breakers   {len(breaker_rows)} tripped")
    lines.extend(breaker_rows)

    if telemetry:
        snapshots = telemetry.get("snapshots", [])
        lines.append(
            f"flight     ring {telemetry.get('ring_events', 0)}/"
            f"{telemetry.get('ring_capacity', 0)}  "
            f"retained {telemetry.get('retained_requests', 0)}  "
            f"dropped {telemetry.get('dropped_requests', 0)}  "
            f"snapshots {len(snapshots)}"
            + ("".join(f"\n  snapshot: {s.get('reason', '?')}"
                       f" ({s.get('events', 0)} events)"
                       for s in snapshots))
        )
    else:
        lines.append("flight     recorder off")

    if sessions:
        lines.append("sessions")
        lines.extend(_session_rows(sessions))
    return "\n".join(lines)


# -- the TCP client ----------------------------------------------------------


def fetch(host: str, port: int, timeout: float = 5.0) -> tuple:
    """One stats + metrics round trip against a running ``repro serve``."""
    with socket.create_connection((host, port), timeout=timeout) as conn:
        handle = conn.makefile("rwb")
        replies = []
        for op in ("stats", "metrics"):
            handle.write(json.dumps({"op": op}).encode("utf-8") + b"\n")
            handle.flush()
            line = handle.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            replies.append(json.loads(line))
    return replies[0].get("stats", {}), replies[1].get("metrics", {})


def build_parser(parser: Optional[argparse.ArgumentParser] = None
                 ) -> argparse.ArgumentParser:
    if parser is None:
        parser = argparse.ArgumentParser(prog="repro top")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("--watch", action="store_true",
                        help="clear and redraw until interrupted")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="refresh period with --watch, seconds")
    parser.add_argument("--count", type=int, default=0,
                        help="with --watch, stop after N refreshes "
                        "(0 = until interrupted)")
    parser.add_argument("--json", action="store_true",
                        help="print the merged stats+metrics JSON instead "
                        "of the rendered view")
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    refreshes = 0
    try:
        while True:
            try:
                stats, metrics = fetch(args.host, args.port)
            except OSError as error:
                print(f"repro top: cannot reach {args.host}:{args.port} "
                      f"({error})", file=sys.stderr)
                return 1
            if args.json:
                print(json.dumps({"stats": stats, "metrics": metrics},
                                 indent=2))
            else:
                if args.watch:
                    sys.stdout.write("\x1b[2J\x1b[H")  # clear + home
                print(render_top(stats, metrics))
            refreshes += 1
            if not args.watch or (args.count and refreshes >= args.count):
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
