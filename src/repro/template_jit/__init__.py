"""Template-JIT baseline tier: copy-and-patch stitching for hotspot tier-up.

The compile-speed/code-quality tradeoff (Titzer 2023) made concrete: this
package compiles a typed function body in *microseconds* by stitching
pre-generated Python source templates — one per bytecode instruction /
typed-IR op — in a single linear pass, with no optimization pipeline and
no register allocation beyond slot numbering (Xu & Kjolstad's
copy-and-patch, transposed to Python source stencils).

The hotspot ladder (``repro.runtime.hotspot``) promotes hot functions
here first, at a low threshold, so they get decent code almost
immediately; the full ``FunctionCompile`` pipeline only runs if they stay
hot.  See ``compile_template`` / ``compile_template_function`` for the
direct API and :class:`TemplateCompiledFunction` for the artifact
contract.
"""

from repro.template_jit.artifact import TemplateCompiledFunction
from repro.template_jit.compiler import (
    TemplateCompiler,
    compile_template,
    compile_template_function,
)
from repro.template_jit.templates import SUPPORTED_HEADS

__all__ = [
    "TemplateCompiledFunction",
    "TemplateCompiler",
    "compile_template",
    "compile_template_function",
    "SUPPORTED_HEADS",
]
