"""Interval pre-pass for the template stitcher: the unchecked-op mask.

The full pipeline proves check elision with a worklist abstract
interpretation over WIR (:mod:`repro.analyze.dataflow`).  The template
tier cannot afford that — its entire budget is one linear stitch — so
this module runs a miniature version of the *same* interval arithmetic
directly over the MExpr body in a single recursive walk, and hands the
stitcher a precomputed per-operation checked/unchecked mask it consults
in O(1) per arithmetic node.

Sound sources of bounds (everything else stays unbounded):

* integer literals;
* ``Do`` iterator variables with literal (or literal-derived) bounds
  that the loop body never reassigns;
* ``Module`` locals with integer-literal initializers never reassigned
  anywhere in the body.

An arithmetic node is marked unchecked only when the *exact* result of
every partial fold (the stitcher folds variadic ``Plus``/``Times`` left
to right) provably fits Integer64 — then the overflow-trapping ``_ci``
stencil can never fire and the plain stencil is substituted.  A node
reached twice under different scopes keeps the conservative verdict.

The marks double as a preorder bitmask (bit *k* set = the *k*-th
arithmetic op in walk order is unchecked) surfaced on the compiled
artifact for debugging and telemetry.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.mexpr.atoms import MInteger, MSymbol
from repro.mexpr.expr import MExpr


def elision_enabled() -> bool:
    """The ``REPRO_ELIDE_CHECKS`` knob, shared with the full pipeline."""
    raw = os.environ.get("REPRO_ELIDE_CHECKS", "").strip().lower()
    return raw not in ("0", "off", "false", "no")


class UncheckedMask:
    """Arithmetic nodes proven overflow-free, keyed by node identity."""

    __slots__ = ("marks", "bits", "total")

    def __init__(self, marks: frozenset, bits: int, total: int):
        self.marks = marks  #: frozenset of id(node)
        self.bits = bits    #: preorder bitmask over arithmetic ops
        self.total = total  #: arithmetic ops seen in the walk

    def __contains__(self, node: MExpr) -> bool:
        return id(node) in self.marks

    def __len__(self) -> int:
        return len(self.marks)


EMPTY_MASK = UncheckedMask(frozenset(), 0, 0)

#: heads the stitcher lowers through the checked-integer stencils, with
#: the Interval method that models them exactly
_ARITH_METHODS = {"Plus": "add", "Subtract": "subtract", "Times": "multiply"}

#: heads whose first argument is mutated in place (reassignment scan)
_MUTATING_HEADS = frozenset({
    "Set", "SetDelayed", "Increment", "Decrement", "PreIncrement",
    "PreDecrement", "AddTo", "SubtractFrom", "TimesBy", "DivideBy",
})


def _head_name(node: MExpr) -> Optional[str]:
    head = node.head
    return head.name if isinstance(head, MSymbol) else None


def _assigned_names(node: MExpr) -> set[str]:
    names: set[str] = set()
    if node.is_atom():
        return names
    if (
        _head_name(node) in _MUTATING_HEADS
        and node.args
        and isinstance(node.args[0], MSymbol)
    ):
        names.add(node.args[0].name)
    for arg in node.args:
        names |= _assigned_names(arg)
    return names


def unchecked_mask(body: MExpr) -> UncheckedMask:
    """One recursive walk computing the checked/unchecked op mask."""
    from repro.analyze.dataflow import Interval

    assigned = _assigned_names(body)
    verdicts: dict[int, bool] = {}
    state = {"bits": 0, "total": 0}

    def evaluate(node: MExpr, env: dict, depth: int = 8):
        if depth <= 0:
            return None
        if isinstance(node, MInteger):
            return Interval.const(node.value)
        if isinstance(node, MSymbol):
            return env.get(node.name)
        if node.is_atom():
            return None
        hname = _head_name(node)
        method = _ARITH_METHODS.get(hname)
        if method is not None and len(node.args) >= 2:
            result = evaluate(node.args[0], env, depth - 1)
            for arg in node.args[1:]:
                if result is None:
                    return None
                other = evaluate(arg, env, depth - 1)
                if other is None:
                    return None
                result = getattr(result, method)(other)
            return result
        if hname == "Minus" and len(node.args) == 1:
            operand = evaluate(node.args[0], env, depth - 1)
            return operand.negate() if operand is not None else None
        return None

    def judge(node: MExpr, env: dict) -> None:
        """Every partial left-fold must fit — the stitcher folds pairwise."""
        method = _ARITH_METHODS[_head_name(node)]
        state["total"] += 1
        bit = state["total"] - 1
        safe = False
        partial = evaluate(node.args[0], env)
        for arg in node.args[1:]:
            if partial is None:
                break
            other = evaluate(arg, env)
            if other is None:
                partial = None
                break
            partial = getattr(partial, method)(other)
            if not partial.fits_int64():
                partial = None
                break
        else:
            safe = partial is not None
        key = id(node)
        verdicts[key] = verdicts.get(key, True) and safe
        if safe:
            state["bits"] |= 1 << bit

    def walk(node: MExpr, env: dict) -> None:
        if node.is_atom():
            return
        hname = _head_name(node)
        if hname in _ARITH_METHODS and len(node.args) >= 2:
            judge(node, env)
        if hname in ("Module", "Block", "With") and node.args:
            inner = dict(env)
            declarations = node.args[0]
            entries = (
                declarations.args
                if _head_name(declarations) == "List" else ()
            )
            for entry in entries:
                if isinstance(entry, MSymbol):
                    if entry.name not in assigned:
                        inner[entry.name] = Interval.const(0)
                    else:
                        inner.pop(entry.name, None)
                elif (
                    _head_name(entry) == "Set"
                    and len(entry.args) == 2
                    and isinstance(entry.args[0], MSymbol)
                ):
                    walk(entry.args[1], env)
                    name = entry.args[0].name
                    value = (
                        evaluate(entry.args[1], env)
                        if name not in assigned else None
                    )
                    if value is not None:
                        inner[name] = value
                    else:
                        inner.pop(name, None)
                else:
                    walk(entry, inner)
            for argument in node.args[1:]:
                walk(argument, inner)
            return
        if hname == "Do" and len(node.args) == 2:
            body_node, spec = node.args
            inner = dict(env)
            if (
                _head_name(spec) == "List"
                and 2 <= len(spec.args) <= 3
                and isinstance(spec.args[0], MSymbol)
            ):
                iterator = spec.args[0].name
                for bound in spec.args[1:]:
                    walk(bound, env)
                bounds = [evaluate(b, env) for b in spec.args[1:]]
                inner.pop(iterator, None)
                if iterator not in _assigned_names(body_node):
                    if len(bounds) == 1 and bounds[0] is not None:
                        inner[iterator] = Interval(1, bounds[0].hi)
                    elif len(bounds) == 2 and None not in bounds:
                        inner[iterator] = Interval(
                            bounds[0].lo, bounds[1].hi
                        )
                walk(body_node, inner)
                return
            walk(spec, env)
            walk(body_node, env)
            return
        for arg in node.args:
            walk(arg, env)

    walk(body, {})
    marks = frozenset(key for key, safe in verdicts.items() if safe)
    return UncheckedMask(marks, state["bits"], state["total"])
