"""``TemplateCompiledFunction``: the baseline tier's callable artifact.

Mirrors the runtime contract of the other two compiled artifacts
(:class:`repro.compiler.api.CompiledCodeFunction`,
:class:`repro.bytecode.compiled_function.CompiledFunction`):

* argument type checking at the boundary (and copy-on-read for tensor
  inputs — stitched code mutates plain Python lists in place);
* soft failure (F2): a runtime error records against the breaker and
  re-evaluates through the hosting interpreter;
* abortability (F3) and guard budgets via the stitched ``_checkpoint``
  calls;
* tier governance: the breaker starts at :data:`Tier.TEMPLATE` and walks
  the ladder template → bytecode → interpreter.  On first demotion the
  artifact lazily compiles a bytecode fallback from the same source body —
  paying the (heavier) bytecode compile only when the cheap tier has
  already proven unreliable.  Recursive bodies skip the bytecode rung
  (the VM has no self-call) and land on the interpreter directly.

Fault injection: every call fires the ``template.call`` site, so chaos
tests can drive the demotion ladder deterministically.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import (
    GUARD_EXCEPTIONS,
    WolframAbort,
    WolframRuntimeError,
)
from repro.mexpr.expr import MExpr
from repro.mexpr.symbols import to_mexpr
from repro.runtime.guard import CircuitBreaker, FallbackStats, Tier
from repro.testing import faults as _faults

#: Python-level errors stitched code can raise when the one-pass kind
#: propagation was too optimistic; classified as soft failures so the
#: breaker demotes instead of the call hard-crashing
_PYTHON_SOFT_ERRORS = (
    TypeError, ValueError, ZeroDivisionError, OverflowError, IndexError,
    AttributeError, UnboundLocalError, RecursionError,
)


@dataclass
class TemplateCompiledFunction:
    name: str
    argument_types: list[str]
    argument_names: list[str]
    #: the stitched Python source (inspectable; tests assert against it)
    source: str
    source_body: MExpr
    function: object
    #: set when hosted inside an engine session
    evaluator: Optional[object] = field(default=None, repr=False)
    recursive: bool = False
    #: wall-clock cost of the stitch+compile, set by ``compile_template``
    compile_seconds: float = 0.0
    fallback_stats: FallbackStats = field(
        default_factory=FallbackStats, repr=False
    )
    breaker: CircuitBreaker = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self):
        if self.breaker is None:
            self.breaker = CircuitBreaker(self.name, start=Tier.TEMPLATE)
        self._bytecode = None
        self._bytecode_failed = False
        self._bytecode_lock = threading.Lock()

    # -- inspection --------------------------------------------------------

    def stats(self) -> FallbackStats:
        self.fallback_stats.current_tier = self.breaker.tier.value
        return self.fallback_stats

    def reset_tiers(self) -> None:
        self.breaker.reset()
        self.fallback_stats.reset()

    # -- execution ---------------------------------------------------------

    def __call__(self, *arguments):
        tier = self.breaker.tier
        if tier is Tier.INTERPRETER:
            return self._interpret(arguments)
        if tier is not Tier.TEMPLATE:
            return self._call_bytecode(arguments)
        checked = self._check_arguments(arguments)
        self.fallback_stats.record_call(Tier.TEMPLATE)
        try:
            # inside the soft-failure channel so injected runtime faults
            # count against the breaker and walk the demotion ladder
            if _faults._INJECTOR is not None:
                _faults.fire("template.call")
            return self.function(*checked)
        except WolframAbort:
            raise
        except GUARD_EXCEPTIONS as error:
            # an expired deadline/budget is not the tier's fault: record,
            # never retry, never trip the breaker
            self.fallback_stats.record_failure(Tier.TEMPLATE, error.kind)
            raise
        except WolframRuntimeError as error:
            self.fallback_stats.record_failure(Tier.TEMPLATE, error.kind)
            self.breaker.record_failure(Tier.TEMPLATE, error.kind, str(error))
            return self._fallback(arguments, error)
        except _PYTHON_SOFT_ERRORS as error:
            wrapped = WolframRuntimeError(
                "TemplateRuntime", f"{type(error).__name__}: {error}"
            )
            self.fallback_stats.record_failure(Tier.TEMPLATE, wrapped.kind)
            self.breaker.record_failure(
                Tier.TEMPLATE, wrapped.kind, str(wrapped)
            )
            return self._fallback(arguments, wrapped)

    def _call_bytecode(self, arguments):
        """The demoted path: run the lazily-built bytecode fallback, which
        shares this artifact's breaker so its own soft failures continue
        the same ladder down to the interpreter."""
        inner = self._bytecode
        if inner is None:
            inner = self._build_bytecode()
        if inner is not None and self.breaker.tier is Tier.BYTECODE:
            return inner(*arguments)
        return self._interpret(arguments)

    def _build_bytecode(self):
        with self._bytecode_lock:
            if self._bytecode is not None or self._bytecode_failed:
                return self._bytecode
            if self.recursive:
                # the VM has no direct self-call; recursion would bounce
                # through the interpreter escape on every frame
                self._bytecode_failed = True
                self.breaker.unavailable(
                    Tier.BYTECODE, "recursive body has no bytecode lowering"
                )
                return None
            try:
                from repro.bytecode.compiled_function import compile_function

                inner = compile_function(
                    self._bytecode_specs(), self.source_body,
                    evaluator=self.evaluator,
                )
            except WolframAbort:
                raise
            except Exception as error:
                self._bytecode_failed = True
                self.breaker.unavailable(
                    Tier.BYTECODE, f"bytecode compile failed: {error}"
                )
                return None
            # one governor for the whole ladder: VM soft failures count
            # against the same breaker and demote on to the interpreter
            inner.breaker = self.breaker
            inner.fallback_stats = self.fallback_stats
            self._bytecode = inner
            return inner

    def _bytecode_specs(self) -> MExpr:
        from repro.mexpr.atoms import MSymbol
        from repro.mexpr.expr import MExprNormal
        from repro.mexpr.symbols import S

        blanks = {"i": S.Integer, "r": S.Real, "c": S.Complex}
        specs = []
        for name, type_char in zip(self.argument_names, self.argument_types):
            scalar = type_char[-1]
            entry = [
                MSymbol(name),
                MExprNormal(S.Blank, [blanks.get(scalar, S.Real)]),
            ]
            if type_char.startswith("T"):
                entry.append(to_mexpr(1))
            specs.append(MExprNormal(S.List, entry))
        return MExprNormal(S.List, specs)

    def _check_arguments(self, arguments) -> list:
        if len(arguments) != len(self.argument_types):
            raise WolframRuntimeError(
                "ArgumentCount",
                f"expected {len(self.argument_types)} arguments, "
                f"got {len(arguments)}",
            )
        checked = []
        for value, type_char in zip(arguments, self.argument_types):
            if type_char.startswith("T"):
                if not isinstance(value, (list, tuple)):
                    raise WolframRuntimeError(
                        "TypeMismatch", "expected a list"
                    )
                # copy-on-read (F5): stitched code mutates lists in place
                checked.append(_copy_nested(value))
            elif type_char == "i":
                if isinstance(value, bool) or not isinstance(value, int):
                    raise WolframRuntimeError(
                        "TypeMismatch",
                        f"{value!r} is not a machine integer",
                    )
                checked.append(value)
            elif type_char == "r":
                if not isinstance(value, (int, float)):
                    raise WolframRuntimeError(
                        "TypeMismatch", f"{value!r} is not a real"
                    )
                checked.append(float(value))
            elif type_char == "c":
                checked.append(complex(value))
            elif type_char == "b":
                checked.append(bool(value))
            else:  # pragma: no cover
                checked.append(value)
        return checked

    # -- soft failure ------------------------------------------------------

    def _fallback(self, arguments, error: WolframRuntimeError):
        if self.evaluator is None:
            raise error
        self.evaluator.message(
            "CompiledFunction: CompiledFunction operation encountered a "
            f"runtime error ({error.kind}); reverting to uncompiled "
            "evaluation."
        )
        self.fallback_stats.record_rerun()
        return self._reevaluate(arguments)

    def _interpret(self, arguments):
        if self.evaluator is None:
            raise WolframRuntimeError(
                "NoInterpreter",
                f"{self.name}: template tier exhausted without a host engine",
            )
        self.fallback_stats.record_call(Tier.INTERPRETER)
        return self._reevaluate(arguments)

    def _reevaluate(self, arguments):
        from repro.engine.patterns import substitute

        bindings = {
            name: to_mexpr(value)
            for name, value in zip(self.argument_names, arguments)
        }
        result = self.evaluator.evaluate(
            substitute(self.source_body, bindings)
        )
        try:
            return result.to_python()
        except ValueError:
            return result


def _copy_nested(value):
    return [
        _copy_nested(item) if isinstance(item, (list, tuple)) else item
        for item in value
    ]
