"""The template stitcher: one linear pass from MExpr to a Python callable.

The compile path is deliberately primitive — that is the entire design:

1. walk the body once, bottom-up, filling the pre-generated source
   stencils from :mod:`repro.template_jit.templates` with operand
   expressions;
2. number slots (``_s0``, ``_s1``, ...) for parameters and scoped locals —
   no register allocation beyond the counter;
3. ``compile()`` the stitched source and ``exec`` it against the template
   runtime globals.

There is no optimization pipeline, no CSE, no type inference beyond a
one-pass "both operands statically integer" kind propagation that selects
the overflow-checked arithmetic stencils.  Anything outside the stencil
table raises :class:`~repro.errors.TemplateCompilerError` and the caller
falls back to a slower-to-compile tier.

Contract parity with ``FunctionCompile`` artifacts:

* the stitched function runs ``_checkpoint()`` in its prologue and at
  every loop header — the same abort/guard cadence compiled code gets from
  ``runtime_check_abort`` — so ``TimeConstrained``/abort work unchanged;
* self-recursion stitches to a direct ``_self(...)`` call (the bytecode VM
  cannot do this; the template tier can, which is why recursive hotspots
  now get a fast tier even when the full pipeline is unavailable).

Observability: every compilation runs under a ``template.compile`` span
carrying the symbol name and stitched line count.
"""

from __future__ import annotations

import math
import time
from typing import Optional

from repro import observe as _observe
from repro.errors import TemplateCompilerError
from repro.mexpr.atoms import MComplex, MInteger, MReal, MSymbol
from repro.mexpr.expr import MExpr, MExprNormal
from repro.template_jit import analysis as _analysis
from repro.template_jit import templates as _t
from repro.template_jit.artifact import TemplateCompiledFunction

#: statement-form heads `stmt` lowers structurally
_STATEMENT_HEADS = frozenset({
    "CompoundExpression", "Module", "Block", "With", "While", "Do", "For",
    "Set", "If", "Increment", "Decrement", "PreIncrement", "PreDecrement",
    "AddTo", "SubtractFrom", "TimesBy", "DivideBy", "Return", "Break",
    "Continue",
})

#: compound-assignment heads rewritten to ``Set[lhs, Head[lhs, rhs]]``
_AUGMENTED = {
    "Increment": "Plus", "PreIncrement": "Plus",
    "Decrement": "Subtract", "PreDecrement": "Subtract",
    "AddTo": "Plus", "SubtractFrom": "Subtract",
    "TimesBy": "Times", "DivideBy": "Divide",
}

#: unary math heads whose machine result is integer-kind
_UNARY_INT_RESULT = frozenset({"Floor", "Ceiling", "Round", "Sign"})

_KIND_FOR_TYPE = {"i": "i", "r": "r", "c": "c", "b": "b"}


def _head_name(node: MExpr) -> Optional[str]:
    head = node.head
    return head.name if isinstance(head, MSymbol) else None


class TemplateCompiler:
    """Stitches one function body; single use, single pass."""

    def __init__(self, name: str, parameters, type_chars, body: MExpr,
                 unchecked: Optional[_analysis.UncheckedMask] = None):
        self.name = name
        self.parameters = list(parameters)
        self.type_chars = list(type_chars)
        self.body = body
        self._counter = 0
        self._scopes: list[dict[str, str]] = [{}]
        self._slot_kinds: dict[str, str] = {}
        self._lines: list[str] = []
        #: interval-proven overflow-free ops (checked/unchecked mask)
        self._unchecked = unchecked or _analysis.EMPTY_MASK

    # -- slots and scopes --------------------------------------------------

    def _fresh_slot(self) -> str:
        slot = f"_s{self._counter}"
        self._counter += 1
        return slot

    def _bind(self, name: str, kind: str) -> str:
        slot = self._fresh_slot()
        self._scopes[-1][name] = slot
        self._slot_kinds[slot] = kind
        return slot

    def _lookup(self, name: str) -> str:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        raise TemplateCompilerError(f"unbound symbol {name}")

    def _note_assignment(self, slot: str, kind: str) -> None:
        """Single-pass kind widening: once a slot sees a non-integer value
        it stops selecting checked-integer stencils."""
        previous = self._slot_kinds.get(slot)
        if previous is None:
            self._slot_kinds[slot] = kind
        elif previous != kind:
            self._slot_kinds[slot] = "i" if previous == kind == "i" else "r"

    def _emit(self, indent: int, text: str) -> None:
        self._lines.append("    " * indent + text)

    # -- expressions -------------------------------------------------------

    def expr(self, node: MExpr) -> tuple[str, str]:
        """Stitch one expression; returns ``(source, kind)``."""
        if isinstance(node, MInteger):
            return repr(node.value), "i"
        if isinstance(node, MReal):
            value = node.value
            if not math.isfinite(value):
                raise TemplateCompilerError("non-finite real literal")
            return repr(value), "r"
        if isinstance(node, MComplex):
            z = node.value
            return f"complex({z.real!r}, {z.imag!r})", "c"
        if isinstance(node, MSymbol):
            if node.name == "True":
                return "True", "b"
            if node.name == "False":
                return "False", "b"
            if node.name == "Null":
                return "None", "r"
            slot = self._lookup(node.name)
            return slot, self._slot_kinds.get(slot, "r")
        if node.is_atom():
            raise TemplateCompilerError(f"unsupported literal {node!r}")

        head = _head_name(node)
        if head is None:
            raise TemplateCompilerError("non-symbol head")
        arguments = node.args

        if head == self.name:
            stitched = ", ".join(self.expr(a)[0] for a in arguments)
            return f"_self({stitched})", "r"
        if head == "If" and len(arguments) in (2, 3):
            cond, _ = self.expr(arguments[0])
            then, then_kind = self.expr(arguments[1])
            if len(arguments) == 3:
                alt, alt_kind = self.expr(arguments[2])
            else:
                alt, alt_kind = "None", "r"
            kind = then_kind if then_kind == alt_kind else "r"
            return f"({then} if {cond} else {alt})", kind
        if head == "List":
            stitched = ", ".join(self.expr(a)[0] for a in arguments)
            return f"[{stitched}]", "t"
        if head == "Part":
            if len(arguments) < 2:
                raise TemplateCompilerError("Part needs an index")
            code, _ = self.expr(arguments[0])
            for index in arguments[1:]:
                code = f"_part({code}, {self.expr(index)[0]})"
            return code, "r"
        if head == "ConstantArray" and len(arguments) == 2:
            fill, _ = self.expr(arguments[0])
            length, _ = self.expr(arguments[1])
            return f"_const_array({fill}, {length})", "t"
        if head in ("Plus", "Times", "And", "Or", "Min", "Max",
                    "BitAnd", "BitOr", "BitXor") and len(arguments) > 2:
            code, kind = self.expr(arguments[0])
            for argument in arguments[1:]:
                operand, operand_kind = self.expr(argument)
                kinds = (kind, operand_kind)
                code = self._binary(head, code, operand, kinds, node)
                kind = self._result_kind(head, kinds)
            return code, kind
        if head in _t.BINARY_TEMPLATES and len(arguments) == 2:
            left, left_kind = self.expr(arguments[0])
            right, right_kind = self.expr(arguments[1])
            kinds = (left_kind, right_kind)
            return (
                self._binary(head, left, right, kinds, node),
                self._result_kind(head, kinds),
            )
        if head in _t.UNARY_TEMPLATES and len(arguments) == 1:
            operand, operand_kind = self.expr(arguments[0])
            return (
                _t.UNARY_TEMPLATES[head].format(operand),
                self._result_kind(head, (operand_kind,)),
            )
        if head == "Subtract" and len(arguments) == 1:
            operand, operand_kind = self.expr(arguments[0])
            return f"(-{operand})", operand_kind
        raise TemplateCompilerError(f"no template for {head}")

    def _binary(self, head: str, left: str, right: str, kinds,
                node: Optional[MExpr] = None) -> str:
        if head in _t.INT_CHECKED_TEMPLATES and all(k == "i" for k in kinds):
            # the interval pre-pass proved the exact result fits
            # Integer64: the overflow trap can never fire
            if node is not None and node in self._unchecked:
                return _t.BINARY_TEMPLATES[head].format(left, right)
            return _t.INT_CHECKED_TEMPLATES[head].format(left, right)
        return _t.BINARY_TEMPLATES[head].format(left, right)

    @staticmethod
    def _result_kind(head: str, kinds) -> str:
        if head in _t._BOOLEAN_RESULT:
            return "b"
        if head in _UNARY_INT_RESULT:
            return "i"
        if head in _t._INT_PRESERVING and all(k == "i" for k in kinds):
            return "i"
        if any(k == "c" for k in kinds):
            return "c"
        if head == "Abs" and kinds == ("i",):
            return "i"
        return "r"

    # -- statements --------------------------------------------------------

    def stmt(self, node: MExpr, indent: int, result: Optional[str]) -> None:
        """Stitch one statement; assigns the node's value into ``result``
        when given (tail position), otherwise evaluates for effect."""
        head = _head_name(node) if not node.is_atom() else None
        if head == "CompoundExpression":
            if not node.args:
                if result:
                    self._emit(indent, f"{result} = None")
                return
            for argument in node.args[:-1]:
                self.stmt(argument, indent, None)
            self.stmt(node.args[-1], indent, result)
            return
        if head in ("Module", "Block", "With"):
            self._module(node, indent, result)
            return
        if head == "While":
            cond, _ = self.expr(node.args[0])
            self._emit(indent, f"while {cond}:")
            self._emit(indent + 1, "_checkpoint()")
            if len(node.args) > 1:
                for argument in node.args[1:]:
                    self.stmt(argument, indent + 1, None)
            if result:
                self._emit(indent, f"{result} = None")
            return
        if head == "Do":
            self._do(node, indent)
            if result:
                self._emit(indent, f"{result} = None")
            return
        if head == "For":
            if len(node.args) != 4:
                raise TemplateCompilerError("For needs 4 arguments")
            init, cond_node, step, body = node.args
            self.stmt(init, indent, None)
            cond, _ = self.expr(cond_node)
            self._emit(indent, f"while {cond}:")
            self._emit(indent + 1, "_checkpoint()")
            self.stmt(body, indent + 1, None)
            self.stmt(step, indent + 1, None)
            if result:
                self._emit(indent, f"{result} = None")
            return
        if head == "If" and len(node.args) in (2, 3):
            cond, _ = self.expr(node.args[0])
            self._emit(indent, f"if {cond}:")
            self.stmt(node.args[1], indent + 1, result)
            if len(node.args) == 3:
                self._emit(indent, "else:")
                self.stmt(node.args[2], indent + 1, result)
            elif result:
                self._emit(indent, "else:")
                self._emit(indent + 1, f"{result} = None")
            return
        if head == "Set":
            self._set(node.args[0], node.args[1], indent, result)
            return
        if head in _AUGMENTED:
            lhs = node.args[0]
            rhs = (
                node.args[1] if len(node.args) > 1
                else MInteger(1)
            )
            from repro.mexpr.symbols import S

            operation = MExprNormal(getattr(S, _AUGMENTED[head]), [lhs, rhs])
            self._set(lhs, operation, indent, result)
            return
        if head == "Return":
            value = self.expr(node.args[0])[0] if node.args else "None"
            self._emit(indent, f"return {value}")
            return
        if head == "Break":
            self._emit(indent, "break")
            return
        if head == "Continue":
            self._emit(indent, "continue")
            return
        # plain expression in statement position
        code, kind = self.expr(node)
        if result:
            self._emit(indent, f"{result} = {code}")
            self._note_assignment(result, kind)
        else:
            self._emit(indent, code)

    def _module(self, node: MExpr, indent: int, result: Optional[str]) -> None:
        if not node.args or _head_name(node.args[0]) != "List":
            raise TemplateCompilerError("Module needs a local-variable list")
        self._scopes.append({})
        try:
            for local in node.args[0].args:
                if isinstance(local, MSymbol):
                    slot = self._bind(local.name, "i")
                    self._emit(indent, f"{slot} = 0")
                    continue
                if _head_name(local) == "Set" and isinstance(
                    local.args[0], MSymbol
                ):
                    # initializer stitched *before* the local binds, so
                    # ``Module[{x = x + 1}, ...]`` sees the outer x
                    code, kind = self.expr(local.args[1])
                    slot = self._bind(local.args[0].name, kind)
                    self._emit(indent, f"{slot} = {code}")
                    continue
                raise TemplateCompilerError(f"bad Module local {local}")
            if len(node.args) == 1:
                if result:
                    self._emit(indent, f"{result} = None")
                return
            for argument in node.args[1:-1]:
                self.stmt(argument, indent, None)
            self.stmt(node.args[-1], indent, result)
        finally:
            self._scopes.pop()

    def _do(self, node: MExpr, indent: int) -> None:
        if len(node.args) != 2:
            raise TemplateCompilerError("Do needs 2 arguments")
        body, spec = node.args
        self._scopes.append({})
        try:
            if _head_name(spec) == "List" and 2 <= len(spec.args) <= 3 \
                    and isinstance(spec.args[0], MSymbol):
                if len(spec.args) == 2:
                    lower, upper = "1", self.expr(spec.args[1])[0]
                else:
                    lower = self.expr(spec.args[1])[0]
                    upper = self.expr(spec.args[2])[0]
                slot = self._bind(spec.args[0].name, "i")
            else:
                lower, upper = "1", self.expr(spec)[0]
                slot = self._fresh_slot()
            self._emit(indent, f"for {slot} in range({lower}, {upper} + 1):")
            self._emit(indent + 1, "_checkpoint()")
            self.stmt(body, indent + 1, None)
        finally:
            self._scopes.pop()

    def _set(self, lhs: MExpr, rhs: MExpr, indent: int,
             result: Optional[str]) -> None:
        if isinstance(lhs, MSymbol):
            code, kind = self.expr(rhs)
            try:
                slot = self._lookup(lhs.name)
            except TemplateCompilerError:
                slot = self._bind(lhs.name, kind)
            else:
                self._note_assignment(slot, kind)
            self._emit(indent, f"{slot} = {code}")
            if result:
                self._emit(indent, f"{result} = {slot}")
            return
        if _head_name(lhs) == "Part" and len(lhs.args) >= 2:
            container, _ = self.expr(lhs.args[0])
            for index in lhs.args[1:-1]:
                container = f"_part({container}, {self.expr(index)[0]})"
            index = self.expr(lhs.args[-1])[0]
            value, _ = self.expr(rhs)
            self._emit(indent, f"_part_set({container}, {index}, {value})")
            if result:
                self._emit(indent, f"{result} = {value}")
            return
        raise TemplateCompilerError(f"unsupported Set target {lhs}")

    # -- entry -------------------------------------------------------------

    def compile_source(self) -> str:
        slots = [
            self._bind(name, _KIND_FOR_TYPE.get(char, "t"))
            for name, char in zip(self.parameters, self.type_chars)
        ]
        self._emit(0, f"def _tpl({', '.join(slots)}):")
        self._emit(1, "_checkpoint()")
        self.stmt(self.body, 1, "_r")
        self._emit(1, "return _r")
        return "\n".join(self._lines) + "\n"


def _calls_self(body: MExpr, name: str) -> bool:
    for sub in body.subexpressions():
        if not sub.is_atom() and isinstance(sub.head, MSymbol) \
                and sub.head.name == name:
            return True
    return False


def compile_template(
    parameters,
    type_chars,
    body: MExpr,
    evaluator=None,
    name: str = "template",
) -> TemplateCompiledFunction:
    """Stitch, ``compile()``, and wrap one function body.

    ``type_chars`` follows the bytecode artifact convention: ``"i"``,
    ``"r"``, ``"c"``, ``"b"``, or ``"T<char>"`` for tensors (boxed into
    plain nested lists at the call boundary).
    """
    started = time.perf_counter()
    with _observe.span("template.compile", "template_jit", symbol=name):
        mask = (
            _analysis.unchecked_mask(body)
            if _analysis.elision_enabled() else _analysis.EMPTY_MASK
        )
        compiler = TemplateCompiler(name, parameters, type_chars, body,
                                    unchecked=mask)
        source = compiler.compile_source()
        code = compile(source, f"<template:{name}>", "exec")
        namespace = dict(_t.RUNTIME_GLOBALS)
        namespace["_checkpoint"] = _make_checkpoint(evaluator)
        exec(code, namespace)
        function = namespace["_tpl"]
        namespace["_self"] = function
        artifact = TemplateCompiledFunction(
            name=name,
            argument_types=list(type_chars),
            argument_names=list(parameters),
            source=source,
            source_body=body,
            function=function,
            evaluator=evaluator,
            recursive=_calls_self(body, name),
        )
    artifact.compile_seconds = time.perf_counter() - started
    artifact.unchecked_bitmask = mask.bits
    artifact.unchecked_ops = len(mask)
    return artifact


def compile_template_function(
    specs: MExpr, body: MExpr, evaluator=None, name: str = "template"
) -> TemplateCompiledFunction:
    """``Compile[...]``-style entry: same argument specs the bytecode
    compiler accepts (``{{x, _Integer}, {data, _Real, 1}}``)."""
    from repro.bytecode.compiler import BytecodeCompiler

    parsed = BytecodeCompiler()._parse_argument_specs(specs)
    return compile_template(
        [n for n, _ in parsed],
        [t for _, t in parsed],
        body,
        evaluator=evaluator,
        name=name,
    )


def _make_checkpoint(evaluator):
    from repro.runtime.guard import guard_checkpoint

    if evaluator is None:
        return guard_checkpoint
    abort_pending = evaluator.abort_pending

    def checkpoint() -> None:
        guard_checkpoint()
        if abort_pending():
            from repro.errors import WolframAbort

            raise WolframAbort()

    return checkpoint
