"""Pre-generated per-op source templates for the baseline tier.

Copy-and-patch compilation (Xu & Kjolstad 2021) pre-generates one machine
-code stencil per IR op at *build* time and only stitches and patches them
at *compile* time.  This module is the Python analogue: for every bytecode
instruction / typed-IR op the table below holds a Python source fragment
with numbered holes; :mod:`repro.template_jit.compiler` fills the holes
with operand expressions in a single linear pass and ``compile()``s the
stitched source.  Nothing here runs an optimization pipeline — the whole
point of the tier is that this table *is* the compiler back end.

Semantics mirror :mod:`repro.bytecode.vm` exactly:

* integer-kind ``Plus``/``Subtract``/``Times``/``BitShiftLeft`` are
  range-checked against int64 (``_ci``) and overflow raises
  :class:`~repro.errors.IntegerOverflowError` — the canonical soft failure;
* ``Divide`` / ``Mod`` / ``Quotient`` raise ``DivideByZero`` on a zero
  divisor; ``Divide`` is true division (``5/2`` is ``2.5``, matching the
  engine's machine-real semantics at this tier);
* ``Power`` of an integer base with a negative integer exponent goes
  through ``float`` (``_pow``), exactly like the VM's ``POW``;
* unary math reuses the VM's *own* real-or-complex callables, so e.g.
  ``Sin`` of a complex argument agrees bit-for-bit;
* ``Part`` access is 1-based and sign-predicated (negative indices count
  from the end) with ``PartOutOfRange`` on violation, like
  :class:`~repro.bytecode.boxed.BoxedTensor` — but over plain Python lists,
  which is where the tier's steady-state win over the boxed VM comes from.

``RUNTIME_GLOBALS`` is the namespace every stitched function executes in;
it contains only these helpers (plus the per-artifact ``_checkpoint`` and
``_self`` slots installed by the compiler).
"""

from __future__ import annotations

from repro.errors import IntegerOverflowError, WolframRuntimeError

_INT64_MAX = (1 << 63) - 1
_INT64_MIN = -(1 << 63)


# -- runtime helpers (the "runtime library" the stencils link against) ---------


def _ci(value):
    """int64 range check; type-guarded because the stitcher's one-pass kind
    propagation may conservatively mark a float expression integer."""
    if type(value) is int and (value > _INT64_MAX or value < _INT64_MIN):
        raise IntegerOverflowError()
    return value


def _div(a, b):
    if b == 0:
        raise WolframRuntimeError("DivideByZero", "division by zero")
    return a / b


def _pow(a, b):
    if isinstance(a, int) and isinstance(b, int) and b < 0:
        return float(a) ** b
    return a ** b


def _mod(a, b):
    if b == 0:
        raise WolframRuntimeError("DivideByZero", "Mod by zero")
    return a % b


def _quot(a, b):
    if b == 0:
        raise WolframRuntimeError("DivideByZero", "Quotient by zero")
    return a // b


def _part(tensor, index):
    """1-based, sign-predicated element access over plain Python lists."""
    if not isinstance(tensor, list):
        raise WolframRuntimeError("TypeMismatch", "Part of a scalar")
    count = len(tensor)
    if index < 0:
        index = count + index + 1
    if index < 1 or index > count:
        raise WolframRuntimeError(
            "PartOutOfRange", f"part {index} of length-{count} tensor"
        )
    return tensor[index - 1]


def _part_set(tensor, index, value):
    if not isinstance(tensor, list):
        raise WolframRuntimeError("TypeMismatch", "Part of a scalar")
    count = len(tensor)
    if index < 0:
        index = count + index + 1
    if index < 1 or index > count:
        raise WolframRuntimeError(
            "PartOutOfRange", f"part {index} of length-{count} tensor"
        )
    tensor[index - 1] = value


def _len(value):
    return len(value) if isinstance(value, list) else 0


def _const_array(fill, length):
    from repro.runtime.guard import charge_memory

    charge_memory(8 * int(length))
    return [fill] * int(length)


def _total(tensor):
    total = 0
    for item in tensor:
        total = total + item
    return _ci(total)


def _dot(a, b):
    from repro.runtime.blas import dot_nested

    return dot_nested(a, b)


def _build_math_runtime() -> dict:
    """Borrow the VM's real-or-complex unary callables, keyed ``_m<Name>``:
    identical objects, identical semantics, zero duplication."""
    from repro.bytecode.instructions import MATH_CODES
    from repro.bytecode.vm import _MATH_FUNCS

    return {
        f"_m{name}": _MATH_FUNCS[code]
        for name, code in MATH_CODES.items()
        if code in _MATH_FUNCS
    }


MATH_RUNTIME = _build_math_runtime()

#: the namespace stitched code executes in — copied per artifact so the
#: per-function ``_checkpoint`` / ``_self`` slots never alias
RUNTIME_GLOBALS: dict = {
    "__builtins__": {},  # stitched code calls only what the table emits
    "_ci": _ci,
    "_div": _div,
    "_pow": _pow,
    "_mod": _mod,
    "_quot": _quot,
    "_part": _part,
    "_part_set": _part_set,
    "_len": _len,
    "_const_array": _const_array,
    "_total": _total,
    "_dot": _dot,
    "min": min,
    "max": max,
    "abs": abs,
    "bool": bool,
    "type": type,
    "int": int,
    "float": float,
    "complex": complex,
    "range": range,
    **MATH_RUNTIME,
}


# -- the template table --------------------------------------------------------

#: binary/variadic expression stencils (variadic heads left-fold)
BINARY_TEMPLATES: dict[str, str] = {
    "Plus": "({0} + {1})",
    "Subtract": "({0} - {1})",
    "Times": "({0} * {1})",
    "Divide": "_div({0}, {1})",
    "Power": "_pow({0}, {1})",
    "Mod": "_mod({0}, {1})",
    "Quotient": "_quot({0}, {1})",
    "Min": "min({0}, {1})",
    "Max": "max({0}, {1})",
    "BitAnd": "({0} & {1})",
    "BitOr": "({0} | {1})",
    "BitXor": "({0} ^ {1})",
    "BitShiftLeft": "({0} << {1})",
    "BitShiftRight": "({0} >> {1})",
    "Less": "({0} < {1})",
    "LessEqual": "({0} <= {1})",
    "Greater": "({0} > {1})",
    "GreaterEqual": "({0} >= {1})",
    "Equal": "({0} == {1})",
    "Unequal": "({0} != {1})",
    "SameQ": "({0} == {1})",
    "UnsameQ": "({0} != {1})",
    "And": "({0} and {1})",
    "Or": "({0} or {1})",
    "Xor": "(bool({0}) != bool({1}))",
    "Dot": "_dot({0}, {1})",
}

#: overflow-checked variants, used when both operands are statically
#: integer-kind — the same ops the VM routes through ``_check_int``
INT_CHECKED_TEMPLATES: dict[str, str] = {
    "Plus": "_ci({0} + {1})",
    "Subtract": "_ci({0} - {1})",
    "Times": "_ci({0} * {1})",
    "BitShiftLeft": "_ci({0} << {1})",
}

#: heads whose result stays integer-kind when every operand is
_INT_PRESERVING = frozenset({
    "Plus", "Subtract", "Times", "Mod", "Quotient", "Min", "Max",
    "BitAnd", "BitOr", "BitXor", "BitShiftLeft", "BitShiftRight",
})

#: comparison/logic heads: result kind is boolean
_BOOLEAN_RESULT = frozenset({
    "Less", "LessEqual", "Greater", "GreaterEqual", "Equal", "Unequal",
    "SameQ", "UnsameQ", "And", "Or", "Xor", "Not", "EvenQ", "OddQ",
    "IntegerQ", "Positive", "Negative", "TrueQ",
})

#: unary expression stencils; math heads delegate to the VM's callables
UNARY_TEMPLATES: dict[str, str] = {
    "Not": "(not {0})",
    "Minus": "(-{0})",
    "EvenQ": "({0} % 2 == 0)",
    "OddQ": "({0} % 2 != 0)",
    "IntegerQ": "(type({0}) is int)",
    "Positive": "({0} > 0)",
    "Negative": "({0} < 0)",
    "TrueQ": "({0} is True)",
    "Length": "_len({0})",
    "Total": "_total({0})",
    **{name[2:]: name + "({0})" for name in MATH_RUNTIME},
}

# Abs on a negative machine integer stays integer in the engine; ``abs`` is
# already exact for ints and floats, so prefer it over the math-table hop.
UNARY_TEMPLATES["Abs"] = "abs({0})"

#: statement-form heads the stitcher lowers structurally (not via a stencil)
STRUCTURED_HEADS = frozenset({
    "If", "While", "Do", "For", "Module", "Block", "With",
    "CompoundExpression", "Set", "Increment", "Decrement", "PreIncrement",
    "PreDecrement", "AddTo", "SubtractFrom", "TimesBy", "DivideBy",
    "Return", "Break", "Continue", "List", "Part", "ConstantArray",
})

#: every head the template tier can stitch (the promotion gate asks this)
SUPPORTED_HEADS = frozenset(
    set(BINARY_TEMPLATES) | set(UNARY_TEMPLATES) | STRUCTURED_HEADS
)
