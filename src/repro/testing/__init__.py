"""Test-support machinery that ships with the package (not the test suite).

:mod:`repro.testing.faults` is the deterministic fault-injection harness the
robustness suite uses to prove every fallback path unwinds cleanly.
"""

from repro.testing.faults import (
    Fault,
    FaultInjector,
    fire,
    inject_faults,
    injection_active,
)

__all__ = [
    "Fault",
    "FaultInjector",
    "fire",
    "inject_faults",
    "injection_active",
]
