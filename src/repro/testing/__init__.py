"""Test-support machinery that ships with the package (not the test suite).

:mod:`repro.testing.faults` is the deterministic fault-injection harness the
robustness suite uses to prove every fallback path unwinds cleanly.
:mod:`repro.testing.corrupt` is the ``corrupt-ir`` fault class: deliberately
broken pipeline passes that the verify-each sanitizer must catch and
attribute by name.  It also carries the ``artifact.corrupt`` fault class:
mutators that damage persistent artifact-cache entries on disk so the
store's bad-entry recovery (miss + evict, never a crash) is provable per
corruption shape.
"""

from repro.testing.corrupt import (
    ARTIFACT_CORRUPTIONS,
    CORRUPTIONS,
    CorruptionUnapplicable,
    corrupt_artifact,
    corrupt_ir_pass,
)
from repro.testing.faults import (
    Fault,
    FaultInjector,
    fire,
    inject_faults,
    injection_active,
)

__all__ = [
    "ARTIFACT_CORRUPTIONS",
    "CORRUPTIONS",
    "CorruptionUnapplicable",
    "Fault",
    "FaultInjector",
    "corrupt_artifact",
    "corrupt_ir_pass",
    "fire",
    "inject_faults",
    "injection_active",
]
