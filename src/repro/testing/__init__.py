"""Test-support machinery that ships with the package (not the test suite).

:mod:`repro.testing.faults` is the deterministic fault-injection harness the
robustness suite uses to prove every fallback path unwinds cleanly.
:mod:`repro.testing.corrupt` is the ``corrupt-ir`` fault class: deliberately
broken pipeline passes that the verify-each sanitizer must catch and
attribute by name.
"""

from repro.testing.corrupt import (
    CORRUPTIONS,
    CorruptionUnapplicable,
    corrupt_ir_pass,
)
from repro.testing.faults import (
    Fault,
    FaultInjector,
    fire,
    inject_faults,
    injection_active,
)

__all__ = [
    "CORRUPTIONS",
    "CorruptionUnapplicable",
    "Fault",
    "FaultInjector",
    "corrupt_ir_pass",
    "fire",
    "inject_faults",
    "injection_active",
]
