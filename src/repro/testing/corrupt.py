"""The ``corrupt-ir`` fault class: break an IR invariant mid-pipeline.

The verify-each sanitizer's whole promise is *attribution* — when a pass
corrupts the IR, the resulting :class:`~repro.errors.VerificationError`
must name that pass, not whichever later pass happened to trip over the
damage.  That promise is only testable by actually corrupting the IR from
inside the pipeline, which is what this module does: each corruption is a
deliberately broken :class:`~repro.compiler.pipeline.UserPass` that mutates
the :class:`~repro.compiler.wir.function_module.FunctionModule` it is
handed, violating exactly one named invariant.

=====================  ==========================================  ==============
corruption             mutation                                    invariant hit
=====================  ==========================================  ==============
``drop-terminator``    clears one block's terminator               ``cfg.terminated``
``bad-target``         retargets a jump at a nonexistent block     ``cfg.target``
``duplicate-def``      re-defines an existing value with a Copy    ``ssa.unique-def``
``dangling-operand``   swaps an operand for an undefined value     ``ssa.dominance``
``phi-edge``           adds a phi edge from a non-predecessor      ``phi.edges``
``type-mismatch``      forces a non-Boolean branch condition type  ``type.branch``
``analysis.bad_fact``  unsoundly elides an overflow check by       ``analysis.fact``
                       planting an interval fact the dataflow
                       analysis cannot re-derive
=====================  ==========================================  ==============

Usage (the robustness suite's pattern)::

    pipeline = CompilerPipeline(
        options=CompilerOptions(verify_ir="each"),
        user_passes=[corrupt_ir_pass("drop-terminator")],
    )
    with pytest.raises(VerificationError) as failure:
        pipeline.compile_program(source_function)
    assert failure.value.pass_name == "user:corrupt-ir[drop-terminator]"

Corruptions fire on hit counts like :class:`~repro.testing.faults.Fault`
(``after`` skips the first N functions through the pass), so multi-function
programs can target a specific function deterministically.
"""

from __future__ import annotations

# NOTE: compiler modules are imported lazily inside the mutators —
# ``repro.testing`` is pulled in by ``repro.runtime.guard`` during engine
# initialization, long before the compiler package finishes importing.


class CorruptionUnapplicable(AssertionError):
    """The module has no site for the requested corruption (e.g. a
    straight-line function has no phi to damage) — a test-setup bug, so
    an assertion rather than a compiler error."""


def _first_function(subject):
    from repro.compiler.wir.function_module import ProgramModule

    if isinstance(subject, ProgramModule):
        return next(iter(subject.functions.values()))
    return subject


def _drop_terminator(subject) -> None:
    function = _first_function(subject)
    for block in function.ordered_blocks():
        if block.terminator is not None:
            block.terminator = None
            return
    raise CorruptionUnapplicable("no terminated block to corrupt")


def _bad_target(subject) -> None:
    from repro.compiler.wir.instructions import BranchInstr, JumpInstr

    function = _first_function(subject)
    for block in function.ordered_blocks():
        if isinstance(block.terminator, JumpInstr):
            block.terminator.target = "no-such-block"
            return
        if isinstance(block.terminator, BranchInstr):
            block.terminator.true_target = "no-such-block"
            return
    raise CorruptionUnapplicable("no jump/branch terminator to corrupt")


def _duplicate_def(subject) -> None:
    from repro.compiler.wir.instructions import CopyInstr

    function = _first_function(subject)
    for block in function.ordered_blocks():
        for instruction in block.instructions:
            if instruction.result is not None:
                block.instructions.append(
                    CopyInstr(instruction.result, [instruction.result])
                )
                return
    raise CorruptionUnapplicable("no defining instruction to duplicate")


def _dangling_operand(subject) -> None:
    from repro.compiler.wir.instructions import Value

    function = _first_function(subject)
    for block in function.ordered_blocks():
        for instruction in block.instructions:
            if instruction.operands:
                ghost = Value("ghost", type_=instruction.operands[0].type)
                instruction.operands[0] = ghost
                return
    raise CorruptionUnapplicable("no operand-bearing instruction to corrupt")


def _phi_edge(subject) -> None:
    function = _first_function(subject)
    for block in function.ordered_blocks():
        for phi in block.phis:
            phi.incoming.append(("no-such-predecessor", phi.incoming[0][1]))
            return
    raise CorruptionUnapplicable("no phi to corrupt (function has no loops)")


def _bad_fact(subject) -> None:
    """Swap a checked arithmetic op to unchecked with a *planted* fact.

    Targets a site whose recomputed intervals can exceed Integer64 — a
    correct elision would be invisible to the verifier by construction —
    so the ``analysis.fact`` recompute must refuse the justification.
    """
    from repro.analyze.dataflow import analyze_function
    from repro.compiler.twir.check_elision import CHECKED_ARITH
    from repro.compiler.types.builtin_env import PRIMITIVE_IMPLS
    from repro.compiler.wir.instructions import CallPrimitiveInstr

    function = _first_function(subject)
    facts = analyze_function(function)
    for block in function.ordered_blocks():
        for instruction in block.instructions:
            if not isinstance(instruction, CallPrimitiveInstr):
                continue
            arith = CHECKED_ARITH.get(instruction.primitive.runtime_name)
            if arith is None:
                continue
            unchecked_name, method = arith
            a = facts.interval_at(instruction.operands[0], block.name)
            b = facts.interval_at(instruction.operands[1], block.name)
            if getattr(a, method)(b).fits_int64():
                continue  # genuinely safe: eliding it would be sound
            instruction.primitive = PRIMITIVE_IMPLS[unchecked_name]
            instruction.properties["elided_check"] = "int64-overflow"
            return
    raise CorruptionUnapplicable(
        "no checked arithmetic whose guard the facts cannot discharge"
    )


def _type_mismatch(subject) -> None:
    from repro.compiler.wir.instructions import BranchInstr

    function = _first_function(subject)
    for block in function.ordered_blocks():
        if isinstance(block.terminator, BranchInstr):
            condition = block.terminator.condition
            condition.type = function.result_type
            return
    raise CorruptionUnapplicable("no branch condition to corrupt")


#: corruption name -> mutator over a FunctionModule/ProgramModule
CORRUPTIONS = {
    "drop-terminator": _drop_terminator,
    "bad-target": _bad_target,
    "duplicate-def": _duplicate_def,
    "dangling-operand": _dangling_operand,
    "phi-edge": _phi_edge,
    "type-mismatch": _type_mismatch,
    "analysis.bad_fact": _bad_fact,
}


def corrupt_ir_pass(corruption: str = "drop-terminator",
                    stage: str = "wir", after: int = 0):
    """A ``UserPass`` that applies ``corruption`` to the ``after``-th
    module through the given ``stage`` ('wir' or 'twir')."""
    from repro.compiler.pipeline import UserPass

    mutator = CORRUPTIONS.get(corruption)
    if mutator is None:
        raise ValueError(
            f"unknown corruption {corruption!r}; "
            f"choose from {sorted(CORRUPTIONS)}"
        )
    state = {"seen": 0}

    def run(subject) -> None:
        state["seen"] += 1
        if state["seen"] == after + 1:
            mutator(subject)

    return UserPass(stage=stage, run=run, name=f"corrupt-ir[{corruption}]")


# -- the ``artifact.corrupt`` fault class ------------------------------------
#
# The persistent artifact cache (repro.artifacts) promises that a bad
# entry is a miss, never a crash.  These mutators damage a stored entry
# file in a specific way so the recovery path — evict + recompile — can
# be asserted per failure shape.  The injectable counterpart is
# ``Fault("artifact.load", "corrupt")``, which raises inside the store's
# read path without touching the file.


def _artifact_truncate(path: str) -> None:
    with open(path, "r+b") as handle:
        size = handle.seek(0, 2)
        handle.truncate(max(0, size // 2))


def _artifact_garbage(path: str) -> None:
    with open(path, "wb") as handle:
        handle.write(b"\x00\xffnot json at all\x00")


def _artifact_bad_json(path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"schema": 1, "key": ')  # unterminated document


def _artifact_wrong_schema(path: str) -> None:
    import json

    with open(path, "r", encoding="utf-8") as handle:
        entry = json.load(handle)
    entry["schema"] = -1
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry, handle)


def _artifact_key_mismatch(path: str) -> None:
    import json

    with open(path, "r", encoding="utf-8") as handle:
        entry = json.load(handle)
    entry["key"] = "0" * 64
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry, handle)


#: corruption name -> mutator over a stored artifact entry file
ARTIFACT_CORRUPTIONS = {
    "truncate": _artifact_truncate,
    "garbage": _artifact_garbage,
    "bad-json": _artifact_bad_json,
    "wrong-schema": _artifact_wrong_schema,
    "key-mismatch": _artifact_key_mismatch,
}


def corrupt_artifact(store, digest: str, corruption: str = "garbage") -> str:
    """Damage the stored entry for ``digest`` in place; returns the path.

    The entry must exist (a missing entry is a test-setup bug)."""
    import os

    mutator = ARTIFACT_CORRUPTIONS.get(corruption)
    if mutator is None:
        raise ValueError(
            f"unknown artifact corruption {corruption!r}; "
            f"choose from {sorted(ARTIFACT_CORRUPTIONS)}"
        )
    path = store._object_path(digest)
    if not os.path.exists(path):
        raise CorruptionUnapplicable(f"no stored entry for {digest[:12]}")
    mutator(path)
    return path
