"""Deterministic fault injection at named execution sites.

Robustness claims — "every fallback path unwinds cleanly", "an abort never
corrupts session state" — are untestable from the outside: real overflows
and aborts are timing- and input-dependent.  This harness lets a test
*schedule* a fault at a precise, named point of the execution pipeline:

=====================  ==============================================
site                   fired from
=====================  ==============================================
``vm.instruction``     the WVM dispatch loop, before each instruction
``abort.check``        ``runtime_check_abort`` — i.e. every codegen'd
                       abort check in compiled code (loop headers and
                       prologues, §4.5) and the VM's backward-jump polls
``guard.checkpoint``   every guard checkpoint, including standalone
                       exported code's ``_check_abort`` (§4.6)
``template.call``      entry of a :class:`~repro.template_jit.artifact.
                       TemplateCompiledFunction` — drives the baseline
                       tier's demotion ladder (template → bytecode →
                       interpreter) deterministically
``artifact.load``      :meth:`~repro.artifacts.ArtifactStore.get`, after
                       the entry file is found but before it is parsed —
                       with the ``corrupt`` kind this drives the
                       artifact cache's bad-entry recovery (miss + evict,
                       never a crash)
``runtime.<name>``     the runtime-library primitive ``<name>``; the
                       injector wraps the shared ``RUNTIME`` table entry
                       for the scope of the context manager
=====================  ==============================================

Faults fire on hit counts, not wall clock, so a scheduled fault is exactly
reproducible: ``Fault("vm.instruction", "abort", after=40)`` aborts on the
41st instruction boundary, every run.

Usage::

    with inject_faults(Fault("abort.check", "abort", after=2)):
        result = session.evaluate_protected(call)
    assert full_form(result) == "$Aborted"

The hot-path cost when disarmed is one module-attribute load and ``None``
test per site visit; arming is process-global but test-scoped.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.errors import (
    ArtifactCorruptError,
    IntegerOverflowError,
    WolframAbort,
    WolframBudgetError,
    WolframRuntimeError,
    WolframTimeoutError,
)

#: exception factories by fault kind
_FAULT_KINDS: dict[str, Callable[[], BaseException]] = {
    "overflow": lambda: IntegerOverflowError("injected machine integer overflow"),
    "abort": lambda: WolframAbort(),
    "timeout": lambda: WolframTimeoutError("injected deadline expiry"),
    "budget": lambda: WolframBudgetError("memory", "injected budget exhaustion"),
    "runtime": lambda: WolframRuntimeError("Injected", "injected runtime error"),
    # a backend/programming error that must NOT ride the soft-failure channel
    "backend-raise": lambda: AttributeError("injected backend failure"),
    # artifact-cache entry corruption; the store must recover (miss + evict)
    "corrupt": lambda: ArtifactCorruptError("injected artifact corruption"),
}


@dataclass
class Fault:
    """One scheduled fault: raise ``kind`` at the named ``site``.

    ``after`` hits of the site are skipped first; the fault then fires on
    the next ``times`` hits (default once) and goes dormant.  ``error``
    overrides the exception built from ``kind``.
    """

    site: str
    kind: str = "runtime"
    after: int = 0
    times: int = 1
    error: Optional[Callable[[], BaseException]] = None
    hits: int = 0
    fired: int = 0

    def make_error(self) -> BaseException:
        if self.error is not None:
            return self.error()
        factory = _FAULT_KINDS.get(self.kind)
        if factory is None:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        return factory()

    def visit(self) -> Optional[BaseException]:
        """Count one hit; return the exception to raise, if due."""
        self.hits += 1
        if self.hits > self.after and self.fired < self.times:
            self.fired += 1
            return self.make_error()
        return None


class FaultInjector:
    """The armed set of faults, indexed by site."""

    def __init__(self, faults: list[Fault]):
        self.faults = faults
        self._by_site: dict[str, list[Fault]] = {}
        for fault in faults:
            self._by_site.setdefault(fault.site, []).append(fault)
        self._wrapped_primitives: dict[str, Callable] = {}

    def fire(self, site: str) -> None:
        for fault in self._by_site.get(site, ()):
            error = fault.visit()
            if error is not None:
                raise error

    # -- runtime-library wrapping ------------------------------------------------

    def arm_runtime_sites(self) -> None:
        """Wrap ``RUNTIME[<name>]`` for every ``runtime.<name>`` site.

        The generated code's ``_rt`` global aliases the shared ``RUNTIME``
        dict, so swapping entries in place reaches already-compiled
        functions too (primitive calls go through ``_rt[...]`` whenever
        inlining is off, and for the non-inlined primitives always).
        """
        from repro.compiler.runtime_library import RUNTIME

        for site in self._by_site:
            if not site.startswith("runtime."):
                continue
            name = site[len("runtime."):]
            original = RUNTIME.get(name)
            if original is None:
                raise KeyError(f"no runtime primitive named {name!r}")
            self._wrapped_primitives[name] = original

            def wrapped(*args, _site=site, _original=original, **kwargs):
                self.fire(_site)
                return _original(*args, **kwargs)

            RUNTIME[name] = wrapped

    def disarm_runtime_sites(self) -> None:
        from repro.compiler.runtime_library import RUNTIME

        for name, original in self._wrapped_primitives.items():
            RUNTIME[name] = original
        self._wrapped_primitives.clear()


#: the active injector; ``None`` when disarmed (the common case)
_INJECTOR: Optional[FaultInjector] = None


def injection_active() -> bool:
    return _INJECTOR is not None


def fire(site: str) -> None:
    """Hot-path hook: raise the scheduled fault for ``site``, if armed."""
    injector = _INJECTOR
    if injector is not None:
        injector.fire(site)


@contextmanager
def inject_faults(*faults: Fault) -> Iterator[FaultInjector]:
    """Arm the given faults for the duration of the block (not reentrant)."""
    global _INJECTOR
    if _INJECTOR is not None:
        raise RuntimeError("fault injection is already armed")
    injector = FaultInjector(list(faults))
    injector.arm_runtime_sites()
    _INJECTOR = injector
    try:
        yield injector
    finally:
        _INJECTOR = None
        injector.disarm_runtime_sites()
