"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

# Hermetic tests: the persistent artifact cache (repro.artifacts) must
# neither leak compiles between tests nor touch ~/.cache on CI runners.
# Cache-specific tests repoint this at a tmp_path with monkeypatch.
os.environ["REPRO_ARTIFACT_CACHE"] = "off"

from repro.engine import Evaluator  # noqa: E402


@pytest.fixture(autouse=True)
def _uninstall_leaked_flight_recorder():
    """A server constructed without ``close()`` leaves its auto-installed
    FlightRecorder as the process tracer; sweep *background* tracers so
    telemetry state never leaks between tests.  Explicitly-installed
    (foreground) tracers are a test's own responsibility and still fail
    the test_observe/test_telemetry leak assertions."""
    yield
    from repro.observe import trace as _trace

    tracer = _trace.TRACER
    if tracer is not None and getattr(tracer, "background", False):
        _trace.TRACER = None


@pytest.fixture()
def artifact_cache(tmp_path, monkeypatch):
    """An enabled, isolated artifact store rooted in ``tmp_path``."""
    from repro.artifacts import get_store

    monkeypatch.setenv("REPRO_ARTIFACT_CACHE", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_ARTIFACT_CACHE_MAX", raising=False)
    return get_store()


@pytest.fixture()
def evaluator() -> Evaluator:
    return Evaluator()


@pytest.fixture()
def run(evaluator):
    """Evaluate Wolfram source and return the FullForm string."""
    from repro.mexpr import full_form

    def runner(source: str) -> str:
        return full_form(evaluator.run(source))

    return runner


@pytest.fixture()
def run_value(evaluator):
    """Evaluate Wolfram source and return the Python value."""

    def runner(source: str):
        return evaluator.run(source).to_python()

    return runner
