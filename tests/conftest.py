"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.engine import Evaluator


@pytest.fixture()
def evaluator() -> Evaluator:
    return Evaluator()


@pytest.fixture()
def run(evaluator):
    """Evaluate Wolfram source and return the FullForm string."""
    from repro.mexpr import full_form

    def runner(source: str) -> str:
        return full_form(evaluator.run(source))

    return runner


@pytest.fixture()
def run_value(evaluator):
    """Evaluate Wolfram source and return the Python value."""

    def runner(source: str):
        return evaluator.run(source).to_python()

    return runner
