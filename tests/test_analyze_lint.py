"""Source-level lint (repro.analyze.lint) and the ``repro lint`` CLI."""

import io
import json

from repro.analyze import lint_text
from repro.analyze.lint import run_lint_cli


def findings(source: str, **kwargs) -> dict:
    """``{invariant: [diagnostics...]}`` for one source string."""
    result: dict = {}
    for diagnostic in lint_text(source, **kwargs):
        result.setdefault(diagnostic.invariant, []).append(diagnostic)
    return result


class TestUnboundSymbols:
    def test_unbound_lowercase_symbol_is_an_error(self):
        found = findings(
            'Function[{Typed[x, "MachineInteger"]}, x + yy]'
        )
        [diagnostic] = found["lint.unbound-symbol"]
        assert diagnostic.severity == "error"
        assert "yy" in diagnostic.message
        assert diagnostic.line == 1 and diagnostic.column is not None

    def test_unknown_uppercase_symbol_stays_symbolic_warning(self):
        found = findings('Function[{x}, x + SomethingUnknown]')
        [diagnostic] = found["lint.symbolic"]
        assert diagnostic.severity == "warning"

    def test_module_locals_are_bound(self):
        assert findings(
            'Function[{Typed[x, "MachineInteger"]},'
            ' Module[{a = 0, i = 1}, While[i <= x, a = a + i; i = i + 1];'
            ' a]]'
        ) == {}

    def test_module_initializer_sees_earlier_locals(self):
        assert findings(
            'Function[{x}, Module[{a = 1, b = a + 1}, a + b]]'
        ) == {}

    def test_iterator_variables_are_bound(self):
        assert findings('Function[{x}, Sum[i * i, {i, 1, x}]]') == {}
        assert findings('Function[{x}, Table[j + x, {j, 10}]]') == {}

    def test_for_init_binds_its_variable(self):
        assert findings(
            'Function[{x}, Module[{s = 0},'
            ' For[k = 1, k <= x, k = k + 1, s = s + k]; s]]'
        ) == {}

    def test_set_binds_going_forward(self):
        assert findings('Function[{x}, Module[{}, y = x + 1; y * 2]]') == {}

    def test_set_delayed_pattern_names_bound_in_body(self):
        assert "lint.unbound-symbol" not in findings(
            'Module[{}, f[n_] := n + 1; f[3]]'
        )

    def test_assume_bound_suppresses_externals(self):
        source = 'Function[{x}, x + externalTable]'
        assert "lint.unbound-symbol" in findings(source)
        assert findings(source, assume_bound={"externalTable"}) == {}

    def test_kernel_function_contents_exempt(self):
        assert findings(
            'Function[{x}, KernelFunction[someSessionThing[x]][x]]'
        ) == {}

    def test_constants_are_known(self):
        assert findings('Function[{x}, If[x > 0, Pi, E]]') == {}


class TestArity:
    def test_structural_arity_mismatch(self):
        found = findings('Function[{x}, If[x]]')
        assert any("If" in d.message for d in found["lint.arity"])

    def test_library_arity_mismatch(self):
        found = findings('Function[{x}, Mod[x]]')
        [diagnostic] = found["lint.arity"]
        assert diagnostic.severity == "error"
        assert diagnostic.data["count"] == 1

    def test_correct_arities_clean(self):
        assert findings('Function[{x}, Mod[x, 3] + Abs[x]]') == {}

    def test_nary_macro_heads_not_flagged(self):
        # Plus/Times are macro-normalized n-ary heads; any arity is fine
        assert findings('Function[{x}, Plus[x, x, x, x]]') == {}


class TestUnreachable:
    def test_if_true_else_branch(self):
        found = findings('Function[{x}, If[True, x, x + 1]]')
        [diagnostic] = found["lint.unreachable-branch"]
        assert diagnostic.data["branch"] == "else"
        assert diagnostic.severity == "warning"

    def test_if_false_then_branch(self):
        found = findings('Function[{x}, If[False, x, x + 1]]')
        assert found["lint.unreachable-branch"][0].data["branch"] == "then"

    def test_while_false_body(self):
        found = findings('Function[{x}, Module[{}, While[False, x]; x]]')
        assert found["lint.unreachable-branch"][0].data["branch"] == "body"


class TestIntervalLint:
    """Interval-powered provable-error rules (DESIGN.md §12): guaranteed
    overflow, out-of-bounds Part, and interval-decided dead branches."""

    def test_guaranteed_overflow_is_an_error(self):
        found = findings(
            'Function[{x}, Module[{a = 9223372036854775806}, a + 5]]'
        )
        [diagnostic] = found["lint.overflow"]
        assert diagnostic.severity == "error"
        assert "overflow" in diagnostic.message
        assert diagnostic.line == 1 and diagnostic.column is not None

    def test_possible_overflow_stays_silent(self):
        # x is unbounded: the sum *may* overflow, which is a runtime
        # trap, not a provable error — lint only reports certainties
        assert "lint.overflow" not in findings(
            'Function[{x}, Module[{}, x + 5]]'
        )

    def test_part_index_above_known_length(self):
        found = findings(
            'Function[{x}, Module[{v = {1, 2, 3}}, v[[5]]]]'
        )
        [diagnostic] = found["lint.part-bounds"]
        assert diagnostic.severity == "error"
        assert "length-3" in diagnostic.message

    def test_part_index_zero(self):
        found = findings(
            'Function[{x}, Module[{v = {1, 2, 3}}, v[[0]]]]'
        )
        assert found["lint.part-bounds"][0].column is not None

    def test_in_range_iteration_stays_silent(self):
        # j in [1, 4] over a length-3 list is not *provably* wrong on
        # every execution — the runtime check handles the overshoot
        assert "lint.part-bounds" not in findings(
            'Function[{x}, Module[{v = {1, 2, 3}, a = 0},'
            ' Do[a = a + v[[j]], {j, 3}]; a]]'
        )

    def test_interval_decided_if_branch(self):
        found = findings(
            'Function[{x}, Module[{a = 1}, If[a > 5, x, x + 1]]]'
        )
        [diagnostic] = found["lint.unreachable-branch"]
        assert diagnostic.severity == "warning"
        assert "interval" in diagnostic.message

    def test_interval_decided_while(self):
        found = findings(
            'Function[{x}, Module[{n = 3}, While[n < 2, x]; x]]'
        )
        assert "never runs" in found["lint.unreachable-branch"][0].message


class TestLiveness:
    """Dead stores and never-read Module locals via the dataflow
    liveness walk (``dead_assignments``)."""

    def test_unused_module_variable(self):
        found = findings(
            'Function[{x}, Module[{a = 0, b = 1}, a = x; a + x]]'
        )
        [diagnostic] = found["lint.unused-variable"]
        assert diagnostic.severity == "warning"
        assert "'b'" in diagnostic.message

    def test_dead_store_overwritten_before_read(self):
        found = findings(
            'Function[{x}, Module[{a = 0}, a = 1; a = 2; a]]'
        )
        [diagnostic] = found["lint.dead-store"]
        assert diagnostic.severity == "warning"
        assert "'a'" in diagnostic.message

    def test_read_between_stores_is_live(self):
        assert "lint.dead-store" not in findings(
            'Function[{x}, Module[{a = 0}, a = 1; x = x + a; a = 2; a]]'
        )

    def test_loop_carried_variable_not_flagged(self):
        # writes inside control flow are summarized conservatively:
        # warnings must be certainties
        assert findings(
            'Function[{Typed[x, "MachineInteger"]},'
            ' Module[{a = 0, i = 1}, While[i <= x, a = a + i; i = i + 1];'
            ' a]]'
        ) == {}


class TestUnsupported:
    def test_interpreter_fallback_annotated(self):
        found = findings('Function[{x}, Append[{1, 2}, x]]')
        [diagnostic] = found["lint.unsupported"]
        assert diagnostic.severity == "warning"
        assert diagnostic.data["fallback"] == "interpreter"

    def test_unknown_head(self):
        found = findings('Function[{x}, TotallyMadeUpHead[x]]')
        assert "lint.unknown-head" in found

    def test_compilable_subset_clean(self):
        assert findings(
            'Function[{Typed[p, "ComplexReal64"]},'
            ' Module[{it = 0, z = p}, While[it < 10 && Abs[z] < 2,'
            ' z = z^2 + p; it = it + 1]; it]]'
        ) == {}


class TestTypeSpecs:
    def test_malformed_type_specifier(self):
        found = findings('Function[{Typed[x, "NoSuchType999"]}, x]')
        assert "lint.type-spec" in found

    def test_parse_error_becomes_diagnostic(self):
        found = findings('Function[{x}, If[x')
        assert "lint.parse" in found


class TestCli:
    def test_expression_error_exit_code(self):
        out = io.StringIO()
        status = run_lint_cli(["-e", "Function[{x}, x + yy]"], output=out)
        assert status == 1
        assert "lint.unbound-symbol" in out.getvalue()

    def test_clean_expression_exit_zero(self):
        out = io.StringIO()
        status = run_lint_cli(["-e", "Function[{x}, x + 1]"], output=out)
        assert status == 0

    def test_json_output_is_pure_json(self):
        out = io.StringIO()
        run_lint_cli(["--json", "-e", "Function[{x}, x + yy]"], output=out)
        # the human summary goes to stderr; the output stream must parse whole
        payload = json.loads(out.getvalue())
        assert payload[0]["invariant"] == "lint.unbound-symbol"

    def test_bench_programs_lint_clean(self):
        out = io.StringIO()
        status = run_lint_cli(["--bench"], output=out)
        assert status == 0, out.getvalue()

    def test_file_input(self, tmp_path):
        path = tmp_path / "program.wl"
        path.write_text(
            "Function[{Typed[x, \"MachineInteger\"]},\n  x + unboundName]\n"
        )
        out = io.StringIO()
        status = run_lint_cli([str(path)], output=out)
        assert status == 1
        assert f"{path}:2:" in out.getvalue()

    def test_strict_escalates_warnings(self):
        out = io.StringIO()
        source = "Function[{x}, If[True, x, x + 1]]"
        assert run_lint_cli(["-e", source], output=out) == 0
        assert run_lint_cli(["--strict", "-e", source], output=out) == 1

    def test_provable_errors_exit_nonzero_with_position(self, tmp_path):
        path = tmp_path / "program.wl"
        path.write_text(
            'Function[{x},\n  Module[{v = {1, 2, 3}},\n    v[[5]]]]\n'
        )
        out = io.StringIO()
        status = run_lint_cli([str(path)], output=out)
        assert status == 1
        text = out.getvalue()
        assert "lint.part-bounds" in text
        assert f"{path}:3:" in text
