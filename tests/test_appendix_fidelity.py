"""Fidelity checks against the artifact appendix (§A.6): the exact shapes
of the intermediate representations the paper prints."""

import pytest

from repro.compiler import CompileToAST, CompileToIR, FunctionCompile

ADD_ONE = 'Function[{Typed[arg, "MachineInteger"]}, arg + 1]'


class TestA61CompileToAST:
    def test_to_string_preserves_unmacroed_input(self):
        """§A.6.1: 'No macros are apply to the addOne and therefore the
        code is unchanged.'"""
        text = CompileToAST(ADD_ONE)["toString"]
        assert "Typed[arg, " in text
        assert "arg + 1" in text


class TestA62WIRDump:
    def test_information_header_wolfram_syntax(self):
        text = CompileToIR(ADD_ONE)["toString"]
        assert '"inlineInformation" -> {"inlineValue" -> Automatic' in text
        assert '"AbortHandling" -> True' in text

    def test_unoptimized_dump_keeps_source_calls(self):
        text = CompileToIR(ADD_ONE, OptimizationLevel=None)["toString"]
        assert "LoadArgument arg" in text
        assert "Jump" in text or "Return" in text


class TestA63TWIRDump:
    def test_resolved_primitive_name_matches_paper(self):
        """§A.6.3's Call Native`PrimitiveFunction[
        checked_binary_plus_Integer64_Integer64]."""
        text = CompileToIR(ADD_ONE)["toString"]
        assert ("Call Native`PrimitiveFunction["
                "checked_binary_plus_Integer64_Integer64]") in text

    def test_typed_signature_line(self):
        text = CompileToIR(ADD_ONE)["toString"]
        assert 'Main : ("Integer64") -> "Integer64"' in text


class TestA64GeneratedCode:
    def test_generated_function_named_main(self):
        f = FunctionCompile(ADD_ONE)
        assert "def Main(" in f.generated_source

    def test_runtime_symbol_in_noinline_output(self):
        """§A.6.4's LLVM calls checked_binary_plus_Integer64_Integer64; our
        no-inline output calls the same runtime symbol."""
        f = FunctionCompile(ADD_ONE, InlinePolicy=None)
        assert "checked_binary_plus_Integer64_Integer64" in f.generated_source


class TestA7Mandelbrot:
    def test_artifact_mandelbrot_implementation(self):
        """§A.7 prints the benchmark's implementation; ours compiles and
        matches the reference at sample points."""
        from repro.benchsuite import programs, reference

        compiled = FunctionCompile(programs.NEW_MANDELBROT)
        for point in (0j, 1 + 1j, -0.5 + 0.5j, 0.3 + 0.1j, -1 + 0.25j):
            assert compiled(point) == reference.mandelbrot_point(point)


class TestEngineApplicators:
    def test_composition_application(self, run):
        assert run("Composition[f, g][x]") == "f[g[x]]"
        assert run("Composition[(# + 1)&, (# * 2)&][5]") == "11"

    def test_listable_rank2(self, run):
        assert run("{{1, 2}, {3, 4}} + 1") == (
            "List[List[2, 3], List[4, 5]]"
        )

    def test_listable_rank2_times_scalar(self, run):
        assert run("2 * {{1, 2}, {3, 4}}") == (
            "List[List[2, 4], List[6, 8]]"
        )
