"""Saved compiled artifacts: round trip + version-skew recompilation."""

import json

from repro.compiler import CompiledCodeFunction, FunctionCompile


SRC = 'Function[{Typed[x, "MachineInteger"]}, x * x + 1]'


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        original = FunctionCompile(SRC)
        path = str(tmp_path / "square.wxf.json")
        original.save(path)
        loaded = CompiledCodeFunction.load(path)
        assert loaded(6) == original(6) == 37

    def test_saved_payload_carries_version_and_source(self, tmp_path):
        path = str(tmp_path / "artifact.json")
        FunctionCompile(SRC).save(path)
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["compilerVersion"] == (
            CompiledCodeFunction.COMPILER_VERSION
        )
        assert "inputFunction" in payload
        assert "def Main" in payload["generatedSource"]

    def test_stale_version_recompiles_from_input(self, tmp_path):
        """§2.2: 'If the versions do not match the current environment,
        then code is recompiled using the input function.'"""
        path = str(tmp_path / "stale.json")
        FunctionCompile(SRC).save(path)
        with open(path) as handle:
            payload = json.load(handle)
        payload["compilerVersion"] = "0.0.0.1"
        payload["generatedSource"] = "def Main(a0):\n    return -1\n"
        with open(path, "w") as handle:
            json.dump(payload, handle)
        loaded = CompiledCodeFunction.load(path)
        assert loaded(6) == 37  # fresh compile, not the tampered source

    def test_loaded_artifact_keeps_soft_failure(self, tmp_path):
        from repro.compiler import install_engine_support
        from repro.engine import Evaluator

        session = Evaluator()
        install_engine_support(session)
        fib_src = (
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{a = 0, b = 1, i = 1},'
            '  While[i <= n, Module[{t = a + b}, a = b; b = t]; i = i + 1];'
            '  a]]'
        )
        path = str(tmp_path / "fib.json")
        FunctionCompile(fib_src).save(path)
        loaded = CompiledCodeFunction.load(path, evaluator=session)
        assert loaded(200) == 280571172992510140037611932413038677189525
