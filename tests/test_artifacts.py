"""The persistent artifact cache and the AOT warm-image mode.

Covers the tentpole's acceptance criteria end to end: canonical keys
(stable, hash-busting on every input), the on-disk store (hit/miss/evict,
LRU cap, corruption recovery, fault injection), the ``FunctionCompile``
and bytecode-tier wiring (a warm compile runs **zero pipeline passes**,
including from a different process), and the AOT round trip into a
server :class:`~repro.server.base.BaseImage`.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.artifacts import (
    ArtifactStore,
    bytecode_key,
    function_key,
    get_store,
    runtime_fingerprint,
)
from repro.compiler import FunctionCompile
from repro.compiler.options import CompilerOptions
from repro.mexpr import parse
from repro.observe import with_tracing

FIB = ('Function[{Typed[n, "MachineInteger"]}, '
       'Module[{a = 0, b = 1, i = 1}, '
       'While[i <= n, Module[{t = a + b}, a = b; b = t]; i = i + 1]; a]]')


def _pass_spans(tracer) -> list:
    return [e for e in tracer.events if e.name.startswith("pass:")]


# -- keys --------------------------------------------------------------------


class TestKeys:
    def test_same_source_same_key(self):
        options = CompilerOptions()
        first = function_key(parse(FIB), options, "python")
        second = function_key(parse(FIB), options, "python")
        assert first == second

    def test_source_change_busts_key(self):
        options = CompilerOptions()
        other = FIB.replace("a + b", "a + b + 0")
        assert function_key(parse(FIB), options, "python") != \
            function_key(parse(other), options, "python")

    def test_semantic_option_busts_key(self):
        base = function_key(parse(FIB), CompilerOptions(), "python")
        tuned = function_key(
            parse(FIB), CompilerOptions(optimization_level=0), "python"
        )
        assert base != tuned

    def test_backend_and_extra_bust_key(self):
        options = CompilerOptions()
        expr = parse(FIB)
        assert function_key(expr, options, "python") != \
            function_key(expr, options, "bytecode")
        assert function_key(expr, options, "python") != \
            function_key(expr, options, "python", extra={"compiler": 99})

    def test_bytecode_key_depends_on_body_and_versions(self):
        specs = parse('{{x, _Real}}')
        body, other = parse("x + 1.0"), parse("x + 2.0")
        assert bytecode_key(specs, body, (1, 2, 3)) != \
            bytecode_key(specs, other, (1, 2, 3))
        assert bytecode_key(specs, body, (1, 2, 3)) != \
            bytecode_key(specs, body, (1, 2, 4))

    def test_runtime_fingerprint_is_stable_hex(self):
        assert runtime_fingerprint() == runtime_fingerprint()
        assert len(runtime_fingerprint()) == 64


# -- the store ---------------------------------------------------------------


class TestStore:
    def test_miss_hit_evict_counters(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        digest = "ab" * 32
        assert store.get(digest) is None
        assert store.put(digest, {"kind": "python", "x": 1}) is not None
        entry = store.get(digest)
        assert entry["x"] == 1 and entry["key"] == digest
        assert store.evict(digest) and store.get(digest) is None
        assert store.stats == {
            "hits": 1, "misses": 2, "stores": 1,
            "evictions": 1, "corrupt": 0,
        }

    def test_unserializable_entry_declined(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        assert store.put("cd" * 32, {"bad": object()}) is None
        assert store.stats["stores"] == 0

    def test_lru_cap_evicts_oldest_not_newest(self, tmp_path):
        store = ArtifactStore(str(tmp_path), max_bytes=400)
        digests = [f"{i:02x}" * 32 for i in range(8)]
        for digest in digests:
            store.put(digest, {"kind": "python", "pad": "x" * 50})
        assert store.size_bytes() <= 400
        assert store.stats["evictions"] > 0
        # the most recent store is exempt from its own sweep
        assert store.get(digests[-1]) is not None

    @pytest.mark.parametrize("corruption", [
        "truncate", "garbage", "bad-json", "wrong-schema", "key-mismatch",
    ])
    def test_corrupt_entry_is_miss_plus_evict(self, tmp_path, corruption):
        from repro.testing import corrupt_artifact

        store = ArtifactStore(str(tmp_path))
        digest = "ee" * 32
        store.put(digest, {"kind": "python", "x": 1})
        path = corrupt_artifact(store, digest, corruption)
        assert store.get(digest) is None  # never raises
        assert not os.path.exists(path)
        assert store.stats["corrupt"] == 1
        assert store.stats["evictions"] == 1

    def test_injected_load_fault_recovers(self, tmp_path):
        from repro.testing import Fault, inject_faults

        store = ArtifactStore(str(tmp_path))
        digest = "ff" * 32
        store.put(digest, {"kind": "python", "x": 1})
        with inject_faults(Fault("artifact.load", "corrupt")):
            assert store.get(digest) is None
        assert store.stats["corrupt"] == 1
        assert store.get(digest) is None  # the entry was evicted
        store.put(digest, {"kind": "python", "x": 1})
        assert store.get(digest)["x"] == 1  # recompile-and-store recovers

    def test_disabled_by_default_in_tests(self):
        # conftest pins REPRO_ARTIFACT_CACHE=off for hermeticity
        assert get_store() is None


# -- FunctionCompile wiring --------------------------------------------------


class TestFunctionCompileCache:
    def test_second_compile_hits_with_zero_pipeline_passes(
        self, artifact_cache
    ):
        cold = FunctionCompile(FIB)
        assert artifact_cache.stats["stores"] == 1
        with with_tracing() as tracer:
            warm = FunctionCompile(FIB)
        assert artifact_cache.stats["hits"] == 1
        assert _pass_spans(tracer) == []  # the acceptance criterion
        assert [e.name for e in tracer.events
                if e.name == "artifact.cache"]
        assert cold(30) == warm(30) == 832040

    def test_option_change_recompiles(self, artifact_cache):
        FunctionCompile(FIB)
        FunctionCompile(FIB, OptimizationLevel=0)
        assert artifact_cache.stats["hits"] == 0
        assert artifact_cache.stats["stores"] == 2

    def test_constants_bypass_cache(self, artifact_cache):
        source = ('Function[{Typed[n, "MachineInteger"]}, '
                  'Part[myTable, n]]')
        FunctionCompile(source, constants={"myTable": [10, 20, 30]})
        FunctionCompile(source, constants={"myTable": [10, 20, 30]})
        assert artifact_cache.stats["stores"] == 0
        assert artifact_cache.stats["hits"] == 0

    def test_corrupted_entry_recompiles_transparently(self, artifact_cache):
        from repro.testing import corrupt_artifact

        FunctionCompile(FIB)
        objects = artifact_cache._entries()
        assert len(objects) == 1
        digest = os.path.basename(objects[0][0])[:-len(".json")]
        corrupt_artifact(artifact_cache, digest, "garbage")
        warm = FunctionCompile(FIB)  # corrupt -> miss -> fresh compile
        assert warm(10) == 55
        assert artifact_cache.stats["corrupt"] == 1
        assert artifact_cache.stats["stores"] == 2

    def test_restored_function_demotes_to_bytecode(self, artifact_cache):
        """A cache-restored function can still materialize its program
        module for the bytecode demotion path."""
        FunctionCompile(FIB)
        warm = FunctionCompile(FIB)
        assert type(warm.program).__name__ == "_CachedProgram"
        assert warm._bytecode_artifact() is not None
        assert type(warm.program).__name__ == "ProgramModule"

    def test_tensor_constant_pool_roundtrips(self, artifact_cache):
        source = ('Function[{Typed[v, TypeSpecifier["Tensor"["Real64", 1]]]},'
                  ' Total[v]]')
        cold = FunctionCompile(source)
        warm = FunctionCompile(source)
        assert artifact_cache.stats["hits"] == 1
        assert cold([1.0, 2.5]) == warm([1.0, 2.5]) == 3.5


# -- bytecode tier -----------------------------------------------------------


class TestBytecodeCache:
    def test_compile_function_hits(self, artifact_cache):
        from repro.bytecode import compile_function

        specs, body = parse('{{x, _Real}}'), parse("Sin[x] + x*x")
        cold = compile_function(specs, body)
        warm = compile_function(specs, body)
        assert artifact_cache.stats["hits"] == 1
        assert cold(0.5) == warm(0.5)

    def test_payload_roundtrips_interpreter_escape(self):
        from repro.bytecode import compile_function
        from repro.bytecode.compiled_function import CompiledFunction
        from repro.engine import Evaluator

        specs, body = parse('{{x, _Real}}'), parse("x + Gamma[x]")
        original = compile_function(specs, body, evaluator=Evaluator())
        payload = original.to_payload()
        json.dumps(payload)  # the wire form must be pure JSON
        restored = CompiledFunction.from_payload(payload)
        restored.evaluator = Evaluator()
        from repro.mexpr import full_form

        assert full_form(original(3.0)) == full_form(restored(3.0))


# -- cross-process -----------------------------------------------------------


_CHILD = r"""
import json, sys
from repro.compiler import FunctionCompile
from repro.artifacts import get_store
from repro.observe import with_tracing

source = sys.argv[1]
with with_tracing() as tracer:
    fn = FunctionCompile(source)
passes = [e.name for e in tracer.events if e.name.startswith("pass:")]
print(json.dumps({
    "result": fn(30),
    "passes": len(passes),
    "stats": get_store().stats,
}))
"""


class TestCrossProcess:
    def test_second_process_hits_with_zero_passes(self, tmp_path):
        env = dict(os.environ)
        env["REPRO_ARTIFACT_CACHE"] = str(tmp_path / "cache")
        src_root = os.path.dirname(
            os.path.dirname(os.path.abspath(sys.modules["repro"].__file__))
        )
        env["PYTHONPATH"] = src_root

        def compile_in_child() -> dict:
            proc = subprocess.run(
                [sys.executable, "-c", _CHILD, FIB],
                capture_output=True, text=True, env=env, timeout=120,
            )
            assert proc.returncode == 0, proc.stderr
            return json.loads(proc.stdout)

        first = compile_in_child()
        assert first["stats"]["stores"] == 1 and first["passes"] > 0
        second = compile_in_child()
        assert second["stats"]["hits"] == 1
        assert second["passes"] == 0  # zero pipeline passes, new process
        assert first["result"] == second["result"] == 832040


# -- AOT warm images ---------------------------------------------------------


_PRELUDE = (
    "fib[n_Integer] := If[n < 2, n, fib[n - 1] + fib[n - 2]]",
    "sq[x_Integer] := x * x",
)


class TestAOT:
    def test_build_image_is_self_contained_json(self, artifact_cache):
        from repro.artifacts import aot

        manifest = aot.build_image(_PRELUDE)
        json.dumps(manifest)
        assert manifest["kind"] == "repro-aot-image"
        assert sorted(manifest["preload"]) == ["fib", "sq"]
        assert len(manifest["objects"]) >= 2
        # the build ran in a private store: the session store is untouched
        assert artifact_cache.stats["stores"] == 0

    def test_round_trip_into_server_base_image(self, artifact_cache):
        from repro.artifacts import aot
        from repro.server.base import BaseImage

        manifest = aot.build_image(_PRELUDE)
        image = BaseImage.from_image(manifest)
        with with_tracing() as tracer:
            evaluator = image.create_evaluator()
        assert _pass_spans(tracer) == []  # every preload was a cache probe
        promoted = evaluator.hotspot.promoted
        assert promoted["fib"].tier_kind == "compiled"
        assert promoted["sq"].tier_kind == "compiled"
        assert evaluator.run("fib[20] + sq[3]").to_python() == 6765 + 9

    def test_engine_server_boots_from_image_path(
        self, artifact_cache, tmp_path
    ):
        import asyncio

        from repro.artifacts import aot
        from repro.server.core import EngineServer, ServerConfig

        path = str(tmp_path / "image.json")
        aot.build_image(_PRELUDE, out=path)

        async def drive():
            server = EngineServer(
                config=ServerConfig(image_path=path)
            )
            try:
                return await server.submit("fib[15]", session_id="s1")
            finally:
                await server.close()

        response = asyncio.run(drive())
        assert response.ok and response.result == "610"

    def test_version_skew_degrades_to_cold_boot(self, artifact_cache):
        from repro.artifacts import aot
        from repro.server.base import BaseImage

        manifest = aot.build_image(_PRELUDE[:1])
        # simulate artifacts built by a different package/runtime: their
        # keys can never match this process's lookups
        manifest["objects"] = {
            ("0" * 63 + str(i)): dict(entry, key="0" * 63 + str(i))
            for i, entry in enumerate(manifest["objects"].values())
        }
        image = BaseImage.from_image(manifest)
        evaluator = image.create_evaluator()  # boots cold, does not raise
        assert evaluator.run("fib[10]").to_python() == 55

    def test_cli_build_and_boot(self, artifact_cache, tmp_path, capsys):
        from repro.artifacts.aot import main as aot_main

        prelude = tmp_path / "prelude.wl"
        prelude.write_text("# comment\n" + "\n".join(_PRELUDE) + "\n")
        image = str(tmp_path / "image.json")
        assert aot_main(["--prelude", str(prelude), "--out", image]) == 0
        assert aot_main(["--boot", image]) == 0
        out = capsys.readouterr().out
        assert "warmed 2 definition(s)" in out
        assert "2 preloaded" in out

    def test_preload_defers_untyped_definitions(self, artifact_cache):
        from repro.artifacts import aot

        manifest = aot.build_image(("g[x_] := x + 1",) + _PRELUDE[:1])
        assert manifest["preload"] == ["fib"]
        assert "g" in manifest["deferred"]
