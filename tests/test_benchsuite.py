"""Correctness of the benchmark suite at tiny scale: every tier of every
Figure-2 benchmark computes the same answer."""

import pytest

from repro.benchsuite import Figure2Harness, figure2_sizes
from repro.benchsuite import data as workloads
from repro.benchsuite import reference


@pytest.fixture(scope="module")
def harness():
    return Figure2Harness(scale=0.004, repeats=1)


class TestFigure2Correctness:
    @pytest.mark.parametrize("name", Figure2Harness.BENCHMARKS)
    def test_tiers_agree(self, harness, name):
        result = harness.run(name)  # _verify raises on any disagreement
        assert result.tiers["new"].seconds is not None
        assert result.ratio("new") is not None

    def test_qsort_bytecode_unsupported(self, harness):
        result = harness.run("qsort")
        assert result.tiers["bytecode"].seconds is None
        assert "bytecode" in result.tiers["bytecode"].note.lower() or (
            "function" in result.tiers["bytecode"].note.lower()
        )

    def test_format_table_shape(self, harness):
        results = [harness.run("histogram"), harness.run("qsort")]
        table = harness.format_table(results)
        assert "histogram" in table
        assert "unsupported" in table
        assert "2.5" in table  # the display cap from the figure

    def test_format_table_none_ratio(self, harness):
        # a benchmark whose new tier failed to run: ratio("new") is None
        # and the table must render a dash, not crash on the format spec
        from repro.benchsuite.harness import BenchmarkResult, TierResult

        broken = BenchmarkResult("broken")
        broken.tiers["c_port"] = TierResult("c_port", 0.5)
        broken.tiers["new"] = TierResult("new", None,
                                         note="compile failed")
        table = harness.format_table([broken])
        assert "broken" in table
        assert "—" in table

    @pytest.mark.parametrize("name", ["dot", "primeq", "qsort"])
    def test_idiomatic_tier_is_distinct_object(self, harness, name):
        # the idiomatic tier reuses the c_port *measurement* for these
        # kernels but must not alias the same TierResult object — a
        # mutation of one tier's fields must never leak into the other
        result = harness.run(name)
        idiomatic = result.tiers["idiomatic"]
        assert idiomatic is not result.tiers["c_port"]
        assert "same measurement as c_port" in idiomatic.note


class TestReferenceImplementations:
    def test_fnv_variants_agree(self):
        text = "hello, wolfram"
        assert reference.fnv1a_c_port(text) == reference.fnv1a_idiomatic(text)

    def test_histogram_variants_agree(self):
        data = [5, 300, 256, 1, 1]
        assert reference.histogram_c_port(data) == (
            reference.histogram_idiomatic(data)
        )

    def test_blur_variants_agree(self):
        image = workloads.blur_image_flat(8)
        assert reference.blur_c_port(image, 8, 8) == (
            reference.blur_idiomatic(image, 8, 8)
        )

    def test_qsort_reference_sorts(self):
        import operator

        data = [3, 1, 2, 2, 9, -1]
        assert reference.qsort_c_port(data, operator.lt) == sorted(data)
        assert data == [3, 1, 2, 2, 9, -1]  # input untouched (the F5 copy)

    def test_rabin_miller_against_table(self):
        table = reference.prime_sieve_bitmap()
        from repro.runtime import is_probable_prime

        for n in range(16000, 16400):
            assert reference.rabin_miller(n, table) == is_probable_prime(n)

    def test_mandelbrot_interior_point_exhausts(self):
        assert reference.mandelbrot_point(0j) == 1000
        assert reference.mandelbrot_point(2 + 2j) == 1

    def test_prime_bitmap_shape(self):
        bitmap = reference.prime_sieve_bitmap()
        assert len(bitmap) == 1 << 14
        assert bitmap[2] == 1 and bitmap[4] == 0


class TestWorkloads:
    def test_sizes_scale(self):
        small = figure2_sizes(0.01)
        full = figure2_sizes(1.0)
        assert small.fnv_length < full.fnv_length
        assert full.fnv_length == 1_000_000
        assert full.qsort_length == 1 << 15
        assert full.dot_n == 1000

    def test_mandelbrot_region(self):
        points = workloads.mandelbrot_points(0.5)
        xs = {p.real for p in points}
        ys = {p.imag for p in points}
        assert min(xs) == -1.0 and max(xs) >= 0.99
        assert min(ys) == -1.0 and max(ys) >= 0.49

    def test_generators_deterministic(self):
        assert workloads.fnv_string(100) == workloads.fnv_string(100)
        assert workloads.histogram_data(50) == workloads.histogram_data(50)

    def test_presorted(self):
        data = workloads.presorted_list(10)
        assert data == sorted(data)


class TestFigure1RandomWalk:
    def test_three_tiers_produce_walks(self):
        """Figure 1: the same random walk runs interpreted, bytecode-
        compiled, and new-compiler-compiled."""
        from repro.benchsuite import programs
        from repro.bytecode import compile_function
        from repro.compiler import FunctionCompile
        from repro.engine import Evaluator
        from repro.mexpr import head_name, parse

        evaluator = Evaluator()
        # interpreted
        evaluator.state.set_own_value(
            "walk", parse(programs.INTERPRETED_RANDOM_WALK)
        )
        interpreted = evaluator.run("walk[20]")
        assert head_name(interpreted) == "List"
        assert len(interpreted.args) == 21
        # bytecode
        bytecode = compile_function(
            parse(programs.BYTECODE_RANDOM_WALK_SPECS),
            parse(programs.BYTECODE_RANDOM_WALK_BODY),
            evaluator,
        )
        walk_bc = bytecode(20)
        assert len(walk_bc) == 21
        # new compiler
        compiled = FunctionCompile(programs.NEW_RANDOM_WALK,
                                   evaluator=evaluator)
        walk_new = compiled(20)
        assert walk_new.dims == (21, 2)
        # every step is a unit move
        import math

        flat = walk_new.data
        for i in range(20):
            dx = flat[2 * (i + 1)] - flat[2 * i]
            dy = flat[2 * (i + 1) + 1] - flat[2 * i + 1]
            assert math.hypot(dx, dy) == pytest.approx(1.0)
