"""Binding analysis (§4.2) and the WIR layer (§4.3): SSA construction,
analyses, and the linter."""

import pytest

from repro.compiler.binding import analyze_bindings
from repro.compiler.pipeline import CompilerPipeline
from repro.compiler.twir.passes import lint
from repro.compiler.wir.analysis import (
    compute_dominators,
    compute_liveness,
    dominates,
    find_natural_loops,
    loop_headers,
)
from repro.compiler.wir.instructions import PhiInstr
from repro.errors import BindingError, LintError
from repro.mexpr import full_form, parse


class TestBindingAnalysis:
    def test_paper_flattening_example(self):
        """§4.2: Module[{a=1,b=1}, a+b+Module[{a=3}, a]] renames the inner
        a so subsequent analyses see flat, shadow-free scopes."""
        result = analyze_bindings([], parse(
            "Module[{a = 1, b = 1}, a + b + Module[{a = 3}, a]]"
        ))
        text = full_form(result.body)
        assert "Module" not in text           # scoping desugared away
        assert len(result.locals) == 3        # a, b, and the renamed inner a
        assert len(set(result.locals)) == 3   # all unique

    def test_parameter_shadowing(self):
        result = analyze_bindings(["x"], parse("Module[{x = 1}, x]"))
        assert result.locals[0] != "x"  # inner x renamed away from the param

    def test_initializer_sees_enclosing_binding(self):
        result = analyze_bindings(["x"], parse("Module[{y = x + 1}, y]"))
        text = full_form(result.body)
        assert "Set[y, Plus[x, 1]]" in text

    def test_binder_metadata_attached(self):
        result = analyze_bindings(["p"], parse("p + 1"))
        symbols = [
            node for node in result.body.subexpressions()
            if node.is_atom() and node.has_property("binding")
        ]
        assert symbols and symbols[0].get_property("binding") == "p"

    def test_with_substitutes(self):
        result = analyze_bindings([], parse("With[{c = 3}, c + c]"))
        assert full_form(result.body) == "Plus[3, 3]"

    def test_escape_analysis(self):
        """§4.2: variables referenced in nested Function bodies escape."""
        result = analyze_bindings(
            [], parse("Module[{n = 1}, Function[{y}, y + n]]")
        )
        assert result.escaped == {result.locals[0]}

    def test_non_escaping_variable(self):
        result = analyze_bindings([], parse("Module[{n = 1}, n + 1]"))
        assert result.escaped == set()

    def test_uninitialized_module_variable(self):
        result = analyze_bindings([], parse("Module[{u}, u = 1; u]"))
        assert len(result.locals) == 1


def _lower(source: str):
    pipeline = CompilerPipeline()
    parameters, body = pipeline.parse_function(parse(source))
    body = pipeline.expand_macros(body)
    from repro.compiler.wir.lower import Lowerer

    return Lowerer("Main", pipeline.type_environment).lower(parameters, body)


class TestSSAConstruction:
    def test_straight_line(self):
        fn = _lower('Function[{Typed[x, "MachineInteger"]}, x + 1]')
        assert fn.entry is not None
        lint(fn)

    def test_loop_produces_phi(self):
        fn = _lower(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{i = 0}, While[i < n, i = i + 1]; i]]'
        )
        lint(fn)
        phis = [p for b in fn.ordered_blocks() for p in b.phis]
        assert phis, "loop-carried variable needs a phi"

    def test_if_value_produces_phi_at_join(self):
        fn = _lower(
            'Function[{Typed[c, "Boolean"]}, If[c, 1, 2]]'
        )
        lint(fn)
        phis = [p for b in fn.ordered_blocks() for p in b.phis]
        assert len(phis) == 1
        assert len(phis[0].incoming) == 2

    def test_read_before_write_rejected(self):
        with pytest.raises(BindingError):
            _lower(
                'Function[{Typed[c, "Boolean"]},'
                ' Module[{u}, If[c, u = 1]; u]]'
            )

    def test_provenance_metadata(self):
        """§4.3: IR nodes carry their originating MExpr."""
        fn = _lower('Function[{Typed[x, "MachineInteger"]}, x + 1]')
        tagged = [
            i for b in fn.ordered_blocks() for i in b.instructions
            if i.properties.get("mexpr") is not None
        ]
        assert tagged


class TestAnalyses:
    def test_dominators_entry_dominates_all(self):
        fn = _lower(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{i = 0}, While[i < n, i = i + 1]; i]]'
        )
        idom = compute_dominators(fn)
        for name in fn.blocks:
            assert dominates(idom, fn.entry, name)

    def test_loop_detection(self):
        fn = _lower(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{i = 0}, While[i < n, i = i + 1]; i]]'
        )
        loops = find_natural_loops(fn)
        assert len(loops) == 1
        assert loops[0].back_edges

    def test_nested_loops_detected(self):
        fn = _lower(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{i = 0, j = 0, s = 0},'
            '  While[i < n, j = 0; While[j < n, s = s + 1; j = j + 1];'
            '   i = i + 1]; s]]'
        )
        assert len(loop_headers(fn)) == 2

    def test_straight_line_has_no_loops(self):
        fn = _lower('Function[{Typed[x, "Real64"]}, x * x]')
        assert find_natural_loops(fn) == []

    def test_liveness_parameter_live_into_loop(self):
        fn = _lower(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{i = 0}, While[i < n, i = i + 1]; i]]'
        )
        live_in, live_out = compute_liveness(fn)
        parameter = fn.parameters[0]
        headers = loop_headers(fn)
        assert any(parameter in live_in[name] for name in headers)


class TestLinter:
    def test_clean_function_passes(self):
        fn = _lower('Function[{Typed[x, "MachineInteger"]}, x + 1]')
        lint(fn)

    def test_double_definition_detected(self):
        fn = _lower('Function[{Typed[x, "MachineInteger"]}, x + 1]')
        block = fn.blocks[fn.entry]
        # duplicate an instruction object: same result Value defined twice
        duplicated = [i for i in block.instructions if i.result is not None][0]
        block.instructions.append(duplicated)
        with pytest.raises(LintError):
            lint(fn)

    def test_missing_terminator_detected(self):
        fn = _lower('Function[{Typed[x, "MachineInteger"]}, x + 1]')
        fn.blocks[fn.entry].terminator = None
        with pytest.raises(LintError):
            lint(fn)

    def test_dangling_jump_detected(self):
        from repro.compiler.wir.instructions import JumpInstr

        fn = _lower('Function[{Typed[x, "MachineInteger"]}, x + 1]')
        fn.blocks[fn.entry].terminator = JumpInstr("nowhere(99)")
        with pytest.raises(LintError):
            lint(fn)


class TestIRDump:
    def test_paper_appendix_shape(self):
        """§A.6.2-3: the IR listing carries the Information header, the
        function name, and resolved primitive calls."""
        from repro.compiler import CompileToIR

        text = CompileToIR(
            'Function[{Typed[arg, "MachineInteger"]}, arg + 1]'
        )["toString"]
        assert "Main::Information" in text
        assert "LoadArgument arg" in text
        assert "checked_binary_plus_Integer64_Integer64" in text
        assert 'Main : ("Integer64") -> "Integer64"' in text

    def test_unoptimized_ir_keeps_unresolved_calls(self):
        from repro.compiler import CompileToIR

        text = CompileToIR(
            'Function[{Typed[arg, "MachineInteger"]}, arg + arg]',
            OptimizationLevel=None,
        )["toString"]
        assert "Main" in text
