"""The legacy bytecode compiler: translation, limits, serialization (§2.2)."""

import pytest

from repro.bytecode import (
    BYTECODE_COMPILER_VERSION,
    BytecodeCompiler,
    WVM_ENGINE_VERSION,
    compile_function,
    supported_function_names,
)
from repro.errors import BytecodeCompilerError
from repro.mexpr import parse


def bc(specs: str, body: str, evaluator=None):
    return compile_function(parse(specs), parse(body), evaluator)


class TestBasicCompilation:
    def test_scalar_arithmetic(self):
        f = bc("{{x, _Real}}", "x*x + 1")
        assert f(3.0) == 10.0

    def test_integer_argument(self):
        f = bc("{{n, _Integer}}", "n + 1")
        assert f(41) == 42

    def test_untyped_argument_defaults_to_real(self):
        """§2.2: 'The Compile inputs can be typed, otherwise they are
        assumed to be Real.'"""
        f = bc("{x}", "x + 0.5")
        assert f.argument_types == ["r"]
        assert f(1) == 1.5

    def test_complex_argument(self):
        f = bc("{{z, _Complex}}", "z * z")
        assert f(1 + 1j) == 2j

    def test_paper_example(self, evaluator):
        """§2.2's cf = Compile[{{x, _Real}}, Sin[x] + E^x]."""
        import math

        f = bc("{{x, _Real}}", "Sin[x] + E^x", evaluator)
        assert f(0.3) == pytest.approx(math.sin(0.3) + math.exp(0.3))

    def test_tensor_argument(self):
        f = bc("{{v, _Real, 1}}", "Total[v]")
        assert f([1.0, 2.0, 3.0]) == 6.0

    def test_control_flow(self):
        f = bc("{{n, _Integer}}",
               "Module[{s = 0, i = 1}, While[i <= n, s += i; i++]; s]")
        assert f(100) == 5050

    def test_if_expression(self):
        f = bc("{{x, _Real}}", "If[x > 0, x, -x]")
        assert f(-2.5) == 2.5
        assert f(2.5) == 2.5

    def test_table_and_part(self):
        f = bc("{{n, _Integer}}", "Total[Table[i*i, {i, 1, n}]]")
        assert f(4) == 30

    def test_nested_function_inlining(self):
        f = bc("{{n, _Integer}}", "Map[(# * 2)&, Table[i, {i, 1, n}]]")
        assert f(3) == [2, 4, 6]

    def test_fold(self):
        f = bc("{{n, _Integer}}",
               "Fold[(#1 + #2)&, 0, Table[i, {i, 1, n}]]")
        assert f(10) == 55

    def test_nest_list(self):
        f = bc("{{n, _Integer}}", "NestList[(# * 2)&, 1, n]")
        assert f(4) == [1, 2, 4, 8, 16]

    def test_random_within_bounds(self):
        f = bc("{{n, _Integer}}", "RandomReal[{0.0, 1.0}] * 0 + n")
        assert f(5) == 5

    def test_part_assignment(self):
        f = bc("{{v, _Real, 1}}",
               "Module[{w = v}, w[[1]] = 99.0; w]")
        assert f([1.0, 2.0]) == [99.0, 2.0]

    def test_copy_on_read_protects_input(self):
        """F5 at the boundary: the caller's list is never mutated."""
        data = [1.0, 2.0]
        f = bc("{{v, _Real, 1}}", "Module[{w = v}, w[[1]] = 0.0; w[[1]]]")
        f(data)
        assert data == [1.0, 2.0]


class TestLimits:
    """The design limitations L1 the paper documents (§2.2)."""

    def test_strings_rejected(self):
        with pytest.raises(BytecodeCompilerError, match="strings"):
            bc("{{s, _String}}", "StringLength[s]")

    def test_string_operations_rejected(self):
        with pytest.raises(BytecodeCompilerError, match="strings"):
            bc("{{x, _Real}}", 'StringJoin["a", "b"]')

    def test_function_values_rejected(self):
        with pytest.raises(BytecodeCompilerError, match="[Ff]unction"):
            bc("{{lst, _Real, 1}}", "MySort[lst, Less]")

    def test_function_literal_as_data_rejected(self):
        with pytest.raises(BytecodeCompilerError, match="[Ff]unction"):
            bc("{{lst, _Real, 1}}", "MyApply[lst, (#)&]")

    def test_higher_order_needs_literal_function(self):
        with pytest.raises(BytecodeCompilerError):
            bc("{{lst, _Real, 1}, {f, _Real}}", "Map[f, lst]")

    def test_supported_function_count_order_of_magnitude(self):
        """§2.2: 'around 200 commonly used functions'."""
        count = len(supported_function_names())
        assert 80 <= count <= 300

    def test_interpreter_escape_for_unknown_numeric(self, evaluator):
        """§2.2: unsupported expressions invoke the interpreter at run
        time."""
        f = bc("{{n, _Integer}}", "Fibonacci[n] + 1", evaluator)
        assert f(10) == 56


class TestSerializedForm:
    def test_versions(self):
        f = bc("{{x, _Real}}", "x + 1")
        assert f.versions[0] == BYTECODE_COMPILER_VERSION
        assert f.versions[1] == WVM_ENGINE_VERSION

    def test_input_form_contains_sections(self):
        f = bc("{{x, _Real}}", "Sin[x] + E^x")
        text = f.input_form()
        assert "CompiledFunction[" in text
        assert "Register Allocations" in text
        assert "Sin" in text

    def test_version_mismatch_triggers_recompile(self, evaluator):
        f = bc("{{x, _Real}}", "x * 2", evaluator)
        f.versions = (1, 1, 0)  # stale artifact
        assert f(2.0) == 4.0
        assert f.versions[0] == BYTECODE_COMPILER_VERSION

    def test_register_reuse(self):
        """§2.2: register allocation reduces the register count."""
        f = bc("{{x, _Real}}", "((x + 1) * (x + 2)) + ((x + 3) * (x + 4))")
        # naive allocation would need ~12 registers; reuse keeps it small
        assert f.register_total <= 8

    def test_instruction_encoding(self):
        from repro.bytecode import Op

        f = bc("{{x, _Real}}", "Sin[x]")
        encoded = [i.encode() for i in f.instructions]
        assert any(e[0] == int(Op.MATH_UNARY) for e in encoded)
        assert encoded[-1] == [1]  # the paper's {1} Return


class TestASTCSE:
    def test_common_subexpression_hoisted(self):
        """§2.2: the bytecode compiler performs AST-level CSE."""
        with_cse = bc("{{x, _Real}}", "Sin[x + 1] + Cos[Sin[x + 1]]")
        # Sin[x + 1] appears twice in the source but compiles once
        from repro.bytecode.instructions import MATH_CODES, Op

        sin_ops = [
            i for i in with_cse.instructions
            if i.op == Op.MATH_UNARY and i.operands[0] == MATH_CODES["Sin"]
        ]
        assert len(sin_ops) == 1

    def test_cse_result_correct(self):
        import math

        f = bc("{{x, _Real}}", "Sin[x + 1] + Cos[Sin[x + 1]]")
        expected = math.sin(1.5) + math.cos(math.sin(1.5))
        assert f(0.5) == pytest.approx(expected)

    def test_cse_skipped_when_parameter_assigned(self):
        f = bc("{{x, _Real}}", "Module[{y = Sin[x]}, x = x + 1; Sin[x] + y]")
        import math

        assert f(0.0) == pytest.approx(math.sin(0.0) + math.sin(1.0))


class TestSoftFallback:
    def test_integer_overflow_falls_back(self, evaluator):
        """F2: int64 overflow reverts to the interpreter's bignums."""
        f = bc("{{n, _Integer}}", "2^n", evaluator)
        assert f(10) == 1024
        assert f(100) == 2 ** 100
        assert f.fallback_count == 1
        assert any("runtime error" in m for m in evaluator.messages)

    def test_iterative_fib_200(self, evaluator):
        f = bc(
            "{{n, _Integer}}",
            "Module[{a = 0, b = 1, i = 1},"
            " While[i <= n, Module[{t = a + b}, a = b; b = t]; i++]; a]",
            evaluator,
        )
        assert f(200) == 280571172992510140037611932413038677189525

    def test_division_by_zero_falls_back(self, evaluator):
        f = bc("{{x, _Real}}", "If[x > 0.0, 1.0/x, 1.0/x]", evaluator)
        assert f(2.0) == 0.5

    def test_no_evaluator_reraises(self):
        from repro.errors import WolframRuntimeError

        f = bc("{{n, _Integer}}", "2^n", None)
        with pytest.raises(WolframRuntimeError):
            f(100)

    def test_argument_count_checked(self, evaluator):
        from repro.errors import WolframRuntimeError

        f = bc("{{x, _Real}}", "x", None)
        with pytest.raises(WolframRuntimeError):
            f(1.0, 2.0)


class TestEngineIntegration:
    def test_compile_keyword(self, run):
        """F1: Compile inside the interpreter yields a callable artifact."""
        assert run(
            "cf = Compile[{{x, _Real}}, x*x]; cf[3.0]"
        ) == "9.0"

    def test_compiled_function_intermixes(self, run):
        assert run(
            "cf = Compile[{{x, _Real}}, x + 1.0]; Map[cf, {1.0, 2.0}]"
        ) == "List[2.0, 3.0]"

    def test_failed_compile_degrades_to_function(self, run, evaluator):
        result = run('g = Compile[{{s, _Real}}, StringJoin["a", "b"]]; g[1.0]')
        assert result == '"ab"'  # interpreted fallback still works
        assert any("interpreted" in m for m in evaluator.messages)
