"""Local function values and captures (the closure-conversion surface,
§4.3's binding-analysis escape handling + the lambda-inlining pass)."""

import pytest

from repro.compiler import FunctionCompile


class TestLocalFunctionValues:
    def test_capturing_lambda(self):
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{offset = 100},'
            '  Module[{add = Function[{y}, y + offset]},'
            '   add[n] + add[1]]]]'
        )
        assert f(5) == 206

    def test_local_comparator(self):
        f = FunctionCompile(
            'Function[{Typed[a, "MachineInteger"],'
            ' Typed[b, "MachineInteger"]},'
            ' Module[{less = Function[{x, y}, x < y]},'
            '  If[less[a, b], a, b]]]'
        )
        assert f(3, 9) == 3
        assert f(9, 3) == 3

    def test_lambda_used_in_higher_order_map(self):
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{scale = 3},'
            '  Module[{g = Function[{x}, x * scale]},'
            '   Total[Map[g, Table[i, {i, 1, n}]]]]]]'
        )
        assert f(4) == 30

    def test_slot_style_lambda_binding(self):
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{double = (2 #)&}, double[n] + double[1]]]'
        )
        assert f(20) == 42

    def test_with_bound_lambda(self):
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' With[{inc = Function[{k}, k + 1]}, inc[inc[n]]]]'
        )
        assert f(40) == 42

    def test_reassigned_function_variable_not_inlined(self):
        """A reassigned binding is a genuine function-typed variable: it
        compiles through the indirect-call path instead."""
        import math

        f = FunctionCompile(
            'Function[{Typed[c, "Boolean"], Typed[v, "Real64"]},'
            ' Module[{g = Sin}, If[c, g = Cos]; g[v]]]'
        )
        assert f(False, 0.5) == pytest.approx(math.sin(0.5))
        assert f(True, 0.5) == pytest.approx(math.cos(0.5))

    def test_nested_capture_chain(self):
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{a = 1},'
            '  Module[{f1 = Function[{x}, x + a]},'
            '   Module[{f2 = Function[{x}, f1[x] * 2]},'
            '    f2[n]]]]]'
        )
        assert f(10) == 22

    def test_escaped_variable_recorded_in_information(self):
        from repro.compiler.binding import analyze_bindings
        from repro.mexpr import parse

        result = analyze_bindings(
            ["n"], parse("Module[{c = n}, Function[{y}, y + c]]")
        )
        assert result.escaped  # c escapes into the lambda
