"""Backend tests: Python (structurizer + fallback), C export, WVM, library
export (§4.6, F4, F10)."""

import subprocess

import pytest

from repro.compiler import (
    FunctionCompile,
    FunctionCompileExportLibrary,
    FunctionCompileExportString,
    LibraryFunctionLoad,
)
from repro.compiler.pipeline import CompilerPipeline
from repro.mexpr import parse

LOOP_FN = (
    'Function[{Typed[n, "MachineInteger"]},'
    ' Module[{s = 0, i = 1}, While[i <= n, s = s + i; i = i + 1]; s]]'
)


class TestPythonBackend:
    def test_generated_source_is_readable_python(self):
        f = FunctionCompile(LOOP_FN)
        source = f.generated_source
        compile(source, "<check>", "exec")  # must be valid Python
        assert "def Main(" in source

    def test_primitive_inlining_default(self):
        """§6: primitives inline; no runtime-table calls for arithmetic."""
        f = FunctionCompile(LOOP_FN)
        assert "_rt['checked_binary_plus" not in f.generated_source

    def test_inline_policy_none_calls_runtime(self):
        """The 10×-Mandelbrot ablation switch (§6)."""
        f = FunctionCompile(LOOP_FN, InlinePolicy=None)
        assert "_rt['checked_binary_plus_Integer64_Integer64']" in (
            f.generated_source
        )
        assert f(10) == 55

    def test_structured_loop_emitted(self):
        f = FunctionCompile(LOOP_FN)
        assert "while True:" in f.generated_source
        assert "_state" not in f.generated_source  # no dispatcher fallback

    def test_tensor_data_alias_emitted(self):
        f = FunctionCompile(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Real64", 1]]]},'
            ' v[[1]]]'
        )
        assert "_d = " in f.generated_source  # the unboxing alias (§6)

    def test_abort_checks_at_loop_heads(self):
        f = FunctionCompile(LOOP_FN)
        body = f.generated_source
        loop_index = body.index("while True:")
        check_index = body.index("_check_abort()", loop_index)
        assert check_index - loop_index < 60  # first statement of the loop

    def test_dispatcher_fallback_is_correct(self):
        """Force the state-machine path and check behaviour matches."""
        from repro.compiler.codegen import python_backend
        from repro.compiler.codegen.structurize import StructurizeError

        original = python_backend.Structurizer

        class Refuses(original):
            def build(self):
                raise StructurizeError("forced")

        python_backend.Structurizer = Refuses
        try:
            f = FunctionCompile(LOOP_FN)
        finally:
            python_backend.Structurizer = original
        assert "_state" in f.generated_source
        assert f(100) == 5050

    def test_constant_hoisting(self):
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{s = 0, i = 1},'
            '  While[i <= n, s = s + 7; i = i + 1]; s]]'
        )
        source = f.generated_source
        # the literal 7 is assigned once, before the loop
        seven_lines = [l for l in source.splitlines() if l.strip().endswith("= 7")]
        assert len(seven_lines) == 1
        assert source.index("= 7") < source.index("while True:")


class TestCBackend:
    def gcc_check(self, source: str, tmp_path):
        path = tmp_path / "out.c"
        path.write_text(source)
        result = subprocess.run(
            ["gcc", "-fsyntax-only", "-std=c11", str(path)],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr

    def test_scalar_function_compiles(self, tmp_path):
        source = FunctionCompileExportString(LOOP_FN, "C")
        assert "int64_t" in source
        assert "goto" in source
        self.gcc_check(source, tmp_path)

    def test_real_function_compiles(self, tmp_path):
        source = FunctionCompileExportString(
            'Function[{Typed[x, "Real64"]}, Sin[x] + Exp[x]]', "C"
        )
        assert "sin(" in source and "exp(" in source
        self.gcc_check(source, tmp_path)

    def test_overflow_check_uses_builtins(self, tmp_path):
        source = FunctionCompileExportString(
            'Function[{Typed[x, "MachineInteger"]}, x + x]', "C"
        )
        assert "__builtin_add_overflow" in source
        self.gcc_check(source, tmp_path)

    def test_tensor_function_declares_runtime(self, tmp_path):
        source = FunctionCompileExportString(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Real64", 1]]]},'
            ' Total[v] + v[[1]]]', "C",
        )
        assert "wolfram_tensor" in source
        self.gcc_check(source, tmp_path)

    def test_complex_function(self, tmp_path):
        source = FunctionCompileExportString(
            'Function[{Typed[z, "ComplexReal64"]}, Abs[z]]', "C"
        )
        assert "_Complex" in source
        self.gcc_check(source, tmp_path)

    def test_kernel_escape_becomes_stub(self, tmp_path):
        source = FunctionCompileExportString(
            'Function[{Typed[n, "MachineInteger"]},'
            ' KernelFunction[Fibonacci][n]]', "C",
        )
        assert "RTERR_NO_KERNEL" in source
        self.gcc_check(source, tmp_path)


class TestWVMBackend:
    def test_listing(self):
        listing = FunctionCompileExportString(LOOP_FN, "WVM")
        assert "WVM translation" in listing
        assert "Return" in listing

    def test_runnable_on_the_legacy_vm(self):
        """F4: the new compiler targets the *existing* WVM."""
        from repro.compiler.codegen.wvm_backend import WVMBackend

        program = CompilerPipeline().compile_program(parse(LOOP_FN))
        compiled = WVMBackend(program).compile_main()
        assert compiled(100) == 5050

    def test_tensor_program_on_wvm(self):
        from repro.compiler.codegen.wvm_backend import WVMBackend

        program = CompilerPipeline().compile_program(parse(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Total[Table[i*i, {i, 1, n}]]]'
        ))
        compiled = WVMBackend(program).compile_main()
        assert compiled(4) == 30

    def test_strings_unrepresentable(self):
        """L1 from the other side: the WVM has no string datatype."""
        from repro.compiler.codegen.wvm_backend import WVMBackend
        from repro.errors import CodegenError

        program = CompilerPipeline().compile_program(parse(
            'Function[{Typed[s, "String"]}, StringLength[s]]'
        ))
        with pytest.raises(CodegenError):
            WVMBackend(program).compile_main()


class TestLibraryExport:
    def test_export_and_load(self, tmp_path):
        """F10: FunctionCompileExportLibrary + LibraryFunctionLoad."""
        path = str(tmp_path / "lib_add.py")
        FunctionCompileExportLibrary(path, LOOP_FN)
        main = LibraryFunctionLoad(path)
        assert main(100) == 5050

    def test_exported_source_is_standalone(self, tmp_path):
        source = FunctionCompileExportString(LOOP_FN, "Python")
        assert "_kernel" in source  # the disabled-kernel stub
        assert "def _check_abort" in source  # abortability disabled (§4.6)

    def test_exported_library_with_constants(self, tmp_path):
        path = str(tmp_path / "lib_table.py")
        FunctionCompileExportLibrary(
            path,
            'Function[{Typed[i, "MachineInteger"]}, lookup[[i]]]',
            constants={"lookup": [10, 20, 30]},
        )
        main = LibraryFunctionLoad(path)
        assert main(2) == 20

    def test_ir_export(self):
        text = FunctionCompileExportString(LOOP_FN, "IR")
        assert "Main" in text and "Phi" in text

    def test_unknown_target_rejected(self):
        from repro.errors import CompilerError

        with pytest.raises(CompilerError):
            FunctionCompileExportString(LOOP_FN, "FPGA")
