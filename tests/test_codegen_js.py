"""The JavaScript backend (F4's cloud-deployment target), executed on node."""

import json
import shutil
import subprocess

import pytest

from repro.compiler import FunctionCompileExportString

node = shutil.which("node")
pytestmark = pytest.mark.skipif(node is None, reason="node not available")


def run_js(source_fn: str, call_expression: str):
    js = FunctionCompileExportString(source_fn, "JavaScript")
    driver = (
        js
        + f"\nconst _out = {call_expression};\n"
        + "console.log(JSON.stringify(_out, "
        + "(k, v) => typeof v === 'bigint' ? v.toString() + 'n' : v));\n"
    )
    proc = subprocess.run(
        [node, "-e", driver], capture_output=True, text=True, timeout=120
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.strip())


class TestJSBackend:
    def test_integer_arithmetic(self):
        out = run_js(
            'Function[{Typed[x, "MachineInteger"]}, x * x + 1]',
            "Main(6n)",
        )
        assert out == "37n"

    def test_loop(self):
        out = run_js(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{s = 0, i = 1}, While[i <= n, s = s + i; i = i + 1]; s]]',
            "Main(100n)",
        )
        assert out == "5050n"

    def test_real_math(self):
        out = run_js(
            'Function[{Typed[x, "Real64"]}, Sin[x] + Exp[x]]',
            "Main(0.5)",
        )
        import math

        assert float(out) == pytest.approx(math.sin(0.5) + math.exp(0.5))

    def test_overflow_semantics_travel(self):
        """F2's checked arithmetic is carried into the JS artifact."""
        js = FunctionCompileExportString(
            'Function[{Typed[x, "MachineInteger"]}, x + 1]', "JavaScript"
        )
        driver = (
            js + "\ntry { Main(9223372036854775807n); console.log('no'); }"
            " catch (e) { console.log(e.message); }\n"
        )
        proc = subprocess.run([node, "-e", driver], capture_output=True,
                              text=True, timeout=60)
        assert proc.returncode == 0, proc.stderr
        assert "IntegerOverflow" in proc.stdout

    def test_tensor_program(self):
        out = run_js(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Total[Table[i * i, {i, 1, n}]]]',
            "Main(4n)",
        )
        assert out == "30n"

    def test_string_program(self):
        out = run_js(
            'Function[{Typed[s, "String"]}, StringJoin[s, "!"]]',
            "Main('cloud')",
        )
        assert out == "cloud!"

    def test_fnv_on_node_matches_python(self):
        from repro.benchsuite import programs, reference

        text = "The Wolfram Language compiler"
        out = run_js(programs.NEW_FNV1A, f"Main({text!r})")
        assert out == f"{reference.fnv1a_c_port(text)}n"

    def test_powmod(self):
        out = run_js(
            'Function[{Typed[a, "MachineInteger"],'
            ' Typed[b, "MachineInteger"]}, PowerMod[a, b, 97]]',
            "Main(5n, 13n)",
        )
        assert out == f"{pow(5, 13, 97)}n"

    def test_kernel_escape_disabled_standalone(self):
        js = FunctionCompileExportString(
            'Function[{Typed[n, "MachineInteger"]},'
            ' KernelFunction[Fibonacci][n]]', "JavaScript",
        )
        driver = (
            js + "\ntry { Main(3n); console.log('no'); }"
            " catch (e) { console.log(e.message); }\n"
        )
        proc = subprocess.run([node, "-e", driver], capture_output=True,
                              text=True, timeout=60)
        assert "NoKernel" in proc.stdout

    def test_webassembly_alias(self):
        text = FunctionCompileExportString(
            'Function[{Typed[x, "MachineInteger"]}, x]', "WebAssembly"
        )
        assert "JavaScript backend" in text
