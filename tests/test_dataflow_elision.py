"""Dataflow abstract interpretation and check elision (DESIGN.md §12).

Covers the tentpole end to end: the interval domain's transfer
functions, the worklist engine's facts on real compiled kernels
(trip bounds, shapes, refinements), the three fact-driven deletions
(int64 overflow guards, Part bounds predicates, abort-checkpoint
coalescing), the pipeline gating knobs, the verifier's
``analysis.fact`` consistency rules with the ``analysis.bad_fact``
corruption, the template-JIT unchecked-op mask, and the ``--stats``
"checks elided" one-liner.
"""

import io

import pytest

from repro.analyze.dataflow import (
    COALESCE_TRIP_LIMIT,
    INT64_MAX,
    INT64_MIN,
    FactMap,
    Interval,
    analyze_function,
    dead_assignments,
)
from repro.compiler.options import CompilerOptions
from repro.compiler.pipeline import CompilerPipeline
from repro.mexpr import parse


@pytest.fixture(autouse=True)
def _no_cache(monkeypatch):
    """Every test compiles fresh — never through the artifact cache."""
    monkeypatch.setenv("REPRO_ARTIFACT_CACHE", "off")


#: Figure-2-style loop kernels: a bounded accumulation (counter-increment
#: overflow guard + abort checkpoint elide) and a bounded array sweep
#: (Part bounds predicate elides too)
OVERFLOW_KERNEL = (
    'Function[{Typed[x, "MachineInteger"]},'
    ' Module[{a = 0}, Do[a = a + j, {j, 100}]; a]]'
)
BOUNDS_KERNEL = (
    'Function[{Typed[x, "MachineInteger"]},'
    ' Module[{v = {1, 2, 3, 4, 5}, a = 0},'
    ' Do[a = a + v[[j]], {j, 5}]; a]]'
)


def compile_kernel(source: str, **changes):
    options = CompilerOptions(
        dataflow=True, elide_checks=True, index_check_elision=True,
    ).with_(**changes)
    pipeline = CompilerPipeline(options=options)
    program = pipeline.compile_program(parse(source))
    return pipeline, program


def main_function(program):
    return program.functions[program.main]


class TestIntervalDomain:
    def test_constants_and_membership(self):
        three = Interval.const(3)
        assert three.is_constant and three.contains(3)
        assert not three.contains(4)
        assert Interval.top().is_top
        assert Interval(5, 2).is_empty

    def test_add_subtract(self):
        a, b = Interval(1, 4), Interval(10, 20)
        assert (a.add(b).lo, a.add(b).hi) == (11, 24)
        assert (b.subtract(a).lo, b.subtract(a).hi) == (6, 19)
        unbounded = Interval(0, None).add(a)
        assert unbounded.lo == 1 and unbounded.hi is None

    def test_multiply_tracks_sign_corners(self):
        a, b = Interval(-3, 2), Interval(-5, 7)
        product = a.multiply(b)
        corners = [x * y for x in (-3, 2) for y in (-5, 7)]
        assert product.lo == min(corners) and product.hi == max(corners)

    def test_fits_and_clamp(self):
        assert Interval(INT64_MIN, INT64_MAX).fits_int64()
        assert not Interval(0, INT64_MAX + 1).fits_int64()
        assert not Interval(0, None).fits_int64()
        clamped = Interval(None, INT64_MAX + 9).clamp_int64()
        assert clamped.lo == INT64_MIN and clamped.hi == INT64_MAX

    def test_widen_jumps_to_unbounded(self):
        grown = Interval(0, 5).widen(Interval(0, 6))
        assert grown.lo == 0 and grown.hi is None
        stable = Interval(0, 5).widen(Interval(1, 5))
        assert (stable.lo, stable.hi) == (0, 5)  # no growth, no widening

    def test_union_intersect(self):
        union = Interval(0, 3).union(Interval(10, 12))
        assert (union.lo, union.hi) == (0, 12)
        meet = Interval(0, 10).intersect(Interval(5, 99))
        assert (meet.lo, meet.hi) == (5, 10)


class TestEngineFacts:
    def test_bounded_loop_facts(self):
        _, program = compile_kernel(OVERFLOW_KERNEL, elide_checks=False)
        facts = analyze_function(main_function(program))
        bounds = [
            loop.trip_bound for loop in facts.loops.values()
            if loop.trip_bound is not None
        ]
        assert 100 in bounds
        counts = facts.fact_counts()
        assert counts["intervals"] > 0
        assert counts["bounded_loops"] >= 1

    def test_shape_facts_for_literal_tensor(self):
        _, program = compile_kernel(BOUNDS_KERNEL, elide_checks=False)
        facts = analyze_function(main_function(program))
        lengths = [shape.length() for shape in facts.shapes.values()]
        assert 5 in lengths

    def test_fact_map_attached_to_metadata(self):
        _, program = compile_kernel(OVERFLOW_KERNEL)
        fact_map = program.metadata["dataflow"]
        assert isinstance(fact_map, FactMap)
        summary = fact_map.summary()
        assert summary  # one entry per function
        assert all("intervals" in counts for counts in summary.values())

    def test_o0_skips_dataflow_entirely(self):
        pipeline, program = compile_kernel(
            OVERFLOW_KERNEL, optimization_level=0,
        )
        assert "dataflow" not in program.metadata
        assert "dataflow" not in pipeline.pass_report()

    def test_dataflow_off_knob(self):
        pipeline, program = compile_kernel(OVERFLOW_KERNEL, dataflow=False)
        assert "dataflow" not in program.metadata
        info = main_function(program).information
        assert "OverflowChecksElided" not in info


class TestCheckElision:
    def test_overflow_guard_elided_in_bounded_loop(self):
        _, program = compile_kernel(OVERFLOW_KERNEL)
        info = main_function(program).information
        assert info["OverflowChecksElided"] >= 1

    def test_part_bounds_elided_with_proven_range(self):
        _, program = compile_kernel(BOUNDS_KERNEL)
        info = main_function(program).information
        assert info["IndexChecksElided"] >= 1

    def test_checkpoint_coalesced_in_bounded_loop(self):
        _, program = compile_kernel(OVERFLOW_KERNEL)
        info = main_function(program).information
        assert info["CheckpointsCoalesced"] == 1
        (bound,) = info["CoalescedHeaders"].values()
        assert bound == 100
        assert bound <= COALESCE_TRIP_LIMIT

    def test_elide_off_keeps_every_check(self):
        _, program = compile_kernel(OVERFLOW_KERNEL, elide_checks=False)
        info = main_function(program).information
        assert "OverflowChecksElided" not in info
        assert "CoalescedHeaders" not in info

    def test_elided_sites_carry_justification(self):
        from repro.compiler.wir.instructions import CallPrimitiveInstr

        _, program = compile_kernel(BOUNDS_KERNEL)
        justifications = set()
        for block in main_function(program).blocks.values():
            for instruction in block.instructions:
                if isinstance(instruction, CallPrimitiveInstr):
                    mark = instruction.properties.get("elided_check")
                    if mark:
                        justifications.add(mark)
        assert "int64-overflow" in justifications
        assert {"part-bounds", "part-positive"} & justifications

    def test_results_identical_with_and_without_elision(self):
        from repro.compiler import FunctionCompile

        for kernel, expected in (
            (OVERFLOW_KERNEL, 5050), (BOUNDS_KERNEL, 15),
        ):
            for elide in (True, False):
                options = CompilerOptions(
                    dataflow=True, elide_checks=elide,
                    index_check_elision=elide,
                )
                assert FunctionCompile(kernel, options=options)(0) == expected

    def test_pass_report_counts_elisions(self):
        pipeline, _ = compile_kernel(BOUNDS_KERNEL)
        report = pipeline.pass_report()
        assert report["dataflow"]["facts"] > 0
        assert report["check-elision"]["elided"] >= 2
        assert report["checkpoint-coalescing"]["elided"] == 1

    def test_observe_counters_emitted(self):
        from repro.observe import with_tracing

        with with_tracing() as tracer:
            compile_kernel(BOUNDS_KERNEL)
        counters = tracer.metrics.as_dict()["counters"]
        assert counters["analysis.checks_elided.int64"] >= 1
        assert counters["analysis.checks_elided.bounds"] >= 1
        assert counters["analysis.checks_elided.checkpoints"] == 1


class TestFactConsistency:
    """The verifier's ``analysis.fact`` rules: every elided check must be
    independently re-provable; a planted fake fact is caught by name."""

    def test_real_elided_function_verifies_cleanly(self):
        from repro.analyze import verify_function

        _, program = compile_kernel(BOUNDS_KERNEL)
        assert verify_function(main_function(program)) == []

    def test_unchecked_without_justification_flagged(self):
        from repro.analyze import verify_function
        from repro.compiler.wir.instructions import CallPrimitiveInstr

        _, program = compile_kernel(BOUNDS_KERNEL)
        function = main_function(program)
        for block in function.blocks.values():
            for instruction in block.instructions:
                if isinstance(instruction, CallPrimitiveInstr) and (
                    instruction.properties.get("elided_check")
                ):
                    del instruction.properties["elided_check"]
        found = verify_function(function)
        assert any(d.invariant == "analysis.fact" for d in found)

    def test_phantom_coalesced_header_flagged(self):
        from repro.analyze import verify_function

        _, program = compile_kernel(OVERFLOW_KERNEL)
        function = main_function(program)
        headers = dict(function.information["CoalescedHeaders"])
        headers["no_such_block(9)"] = 4
        function.information["CoalescedHeaders"] = headers
        found = verify_function(function)
        assert any(d.invariant == "analysis.fact" for d in found)

    def test_bad_fact_corruption_caught_and_attributed(self):
        """``analysis.bad_fact`` swaps a checked op the facts do *not*
        justify and plants a fake justification; verify-each must blame
        the corrupting pass by name."""
        from repro.errors import VerificationError
        from repro.testing import corrupt_ir_pass

        source = (
            'Function[{Typed[x, "MachineInteger"]},'
            ' Module[{a = 0, i = 1},'
            ' While[i <= x, a = a + i; i = i + 1]; a]]'
        )
        pipeline = CompilerPipeline(
            options=CompilerOptions(verify_ir="each"),
            user_passes=[corrupt_ir_pass("analysis.bad_fact", stage="twir")],
        )
        with pytest.raises(VerificationError) as failure:
            pipeline.compile_program(parse(source))
        assert failure.value.pass_name == (
            "user:corrupt-ir[analysis.bad_fact]"
        )
        assert any(
            d.invariant == "analysis.fact"
            for d in failure.value.diagnostics
        ), failure.value.diagnostics

    def test_verify_each_passes_on_honest_pipeline(self):
        compile_kernel(BOUNDS_KERNEL, verify_ir="each")


class TestTemplateMask:
    BODY = "Module[{a = 0}, Do[a = a + i*i, {i, 100}]; a]"

    def test_mask_marks_bounded_multiply(self):
        from repro.template_jit.analysis import unchecked_mask

        mask = unchecked_mask(parse(self.BODY))
        assert mask.total >= 2  # the multiply and the accumulator add
        assert len(mask) >= 1  # i*i with i in [1,100] is provably safe
        assert mask.bits != 0
        assert len(mask) < mask.total  # the accumulator stays checked

    def test_reassigned_local_stays_unknown(self):
        from repro.template_jit.analysis import unchecked_mask

        body = "Module[{a = 1}, a = a * a; a + a]"
        assert len(unchecked_mask(parse(body))) == 0

    def test_knob_gates_the_stitcher(self, monkeypatch):
        from repro.template_jit import compile_template_function

        specs = parse("{{x, _Integer}}")
        body = parse(self.BODY)
        monkeypatch.setenv("REPRO_ELIDE_CHECKS", "1")
        elided = compile_template_function(specs, body)
        monkeypatch.setenv("REPRO_ELIDE_CHECKS", "0")
        checked = compile_template_function(specs, body)
        assert elided.unchecked_ops >= 1
        assert checked.unchecked_ops == 0 and checked.unchecked_bitmask == 0
        assert elided.source.count("_ci(") < checked.source.count("_ci(")
        # both stitches compute the same sum of squares
        assert elided(0) == checked(0) == sum(i * i for i in range(1, 101))


class TestLivenessHelper:
    def test_dead_store_found(self):
        statements = [
            ("a", set()),          # a = <literal>     — dead, rewritten below
            ("a", set()),          # a = <literal>
            ("b", {"a"}),          # b = a
            (None, {"b"}),         # use b
        ]
        dead, live_in = dead_assignments(statements)
        assert dead == [0]
        assert "b" not in live_in

    def test_final_store_dead_when_never_read(self):
        statements = [("a", set()), (None, {"a"}), ("a", {"a"})]
        dead, _ = dead_assignments(statements)
        assert dead == [2]

    def test_live_after_keeps_trailing_store(self):
        statements = [("a", set())]
        dead, _ = dead_assignments(statements, live_after={"a"})
        assert dead == []


class TestStatsOneLiner:
    def test_cli_reports_elision_totals(self):
        from repro.__main__ import main

        out = io.StringIO()
        status = main(
            [
                "--stats",
                "-e",
                "f = FunctionCompile[Function[{Typed[x, "
                '"MachineInteger"]}, Module[{a = 0},'
                " Do[a = a + j, {j, 50}]; a]]]",
                "-e", "f[0]",
            ],
            output=out,
        )
        assert status == 0
        text = out.getvalue()
        assert "Out[2]= 1275" in text
        assert "checks elided:" in text
        assert "int64" in text and "checkpoints" in text
