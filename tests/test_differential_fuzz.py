"""Differential fuzzing: randomly generated loop programs must agree across
interpreter, bytecode VM, and new compiler.

The generator builds statement programs over two integer locals and a
bounded counted loop, so every program terminates and stays in the common
subset of all three tiers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode import compile_function
from repro.compiler import FunctionCompile
from repro.engine import Evaluator
from repro.mexpr import parse

_SMALL = st.integers(min_value=-20, max_value=20)

_expression = st.one_of(
    _SMALL.map(str),
    st.just("a"),
    st.just("b"),
    st.just("x"),
    st.just("i"),
    st.tuples(st.sampled_from(["a", "b", "x", "i"]), _SMALL).map(
        lambda t: f"({t[0]} + {t[1]})"
    ),
    st.tuples(st.sampled_from(["a", "b"]), st.sampled_from(["x", "i"])).map(
        lambda t: f"({t[0]} * {t[1]})"
    ),
    st.tuples(st.sampled_from(["a", "b", "x"]),
              st.integers(min_value=2, max_value=9)).map(
        lambda t: f"Mod[{t[0]}, {t[1]}]"
    ),
    st.sampled_from(["a", "b", "x"]).map(lambda s: f"Abs[{s}]"),
    st.tuples(st.just("a"), st.just("b")).map(
        lambda t: f"Max[{t[0]}, {t[1]}]"
    ),
)

_condition = st.one_of(
    st.tuples(_expression, _expression).map(lambda t: f"{t[0]} < {t[1]}"),
    st.tuples(_expression, _SMALL).map(lambda t: f"{t[0]} > {t[1]}"),
    _expression.map(lambda e: f"EvenQ[{e}]"),
)

_statement = st.one_of(
    st.tuples(st.sampled_from(["a", "b"]), _expression).map(
        lambda t: f"{t[0]} = {t[1]}"
    ),
    st.tuples(st.sampled_from(["a", "b"]), _condition, _expression,
              _expression).map(
        lambda t: f"{t[0]} = If[{t[1]}, {t[2]}, {t[3]}]"
    ),
)


@st.composite
def _programs(draw):
    prologue = [draw(_statement) for _ in range(draw(
        st.integers(min_value=0, max_value=2)
    ))]
    loop_body = [draw(_statement) for _ in range(draw(
        st.integers(min_value=1, max_value=3)
    ))]
    trips = draw(st.integers(min_value=0, max_value=6))
    epilogue = draw(_statement)
    body = "; ".join(loop_body)
    statements = [
        "a = 1", "b = 2", *prologue,
        f"i = 1",
        f"While[i <= {trips}, {body}; i = i + 1]",
        epilogue,
        "a + 1000 * b",
    ]
    return "Module[{a = 0, b = 0, i = 0}, " + "; ".join(statements) + "]"


class TestDifferentialFuzz:
    @given(_programs(), st.integers(min_value=-10, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_three_tiers_agree(self, body, x):
        evaluator = Evaluator()
        interpreted = evaluator.run(
            f"Function[{{x}}, {body}][{x}]"
        ).to_python()

        compiled = FunctionCompile(
            f'Function[{{Typed[x, "MachineInteger"]}}, {body}]'
        )
        assert compiled(x) == interpreted, compiled.generated_source

        bytecode = compile_function(
            parse("{{x, _Integer}}"), parse(body), evaluator
        )
        assert bytecode(x) == interpreted

    @given(_programs(), st.integers(min_value=-5, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_wvm_target_agrees(self, body, x):
        evaluator = Evaluator()
        interpreted = evaluator.run(
            f"Function[{{x}}, {body}][{x}]"
        ).to_python()
        wvm = FunctionCompile(
            f'Function[{{Typed[x, "MachineInteger"]}}, {body}]',
            TargetSystem="WVM",
        )
        assert wvm(x) == interpreted


class TestPhiParallelCopies:
    """Regression: loop-carried phis whose sources are other phis need
    parallel-copy staging in every backend (found by the fuzzer)."""

    BODY = ('Module[{a = 0, b = 0, i = 0}, a = 1; b = 2; i = 1;'
            ' While[i <= 3, a = i; i = i + 1]; a + 1000 * b]')
    SRC = f'Function[{{Typed[x, "MachineInteger"]}}, {BODY}]'

    def test_python_backend(self):
        assert FunctionCompile(self.SRC)(0) == 2003

    def test_wvm_backend(self):
        assert FunctionCompile(self.SRC, TargetSystem="WVM")(0) == 2003

    def test_interpreter_oracle(self):
        evaluator = Evaluator()
        assert evaluator.run(
            f"Function[{{x}}, {self.BODY}][0]"
        ).to_python() == 2003


_tensor_index = st.one_of(
    st.integers(min_value=1, max_value=5).map(str),
    st.just("Mod[i, 5] + 1"),
    st.just("Mod[a, 5] + 1"),
    st.just("Mod[x + i, 5] + 1"),
)
_tensor_scalar = st.one_of(
    _SMALL.map(str), st.just("a"), st.just("i"), st.just("x"),
    _tensor_index.map(lambda ix: f"t[[{ix}]]"),
)
_tensor_statement = st.one_of(
    st.tuples(_tensor_index, _tensor_scalar).map(
        lambda p: f"t[[{p[0]}]] = {p[1]}"
    ),
    st.tuples(_tensor_scalar, _tensor_scalar).map(
        lambda p: f"a = {p[0]} + {p[1]}"
    ),
)


@st.composite
def _tensor_programs(draw):
    body = [draw(_tensor_statement)
            for _ in range(draw(st.integers(min_value=1, max_value=3)))]
    trips = draw(st.integers(min_value=0, max_value=5))
    statements = "; ".join(body)
    return ("Module[{t = ConstantArray[0, 5], a = 1, i = 1}, "
            f"While[i <= {trips}, {statements}; i = i + 1]; "
            "a + 100*t[[1]] + 1000*t[[5]] + Total[t]]")


class TestTensorFuzz:
    """Mutating-tensor programs: exercises PartSet rebinding, copy
    insertion, and index-check elision across the tiers."""

    @given(_tensor_programs(), st.integers(min_value=-5, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_three_tiers_agree(self, body, x):
        evaluator = Evaluator()
        interpreted = evaluator.run(
            f"Function[{{x}}, {body}][{x}]"
        ).to_python()
        compiled = FunctionCompile(
            f'Function[{{Typed[x, "MachineInteger"]}}, {body}]'
        )
        assert compiled(x) == interpreted
        bytecode = compile_function(
            parse("{{x, _Integer}}"), parse(body), evaluator
        )
        assert bytecode(x) == interpreted
