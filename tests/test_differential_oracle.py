"""The differential oracle (repro.analyze.differ): generator determinism,
three-tier agreement, mismatch shrinking, the boundary-value elision
mode (checks elided vs kept), and the CI smoke entry points."""

import pytest

from repro.analyze import (
    DifferentialOracle,
    ElisionOracle,
    run_boundary_differential,
    run_differential,
)
from repro.analyze.differ import (
    _BoundaryGenerator,
    _ElisionError,
    _Generator,
    _TierError,
    BOUNDARY_INTEGERS,
    INT64_MAX,
)
import random


class TestGenerator:
    def test_same_seed_same_programs(self):
        generator_a = _Generator(random.Random(7))
        generator_b = _Generator(random.Random(7))
        for _ in range(10):
            spec_a, spec_b = generator_a.spec(), generator_b.spec()
            assert spec_a.body() == spec_b.body()
            assert generator_a.argument(spec_a.kind) == (
                generator_b.argument(spec_b.kind)
            )

    def test_programs_terminate_quickly(self):
        generator = _Generator(random.Random(3))
        for _ in range(20):
            spec = generator.spec()
            assert 0 <= spec.trips <= 6
            assert spec.statement_count() >= 2


class TestComparison:
    def test_integers_compared_exactly(self):
        assert DifferentialOracle.agree(3, 3)
        assert not DifferentialOracle.agree(3, 4)

    def test_reals_compared_with_tolerance(self):
        assert DifferentialOracle.agree(1.0, 1.0 + 1e-12)
        assert not DifferentialOracle.agree(1.0, 1.001)

    def test_matching_errors_agree(self):
        left = _TierError(ZeroDivisionError("x"))
        right = _TierError(ZeroDivisionError("y"))
        assert DifferentialOracle.agree(left, right)
        assert not DifferentialOracle.agree(left, 3)


class TestOracle:
    def test_small_run_agrees(self):
        report = DifferentialOracle(seed=11).run(count=15)
        assert report.ok(), [m.to_dict() for m in report.mismatches]
        assert report.attempted == 15
        assert report.agreed == 15

    def test_time_budget_stops_early(self):
        report = DifferentialOracle(seed=1).run(
            count=10_000, time_budget=0.5
        )
        assert report.attempted < 10_000

    def test_report_serializes(self):
        report = DifferentialOracle(seed=2).run(count=3)
        payload = report.to_dict()
        assert payload["seed"] == 2
        assert payload["attempted"] == 3
        assert "agree across 4 tiers" in report.summary()


class _BrokenCompiledTier(DifferentialOracle):
    """A deliberately wrong compiled tier: off by one on integer kernels."""

    def _run_compiled(self, kind, body, argument):
        result = super()._run_compiled(kind, body, argument)
        if kind == "integer" and isinstance(result, int):
            return result + 1
        return result


class TestShrinking:
    def test_mismatch_detected_and_shrunk(self):
        oracle = _BrokenCompiledTier(seed=5)
        report = oracle.run(count=12)
        assert report.mismatches
        mismatch = next(
            m for m in report.mismatches if m.kind == "integer"
        )
        assert mismatch.shrunk_body is not None
        # the shrunk reproducer must still disagree...
        assert not oracle.consistent(mismatch.shrunk_results)
        # ...and must be no larger than the original program
        assert len(mismatch.shrunk_body) <= len(mismatch.body)

    def test_artifacts_written(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DIFF_ARTIFACTS", str(tmp_path))
        monkeypatch.setenv("REPRO_DIFF_COUNT", "8")
        import repro.analyze.differ as differ_module

        monkeypatch.setattr(
            differ_module, "DifferentialOracle", _BrokenCompiledTier
        )
        report = differ_module.run_differential(seed=5)
        if report.mismatches:  # guaranteed with the broken tier
            files = list(tmp_path.glob("mismatch-*.json"))
            assert len(files) == len(report.mismatches)


@pytest.fixture()
def _no_cache(monkeypatch):
    """Keep oracle compiles out of the persistent artifact cache."""
    monkeypatch.setenv("REPRO_ARTIFACT_CACHE", "off")


class TestBoundaryGenerator:
    def test_same_seed_same_programs(self):
        generator_a = _BoundaryGenerator(random.Random(9))
        generator_b = _BoundaryGenerator(random.Random(9))
        for _ in range(10):
            assert generator_a.spec().body() == generator_b.spec().body()
            assert generator_a.argument() == generator_b.argument()

    def test_programs_hit_the_boundaries(self):
        """Across a batch, the generator must actually emit INT64 edges,
        empty arrays, and off-by-one indices — the mode's whole point."""
        generator = _BoundaryGenerator(random.Random(0))
        bodies = [generator.spec().body() for _ in range(60)]
        text = "\n".join(bodies)
        assert str(INT64_MAX) in text or str(INT64_MAX - 1) in text
        assert "v = {}" in text  # empty arrays appear
        assert "[[0]]" in text  # below-range index appears

    def test_arguments_are_boundary_biased(self):
        generator = _BoundaryGenerator(random.Random(1))
        arguments = {generator.argument() for _ in range(80)}
        assert arguments & set(BOUNDARY_INTEGERS)


class TestElisionErrors:
    def test_same_class_same_kind_agree(self):
        from repro.errors import WolframRuntimeError

        left = _ElisionError(WolframRuntimeError("PartOutOfRange", "x"))
        right = _ElisionError(WolframRuntimeError("PartOutOfRange", "y"))
        assert left == right

    def test_kind_difference_diverges(self):
        """Stricter than cross-tier agreement: the *classified kind* must
        survive elision, not just the exception class."""
        from repro.errors import WolframRuntimeError

        left = _ElisionError(WolframRuntimeError("PartOutOfRange", "x"))
        right = _ElisionError(WolframRuntimeError("IntegerOverflow", "y"))
        assert left != right
        assert left != _TierError(WolframRuntimeError("PartOutOfRange", "x"))


class _UnsoundProver:
    """Context manager: every interval claims to fit Integer64."""

    def __enter__(self):
        from unittest import mock

        from repro.analyze.dataflow import Interval

        self._patch = mock.patch.object(
            Interval, "fits_int64", lambda self: True
        )
        self._patch.__enter__()
        return self

    def __exit__(self, *exc_info):
        return self._patch.__exit__(*exc_info)


@pytest.mark.usefixtures("_no_cache")
class TestElisionOracle:
    def test_boundary_programs_agree(self):
        report = ElisionOracle(seed=13).run(count=25)
        assert report.ok(), [m.to_dict() for m in report.mismatches]
        assert report.attempted == 25
        assert "checks elided vs kept" in report.summary()

    def test_unsound_prover_is_detected_and_shrunk(self):
        """The sensitivity bar: force ``fits_int64`` to lie and the oracle
        must observe divergence — elided bignum vs trapped overflow."""
        with _UnsoundProver():
            report = ElisionOracle(seed=0).run(count=60)
        assert report.mismatches, "unsound elision went unnoticed"
        mismatch = report.mismatches[0]
        assert mismatch.shrunk_body is not None
        assert len(mismatch.shrunk_body) <= len(mismatch.body)
        with _UnsoundProver():
            oracle = ElisionOracle(seed=0)
            assert not oracle.consistent(
                oracle.run_pair(mismatch.reproducer(), mismatch.argument)
            )

    def test_artifacts_written(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DIFF_ARTIFACTS", str(tmp_path))
        monkeypatch.setenv("REPRO_DIFF_COUNT", "40")
        with _UnsoundProver():
            report = run_boundary_differential(seed=0)
        assert report.mismatches
        files = list(tmp_path.glob("boundary-seed0-*.json"))
        assert len(files) == len(report.mismatches)


@pytest.mark.differential
class TestCiSmoke:
    """The CI ``static-analysis`` job's budgeted fuzz: ≥200 seeded programs
    across all four tiers with zero mismatches (``pytest -m differential``)."""

    def test_two_hundred_programs_agree(self):
        report = run_differential(count=200, seed=0, time_budget=60.0)
        assert report.ok(), [m.to_dict() for m in report.mismatches]
        assert report.attempted >= 200

    def test_alternate_seed_agrees(self):
        report = run_differential(count=100, seed=20260806, time_budget=30.0)
        assert report.ok(), [m.to_dict() for m in report.mismatches]


@pytest.mark.differential
@pytest.mark.usefixtures("_no_cache")
class TestBoundaryCiSmoke:
    """The static-analysis acceptance bar: ≥200 boundary-biased programs,
    elision forced on, zero divergences against the checks-kept build."""

    def test_two_hundred_boundary_programs_agree(self, monkeypatch):
        monkeypatch.setenv("REPRO_ELIDE_CHECKS", "1")
        monkeypatch.setenv("REPRO_DATAFLOW", "1")
        report = run_boundary_differential(
            count=200, seed=0, time_budget=120.0
        )
        assert report.ok(), [m.to_dict() for m in report.mismatches]
        assert report.attempted >= 200

    def test_alternate_seed_agrees(self, monkeypatch):
        monkeypatch.setenv("REPRO_ELIDE_CHECKS", "1")
        report = run_boundary_differential(
            count=100, seed=20260808, time_budget=60.0
        )
        assert report.ok(), [m.to_dict() for m in report.mismatches]
