"""The DownValue dispatch index: discrimination, ordering, invalidation.

The index (`engine/definitions.DownValueIndex`) may only ever *exclude*
rules that provably cannot match; candidate order must equal the original
specificity order; and any mutation of the rule list — including ``Block``'s
snapshot restore — must invalidate it.
"""

import pytest

from repro.engine import Evaluator
from repro.engine.definitions import DownValueIndex
from repro.mexpr import full_form, parse


@pytest.fixture()
def session():
    return Evaluator()


def _index_of(session, name) -> DownValueIndex:
    return session.state.lookup(name).dispatch_index()


class TestDiscrimination:
    def test_literal_rules_bucket_by_first_argument(self, session):
        session.run("f[0] = 100")
        session.run("f[1] = 200")
        session.run("f[n_] := n * 10")
        index = _index_of(session, "f")
        zero_call = parse("f[0]")
        candidates = list(index.candidates(zero_call))
        # f[1] is excluded outright; f[0] and the general rule remain
        assert len(candidates) == 2
        assert full_form(candidates[0].lhs) == "f[0]"
        assert session.run("f[0]").to_python() == 100
        assert session.run("f[1]").to_python() == 200
        assert session.run("f[7]").to_python() == 70

    def test_arity_discrimination(self, session):
        session.run("g[x_] := 1")
        session.run("g[x_, y_] := 2")
        index = _index_of(session, "g")
        assert len(list(index.candidates(parse("g[a]")))) == 1
        assert len(list(index.candidates(parse("g[a, b]")))) == 1
        assert len(list(index.candidates(parse("g[a, b, c]")))) == 0
        assert session.run("g[1]").to_python() == 1
        assert session.run("g[1, 2]").to_python() == 2
        assert full_form(session.run("g[1, 2, 3]")) == "g[1, 2, 3]"

    def test_variadic_rules_are_candidates_at_every_arity(self, session):
        session.run("h[xs__] := Length[{xs}]")
        session.run("h[x_, y_] := 99")
        for call in ("h[a]", "h[a, b]", "h[a, b, c]"):
            assert list(
                _index_of(session, "h").candidates(parse(call))
            ), call
        assert session.run("h[1]").to_python() == 1
        assert session.run("h[1, 2]").to_python() == 99  # specificity wins
        assert session.run("h[1, 2, 3]").to_python() == 3

    def test_structured_literal_first_argument(self, session):
        session.run("p[{1, 2}] = 10")
        session.run("p[x_] := 0")
        assert session.run("p[{1, 2}]").to_python() == 10
        assert session.run("p[{2, 1}]").to_python() == 0
        index = _index_of(session, "p")
        assert len(list(index.candidates(parse("p[{2, 1}]")))) == 1

    def test_conditioned_argument_is_never_excluded(self, session):
        session.run("q[n_ /; n > 10] := 1")
        session.run("q[n_] := 2")
        assert session.run("q[11]").to_python() == 1
        assert session.run("q[5]").to_python() == 2
        index = _index_of(session, "q")
        assert len(list(index.candidates(parse("q[3]")))) == 2

    def test_pattern_first_argument_stays_in_arity_bucket(self, session):
        session.run("r[0, y_] := y")
        session.run("r[x_, y_] := r[x - 1, y + 1]")
        assert session.run("r[3, 0]").to_python() == 3


class TestOrdering:
    def test_candidates_preserve_specificity_order(self, session):
        # insertion order scrambled; specificity sorting puts literals first
        session.run("s[n_] := -1")
        session.run("s[0] = 10")
        session.run("s[1] = 11")
        rules = [full_form(dv.lhs) for dv in session.state.lookup("s").down_values]
        candidates = [
            full_form(dv.lhs)
            for dv in _index_of(session, "s").candidates(parse("s[0]"))
        ]
        # candidate order is a subsequence of the full rule order
        positions = [rules.index(c) for c in candidates]
        assert positions == sorted(positions)
        assert candidates[0] == "s[0]"

    def test_merge_across_buckets_respects_rule_order(self, session):
        session.run("t[0] = 1")           # literal bucket
        session.run("t[n_Integer] := 2")  # arity bucket
        session.run("t[xs__] := 3")       # general bucket
        candidates = [
            full_form(dv.lhs)
            for dv in _index_of(session, "t").candidates(parse("t[0]"))
        ]
        rules = [full_form(dv.lhs) for dv in session.state.lookup("t").down_values]
        assert candidates == rules  # all three apply, in order
        assert session.run("t[0]").to_python() == 1
        assert session.run("t[5]").to_python() == 2
        assert session.run("t[1.5]").to_python() == 3


class TestInvalidation:
    def test_replacing_a_rule_in_place_invalidates(self, session):
        session.run("u[0] = 1")
        session.run("u[n_] := 2")
        first = _index_of(session, "u")
        session.run("u[0] = 42")  # identical lhs: replaced in place
        second = _index_of(session, "u")
        assert second is not first
        assert session.run("u[0]").to_python() == 42

    def test_clear_invalidates(self, session):
        session.run("v[0] = 1")
        session.run("Clear[v]")
        assert full_form(session.run("v[0]")) == "v[0]"
        session.run("v[0] = 2")
        assert session.run("v[0]").to_python() == 2

    def test_block_restore_invalidates(self, session):
        session.run("w[n_] := 1")
        assert session.run("w[5]").to_python() == 1
        result = session.run("Block[{w}, w[n_] := 2; w[5]]")
        assert result.to_python() == 2
        # the snapshot restore swapped the rule list; the index must follow
        assert session.run("w[5]").to_python() == 1

    def test_index_is_cached_until_rules_change(self, session):
        session.run("x0[n_] := n")
        first = _index_of(session, "x0")
        assert _index_of(session, "x0") is first
        session.run("x0[0] = 9")
        assert _index_of(session, "x0") is not first


class TestSpecificityCache:
    def test_specificity_memoized_on_down_values(self, session):
        session.run("y0[0] = 1")
        session.run("y0[n_] := 2")
        for down_value in session.state.lookup("y0").down_values:
            assert down_value.specificity is not None

    def test_thousand_rule_table_dispatches_correctly(self, session):
        for index in range(300):
            session.run(f"big[{index}] = {index * index}")
        session.run("big[n_] := -1")
        assert session.run("big[7]").to_python() == 49
        assert session.run("big[299]").to_python() == 299 * 299
        assert session.run("big[300]").to_python() == -1
        index = _index_of(session, "big")
        # literal dispatch looks at 2 candidates, not 301
        assert len(list(index.candidates(parse("big[250]")))) == 2
