"""Edge cases and failure injection across the stack."""

import pytest

from repro.compiler import FunctionCompile
from repro.errors import (
    CompilerError,
    TypeInferenceError,
    WolframRuntimeError,
)


class TestWVMTargetSystem:
    def test_function_compile_targets_wvm(self):
        """F4: TargetSystem -> WVM runs the program on the legacy VM."""
        compiled = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{s = 0, i = 1}, While[i <= n, s = s + i; i = i + 1];'
            ' s]]',
            TargetSystem="WVM",
        )
        from repro.bytecode import CompiledFunction

        assert isinstance(compiled, CompiledFunction)
        assert compiled(100) == 5050

    def test_wvm_target_agrees_with_python_target(self):
        src = ('Function[{Typed[n, "MachineInteger"]},'
               ' Total[Table[i * i, {i, 1, n}]]]')
        python_tier = FunctionCompile(src)
        wvm_tier = FunctionCompile(src, TargetSystem="WVM")
        assert python_tier(7) == wvm_tier(7) == 140


class TestCompileErrors:
    def test_non_function_input(self):
        with pytest.raises(CompilerError):
            FunctionCompile("1 + 1")

    def test_slot_function_needs_annotations(self):
        with pytest.raises(CompilerError):
            FunctionCompile("(# + 1)&")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError):
            FunctionCompile(
                'Function[{Typed[x, "MachineInteger"]}, x]',
                TotallyBogusOption=True,
            )

    def test_unknown_function_reports_name(self):
        with pytest.raises(TypeInferenceError) as info:
            FunctionCompile(
                'Function[{Typed[x, "MachineInteger"]}, Zeta[x, x]]'
            )
        assert "Zeta" in str(info.value)

    def test_arity_mismatch_against_self_signature(self):
        # an unknown callee whose arity differs from ours is not a self-call
        with pytest.raises(TypeInferenceError):
            FunctionCompile(
                'Function[{Typed[x, "MachineInteger"]}, mystery[x, x, x]]'
            )

    def test_unbound_variable(self):
        from repro.errors import BindingError

        with pytest.raises(BindingError):
            FunctionCompile(
                'Function[{Typed[x, "MachineInteger"]}, x + loose]'
            )


class TestRuntimeEdges:
    def test_empty_tensor_total(self):
        f = FunctionCompile(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Integer64", 1]]]},'
            ' Total[v]]'
        )
        assert f([]) == 0

    def test_zero_length_table(self):
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Length[Table[i, {i, 1, n}]]]'
        )
        assert f(0) == 0
        assert f(5) == 5

    def test_zero_trip_loop(self):
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{s = 100, i = 1}, While[i <= n, s = 0; i = i + 1]; s]]'
        )
        assert f(0) == 100

    def test_deeply_nested_conditionals(self):
        f = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"]},'
            ' If[x > 100, 4, If[x > 10, 3, If[x > 1, 2, If[x > 0, 1, 0]]]]]'
        )
        assert [f(v) for v in (0, 1, 5, 50, 500)] == [0, 1, 2, 3, 4]

    def test_int64_boundary_values(self):
        f = FunctionCompile('Function[{Typed[x, "MachineInteger"]}, x]')
        assert f(2 ** 63 - 1) == 2 ** 63 - 1
        assert f(-(2 ** 63)) == -(2 ** 63)
        with pytest.raises(WolframRuntimeError):
            f(2 ** 63)  # out of Integer64 at the boundary (F2, no engine)

    def test_negative_zero_real(self):
        f = FunctionCompile('Function[{Typed[x, "Real64"]}, x + 0.0]')
        assert f(-0.0) == 0.0

    def test_unicode_strings(self):
        f = FunctionCompile(
            'Function[{Typed[s, "String"]}, StringLength[s]]'
        )
        assert f("héllo wörld") == 11

    def test_utf8_bytes_of_multibyte(self):
        f = FunctionCompile(
            'Function[{Typed[s, "String"]},'
            ' Length[Native`UTF8Bytes[s]]]'
        )
        assert f("é") == 2

    def test_large_constant_folding_does_not_overflow_compile(self):
        # folding 2^62 * 4 would overflow; must defer to run time
        f = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"]},'
            ' If[x > 0, x, 4611686018427387904 * 4]]'
        )
        assert f(5) == 5

    def test_bool_not_accepted_as_integer(self):
        f = FunctionCompile('Function[{Typed[x, "MachineInteger"]}, x]')
        with pytest.raises(WolframRuntimeError):
            f(True)


class TestEvaluatorEdges:
    def test_sequence_splices_into_arguments(self, run):
        assert run("f[Sequence[1, 2], 3]") == "f[1, 2, 3]"

    def test_one_identity_plus(self, run):
        assert run("Plus[7]") == "7"
        assert run("Times[7]") == "7"

    def test_empty_plus_times(self, run):
        assert run("Plus[]") == "0"
        assert run("Times[]") == "1"

    def test_nested_hold_partial(self, run):
        assert run("Hold[Hold[1 + 1]]") == "Hold[Hold[Plus[1, 1]]]"

    def test_flat_through_holds(self, run):
        assert run("Plus[1, Plus[2, Plus[3, 4]]]") == "10"

    def test_listable_scalar_vector_mix(self, run):
        assert run("{1, 2, 3} ^ 2") == "List[1, 4, 9]"

    def test_runaway_recursion_guard(self):
        """Self-rewriting definitions stop at a limit instead of hanging —
        the top-level rewrite chain trips $IterationLimit, nested growth
        trips $RecursionLimit."""
        from repro.engine import Evaluator
        from repro.errors import (
            WolframIterationError,
            WolframRecursionError,
        )
        from repro.mexpr import parse

        evaluator = Evaluator(recursion_limit=64, iteration_limit=128)
        with pytest.raises((WolframIterationError, WolframRecursionError)):
            evaluator.evaluate(parse("f[x_] := f[x + 1]; f[0]"))
        with pytest.raises((WolframIterationError, WolframRecursionError)):
            evaluator.evaluate(parse("g[x_] := g[g[x]]; g[0]"))
