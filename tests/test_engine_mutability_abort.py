"""Mutability semantics (F5, §3) and abortable evaluation (F3, §3)."""

import threading
import time

import pytest

from repro.engine import Evaluator
from repro.mexpr import parse


class TestMutabilitySemantics:
    def test_symbols_are_mutable(self, run):
        """§3 F5: a="foo"; a="bar" rebinds the symbol."""
        assert run('a = "foo"; a = "bar"; a') == '"bar"'

    def test_part_mutation_through_symbol(self, run):
        """§3 F5: a={1,2,3}; a[[3]]=-20; a -> {1,2,-20}."""
        assert run("a = {1, 2, 3}; a[[3]] = -20; a") == "List[1, 2, -20]"

    def test_mutation_does_not_affect_other_references(self, run):
        """§3 F5: a={1,2,3}; b=a; a[[3]]=-20; b -> {1,2,3}."""
        assert run("a = {1, 2, 3}; b = a; a[[3]] = -20; b") == "List[1, 2, 3]"

    def test_expressions_are_immutable(self, run):
        """§3 F5: operations that modify expressions operate on a copy."""
        assert run(
            '({#, StringReplace[#, "foo" -> "grok"]}&)["foobar"]'
        ) == 'List["foobar", "grokbar"]'

    def test_reverse_does_not_mutate(self, run):
        assert run("lst = {1, 2, 3}; Reverse[lst]; lst") == "List[1, 2, 3]"

    def test_sort_does_not_mutate(self, run):
        assert run("lst = {3, 1, 2}; Sort[lst]; lst") == "List[3, 1, 2]"


class TestAbort:
    def test_abort_builtin_returns_aborted(self, evaluator):
        result = evaluator.evaluate_protected(parse("1 + Abort[]"))
        assert result == parse("$Aborted")

    def test_check_abort_recovers(self, run):
        assert run("CheckAbort[Abort[], 42]") == "42"

    def test_abort_interrupt_from_another_thread(self):
        """§3 F3: the infinite loop aborts without killing the session, and
        the session state remains usable (i was mutated by the aborted
        computation, as the paper specifies)."""
        evaluator = Evaluator()
        program = parse("i = 0; While[True, If[i > 3, i--, i++]]")
        outcome = {}

        def evaluate():
            outcome["result"] = evaluator.evaluate_protected(program)

        worker = threading.Thread(target=evaluate)
        worker.start()
        time.sleep(0.15)
        evaluator.request_abort()
        worker.join(timeout=10)
        assert not worker.is_alive(), "abort did not stop the loop"
        assert outcome["result"] == parse("$Aborted")
        # the session survives and i holds an intermediate value
        i_value = evaluator.run("i").to_python()
        assert isinstance(i_value, int)
        assert evaluator.run("1 + 1").to_python() == 2

    def test_abort_flag_cleared_after_protected_eval(self, evaluator):
        evaluator.request_abort()
        result = evaluator.evaluate_protected(parse("While[True]"))
        assert result == parse("$Aborted")
        assert not evaluator.abort_pending()
        assert evaluator.run("2 + 2").to_python() == 4

    def test_compiled_code_abort(self):
        """F3 for the new compiler: generated code polls the host's flag."""
        from repro.compiler import FunctionCompile

        evaluator = Evaluator()
        spin = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{i = 0}, While[i < n, i = i + 1;'
            '  If[i == 999999999, i = 0]]; i]]',
            evaluator=evaluator,
        )
        from repro.errors import WolframAbort

        outcome = {}

        def evaluate():
            try:
                outcome["result"] = spin(2_000_000_000)
            except WolframAbort:
                outcome["result"] = "aborted"

        worker = threading.Thread(target=evaluate)
        worker.start()
        time.sleep(0.2)
        evaluator.request_abort()
        worker.join(timeout=10)
        assert not worker.is_alive(), "compiled abort check did not fire"
        assert outcome["result"] == "aborted"
        evaluator.clear_abort()

    def test_bytecode_abort(self):
        """F3 for the bytecode VM: aborts poll on backward jumps."""
        from repro.bytecode import compile_function
        from repro.errors import WolframAbort

        evaluator = Evaluator()
        spin = compile_function(
            parse("{{n, _Integer}}"),
            parse("Module[{i = 0}, While[i < n, i++]; i]"),
            evaluator,
        )
        outcome = {}

        def evaluate():
            try:
                outcome["result"] = spin(2_000_000_000)
            except WolframAbort:
                outcome["result"] = "aborted"

        worker = threading.Thread(target=evaluate)
        worker.start()
        time.sleep(0.2)
        evaluator.request_abort()
        worker.join(timeout=15)
        assert not worker.is_alive()
        assert outcome["result"] == "aborted"
        evaluator.clear_abort()

    def test_abort_inhibited_code_runs_to_completion(self):
        """AbortHandling -> False removes the checks (§6's knob)."""
        from repro.compiler import FunctionCompile

        evaluator = Evaluator()
        fn = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{i = 0}, While[i < n, i = i + 1]; i]]',
            evaluator=evaluator,
            AbortHandling=False,
        )
        assert "_check_abort" not in fn.generated_source
        evaluator.request_abort()
        try:
            assert fn(1000) == 1000  # no poll, no abort
        finally:
            evaluator.clear_abort()
