"""Symbolic differentiation and FindRoot (§2.1's FindRoot story)."""

import math

import pytest

from repro.engine import Evaluator
from repro.engine.numerics import differentiate, newton_root
from repro.mexpr import MSymbol, parse


class TestDifferentiate:
    @pytest.mark.parametrize("expression,variable,expected", [
        ("x", "x", "1"),
        ("y", "x", "0"),
        ("5", "x", "0"),
        ("x^2", "x", "2*x"),
        ("x^3", "x", "3*x^2"),
        ("Sin[x]", "x", "Cos[x]"),
        ("Exp[x]", "x", "Exp[x]"),
    ])
    def test_simple(self, evaluator, expression, variable, expected):
        derivative = evaluator.evaluate(
            differentiate(parse(expression), MSymbol(variable))
        )
        assert derivative == evaluator.evaluate(parse(expected))

    def test_paper_equation(self, evaluator, run):
        """D[Sin[x] + E^x, x] == Cos[x] + E^x (§2.2's implicit compile)."""
        assert run("D[Sin[x] + E^x, x]") == "Plus[Cos[x], Power[E, x]]"

    def test_product_rule_numeric(self, evaluator):
        from repro.engine.patterns import substitute
        from repro.mexpr import MReal, expr

        d = differentiate(parse("x * Sin[x]"), MSymbol("x"))
        at = evaluator.evaluate(
            expr("N", substitute(d, {"x": MReal(0.7)}))
        ).to_python()
        assert at == pytest.approx(0.7 * math.cos(0.7) + math.sin(0.7))

    def test_chain_rule_numeric(self, evaluator):
        d = differentiate(parse("Sin[x^2]"), MSymbol("x"))
        from repro.engine.patterns import substitute
        from repro.mexpr import MReal, expr

        at = evaluator.evaluate(
            expr("N", substitute(d, {"x": MReal(0.5)}))
        ).to_python()
        assert at == pytest.approx(2 * 0.5 * math.cos(0.25))

    def test_higher_order(self, run):
        assert run("D[x^3, {x, 2}]") == "Times[6, x]"

    def test_cos_and_log(self, run):
        assert run("D[Cos[x], x]") == "Times[-1, Sin[x]]"
        assert run("D[Log[x], x]") == "Power[x, -1]"

    def test_unsupported_head_raises(self):
        from repro.errors import WolframEvaluationError

        with pytest.raises(WolframEvaluationError):
            differentiate(parse("Gamma[x]"), MSymbol("x"))


class TestFindRoot:
    def test_paper_root(self, evaluator):
        """§2.1: FindRoot[Sin[x] + E^x, {x, 0}] finds x ≈ -0.588533."""
        result = evaluator.run("FindRoot[Sin[x] + E^x, {x, 0}]")
        root = result.args[0].args[1].to_python()
        assert root == pytest.approx(-0.588533, abs=1e-5)

    def test_three_argument_form(self, evaluator):
        result = evaluator.run("FindRoot[Sin[x] + E^x, x, 0]")
        root = result.args[0].args[1].to_python()
        assert root == pytest.approx(-0.588533, abs=1e-5)

    def test_equation_form(self, evaluator):
        result = evaluator.run("FindRoot[x^2 == 2, {x, 1.0}]")
        root = result.args[0].args[1].to_python()
        assert root == pytest.approx(math.sqrt(2))

    def test_polynomial(self, evaluator):
        result = evaluator.run("FindRoot[x^3 - x - 2, {x, 1.5}]")
        root = result.args[0].args[1].to_python()
        assert root ** 3 - root - 2 == pytest.approx(0, abs=1e-9)

    def test_auto_compilation_used_when_enabled(self, evaluator):
        """§1: FindRoot auto-compiles its objective through the hook."""
        from repro.compiler import enable_auto_compilation

        calls = []
        enable_auto_compilation(evaluator)
        original = evaluator.extensions["auto_compile"]

        def counting_hook(equation, variable, result_type):
            calls.append(equation)
            return original(equation, variable, result_type)

        evaluator.extensions["auto_compile"] = counting_hook
        result = evaluator.run("FindRoot[Sin[x] + E^x, {x, 0}]")
        root = result.args[0].args[1].to_python()
        assert root == pytest.approx(-0.588533, abs=1e-5)
        assert len(calls) == 2  # the objective and its derivative

    def test_newton_helper(self):
        root = newton_root(lambda x: x * x - 9, lambda x: 2 * x, 1.0)
        assert root == pytest.approx(3.0)

    def test_newton_zero_derivative_raises(self):
        from repro.errors import WolframEvaluationError

        with pytest.raises(WolframEvaluationError):
            newton_root(lambda x: 1.0, lambda x: 0.0, 0.0)


class TestRandom:
    def test_seeded_reproducibility(self):
        a = Evaluator()
        b = Evaluator()
        xs = a.run("SeedRandom[42]; RandomReal[{0, 1}, 5]").to_python()
        ys = b.run("SeedRandom[42]; RandomReal[{0, 1}, 5]").to_python()
        assert xs == ys

    def test_random_real_bounds(self, evaluator):
        values = evaluator.run("RandomReal[{2, 3}, 100]").to_python()
        assert all(2 <= v <= 3 for v in values)

    def test_random_real_with_pi_bound(self, evaluator):
        import math

        values = evaluator.run("RandomReal[{0, 2 Pi}, 50]").to_python()
        assert all(0 <= v <= 2 * math.pi for v in values)

    def test_random_integer(self, evaluator):
        values = evaluator.run("RandomInteger[{1, 6}, 100]").to_python()
        assert all(isinstance(v, int) and 1 <= v <= 6 for v in values)

    def test_random_variate_matrix_shape(self, evaluator):
        """§1's motivating one-liner: Total over a 10x10 normal sample."""
        result = evaluator.run(
            "Total[RandomVariate[NormalDistribution[], {10, 10}]]"
        ).to_python()
        assert len(result) == 10
        assert all(isinstance(v, float) for v in result)

    def test_random_choice(self, evaluator):
        value = evaluator.run("RandomChoice[{1, 2, 3}]").to_python()
        assert value in (1, 2, 3)
