"""Control flow, assignment, and non-local transfers in the interpreter."""

import pytest

from repro.errors import WolframEvaluationError


class TestConditionals:
    def test_if_true(self, run):
        assert run("If[1 < 2, 10, 20]") == "10"

    def test_if_false(self, run):
        assert run("If[2 < 1, 10, 20]") == "20"

    def test_if_without_else_gives_null(self, run):
        assert run("If[False, 10]") == "Null"

    def test_if_holds_branches(self, run):
        assert run("If[True, 1, While[True]]") == "1"

    def test_if_fourth_argument_for_undecidable(self, run):
        assert run("If[x > 0, 1, 2, 3]") == "3"

    def test_which(self, run):
        assert run("Which[False, 1, True, 2, True, 3]") == "2"

    def test_which_all_false(self, run):
        assert run("Which[False, 1, False, 2]") == "Null"

    def test_switch(self, run):
        assert run('Switch[3, 1, "one", 3, "three", _, "many"]') == '"three"'
        assert run('Switch[9, 1, "one", _, "many"]') == '"many"'

    def test_switch_with_pattern(self, run):
        assert run('Switch[2.5, _Integer, "int", _Real, "real"]') == '"real"'


class TestLoops:
    def test_while_counts(self, run):
        assert run("i = 0; While[i < 5, i = i + 1]; i") == "5"

    def test_while_with_increment_operator(self, run):
        assert run("i = 0; While[i < 5, i++]; i") == "5"

    def test_paper_abortable_loop_shape(self, run):
        """§3 F3's example loop (finite variant) mutates i as specified."""
        assert run(
            "i = 0; k = 0; While[k < 10, If[i > 3, i--, i++]; k++]; i"
        ) == "4"  # i climbs to 4 then oscillates 3/4; 10 steps end on 4

    def test_for(self, run):
        assert run("s = 0; For[j = 1, j <= 4, j++, s += j]; s") == "10"

    def test_do_with_count(self, run):
        assert run("c = 0; Do[c++, {5}]; c") == "5"

    def test_do_with_iterator(self, run):
        assert run("s = 0; Do[s += i, {i, 1, 4}]; s") == "10"

    def test_do_with_step(self, run):
        assert run("s = 0; Do[s += i, {i, 1, 10, 3}]; s") == "22"

    def test_do_nested_iterators(self, run):
        assert run("s = 0; Do[s += i*j, {i, 1, 2}, {j, 1, 2}]; s") == "9"

    def test_do_over_list(self, run):
        assert run("s = 0; Do[s += i, {i, {2, 5, 7}}]; s") == "14"

    def test_break(self, run):
        assert run("i = 0; While[True, i++; If[i >= 3, Break[]]]; i") == "3"

    def test_continue(self, run):
        assert run(
            "s = 0; Do[If[EvenQ[i], Continue[]]; s += i, {i, 1, 6}]; s"
        ) == "9"

    def test_sum(self, run):
        assert run("Sum[i^2, {i, 1, 5}]") == "55"

    def test_product(self, run):
        assert run("Product[i, {i, 1, 5}]") == "120"


class TestAssignment:
    def test_set_returns_value(self, run):
        assert run("a = 7") == "7"

    def test_set_delayed_returns_null(self, run):
        assert run("f[x_] := x + 1") == "Null"

    def test_set_delayed_reevaluates(self, run):
        assert run("v = 1; d := v; v = 9; d") == "9"

    def test_parallel_list_assignment(self, run):
        assert run("{a, b} = {1, 2}; a + b") == "3"

    def test_compound_operators(self, run):
        assert run("z = 10; z += 5; z -= 3; z *= 2; z") == "24"

    def test_increment_returns_old_value(self, run):
        assert run("n = 5; {n++, n}") == "List[5, 6]"

    def test_preincrement_returns_new_value(self, run):
        assert run("n = 5; {++n, n}") == "List[6, 6]"

    def test_part_assignment(self, run):
        assert run("lst = {1, 2, 3}; lst[[2]] = 99; lst") == "List[1, 99, 3]"

    def test_nested_part_assignment(self, run):
        assert run(
            "m = {{1, 2}, {3, 4}}; m[[2, 1]] = 0; m"
        ) == "List[List[1, 2], List[0, 4]]"

    def test_negative_part_assignment(self, run):
        assert run("lst = {1, 2, 3}; lst[[-1]] = 9; lst") == "List[1, 2, 9]"

    def test_downvalue_definition_and_call(self, run):
        assert run("sq[x_] := x*x; sq[6]") == "36"

    def test_downvalue_with_condition(self, run):
        assert run(
            "h[x_ /; x > 0] := 1; h[x_] := -1; {h[5], h[-5]}"
        ) == "List[1, -1]"

    def test_clear_removes_downvalues(self, run):
        assert run("p[x_] := 1; Clear[p]; p[3]") == "p[3]"


class TestNonLocalFlow:
    def test_throw_catch(self, run):
        assert run("Catch[1 + Throw[42]]") == "42"

    def test_throw_with_tag(self, run):
        assert run('Catch[Throw[1, "tag"], "tag"]') == "1"

    def test_throw_tag_mismatch_propagates(self, run):
        assert run('Catch[Catch[Throw[1, "inner"], "other"], "inner"]') == "1"

    def test_return_from_function(self, run):
        assert run(
            "f = Function[{x}, If[x > 0, Return[99]]; -1]; {f[1], f[-1]}"
        ) == "List[99, -1]"

    def test_catch_no_throw_passes_value(self, run):
        assert run("Catch[5]") == "5"


class TestEvaluationControl:
    def test_compound_expression_returns_last(self, run):
        assert run("1; 2; 3") == "3"

    def test_identity(self, run):
        assert run("Identity[f[2]]") == "f[2]"

    def test_to_expression(self, run):
        assert run('ToExpression["1 + 2"]') == "3"

    def test_absolute_timing_shape(self, evaluator):
        from repro.mexpr import head_name, parse

        result = evaluator.run("AbsoluteTiming[1 + 1]")
        assert head_name(result) == "List"
        assert result.args[1] == parse("2")
