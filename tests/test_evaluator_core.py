"""Core evaluation semantics: fixed-point evaluation, attributes, numerics."""

import pytest

from repro.engine import Evaluator
from repro.errors import WolframIterationError
from repro.mexpr import full_form


class TestInfiniteEvaluation:
    def test_chained_ownvalues(self, run):
        """§2.1: y=x; x=1; y evaluates to 1 by repeated rewriting."""
        assert run("y = x; x = 1; y") == "1"

    def test_three_level_chain(self, run):
        assert run("a = b; b = c; c = 7; a") == "7"

    def test_runaway_rewrite_hits_iteration_limit(self):
        """§2.1: x = x + 1 with x undefined rewrites forever; the engine
        stops at $IterationLimit instead of hanging."""
        from repro.errors import WolframRecursionError
        from repro.mexpr import parse

        evaluator = Evaluator(recursion_limit=64, iteration_limit=64)
        with pytest.raises((WolframIterationError, WolframRecursionError)):
            evaluator.evaluate(parse("x = x + 1; x"))

    def test_symbol_without_value_stays(self, run):
        assert run("undefinedSymbol") == "undefinedSymbol"


class TestArithmetic:
    @pytest.mark.parametrize("source,expected", [
        ("1 + 2", "3"),
        ("2 * 3 * 4", "24"),
        ("2^10", "1024"),
        ("7 - 2", "5"),
        ("1 + 2.5", "3.5"),
        ("Mod[7, 3]", "1"),
        ("Mod[-7, 3]", "2"),
        ("Quotient[7, 2]", "3"),
        ("Abs[-4]", "4"),
        ("Max[3, 1, 4]", "4"),
        ("Min[{5, 2, 8}]", "2"),
        ("Floor[2.7]", "2"),
        ("Ceiling[2.1]", "3"),
        ("GCD[12, 18]", "6"),
        ("LCM[4, 6]", "12"),
        ("Factorial[5]", "120"),
        ("Fibonacci[10]", "55"),
        ("BitAnd[12, 10]", "8"),
        ("BitXor[5, 3]", "6"),
        ("BitShiftLeft[1, 8]", "256"),
        ("Sign[-2.5]", "-1"),
        ("Boole[True]", "1"),
        ("Boole[False]", "0"),
    ])
    def test_value(self, run, source, expected):
        assert run(source) == expected

    def test_arbitrary_precision(self, run_value):
        """The interpreter never overflows (F2's fallback target)."""
        assert run_value("2^100") == 2 ** 100
        assert run_value("Factorial[30]") == 265252859812191058636308480000000

    def test_division_produces_real(self, run_value):
        assert run_value("1/2") == 0.5

    def test_transcendental(self, run_value):
        import math

        assert run_value("Sin[0.5]") == pytest.approx(math.sin(0.5))
        assert run_value("Exp[1.0]") == pytest.approx(math.e)
        assert run_value("Log[E]") == 0
        assert run_value("Sqrt[16]") == 4

    def test_n_of_constants(self, run_value):
        import math

        assert run_value("N[Pi]") == pytest.approx(math.pi)
        assert run_value("N[1/3]") == pytest.approx(1 / 3)

    def test_symbolic_plus_folds_numerics(self, run):
        assert run("1 + x + 2") == "Plus[3, x]"

    def test_times_zero_annihilates(self, run):
        assert run("0 * x") == "0"

    def test_complex_arithmetic(self, run):
        assert run("Complex[1.0, 2.0] * Complex[1.0, -2.0]") == "5.0"


class TestAttributes:
    def test_flat_plus(self, run):
        assert run("Plus[1, Plus[2, 3]]") == "6"

    def test_orderless_canonicalizes(self, run):
        # x + 1 and 1 + x normalize identically
        assert run("x + 1") == run("1 + x")

    def test_listable_threads(self, run):
        assert run("{1, 2} + {10, 20}") == "List[11, 22]"
        assert run("2 * {1, 2, 3}") == "List[2, 4, 6]"
        assert run("Sin[{0, 0.0}]") == "List[0, 0.0]"

    def test_hold_prevents_evaluation(self, run):
        assert run("Hold[1 + 1]") == "Hold[Plus[1, 1]]"

    def test_evaluate_pierces_hold(self, run):
        assert run("Hold[Evaluate[1 + 1]]") == "Hold[2]"

    def test_release_hold(self, run):
        assert run("ReleaseHold[Hold[1 + 1]]") == "2"

    def test_set_attributes(self, run):
        assert run(
            "SetAttributes[myF, HoldAll]; myF[1 + 1]"
        ) == "myF[Plus[1, 1]]"

    def test_attributes_query(self, run):
        assert "Flat" in run("Attributes[Plus]")


class TestComparison:
    @pytest.mark.parametrize("source,expected", [
        ("1 < 2", "True"),
        ("2 < 1", "False"),
        ("1 < 2 < 3", "True"),
        ("1 < 3 < 2", "False"),
        ("1 <= 1", "True"),
        ("2.0 == 2", "True"),
        ("2.0 === 2", "False"),
        ('"a" < "b"', "True"),
        ("x == x", "True"),
        ("TrueQ[x > 0]", "False"),
    ])
    def test_value(self, run, source, expected):
        assert run(source) == expected

    def test_symbolic_comparison_stays(self, run):
        assert run("x > 1") == "Greater[x, 1]"

    def test_logic(self, run):
        assert run("True && False") == "False"
        assert run("True || False") == "True"
        assert run("!True") == "False"
        assert run("Xor[True, True]") == "False"

    def test_and_short_circuits(self, run):
        # the second argument would loop forever if evaluated
        assert run("False && (While[True]; True)") == "False"

    def test_or_short_circuits(self, run):
        assert run("True || (While[True]; True)") == "True"


class TestPredicates:
    @pytest.mark.parametrize("source,expected", [
        ("IntegerQ[3]", "True"),
        ("IntegerQ[3.0]", "False"),
        ("NumberQ[2.5]", "True"),
        ("NumericQ[Pi]", "True"),
        ("ListQ[{1}]", "True"),
        ("StringQ[\"a\"]", "True"),
        ("EvenQ[4]", "True"),
        ("OddQ[4]", "False"),
        ("PrimeQ[97]", "True"),
        ("PrimeQ[91]", "False"),
        ("Positive[3]", "True"),
        ("Negative[-1.5]", "True"),
        ("NonNegative[0]", "True"),
        ("VectorQ[{1, 2}]", "True"),
        ("VectorQ[{{1}}]", "False"),
        ("MatrixQ[{{1, 2}, {3, 4}}]", "True"),
        ("AtomQ[x]", "True"),
        ("AtomQ[f[x]]", "False"),
    ])
    def test_value(self, run, source, expected):
        assert run(source) == expected


class TestStateInvalidations:
    def test_set_evaluates_immediately(self, run):
        """`=` captures the value at assignment time."""
        assert run("v = 1; w = {v, v}; v = 2; w") == "List[1, 1]"

    def test_assignment_invalidates_cached_results(self, run):
        """The evaluated-stamp cache must respect Set (state_version):
        a delayed definition re-evaluates against the new binding."""
        assert run("v = 1; w := {v, v}; v = 2; w") == "List[2, 2]"

    def test_clear(self, run):
        assert run("q = 5; Clear[q]; q") == "q"


class TestFixedPointAndAtomFastPath:
    """The atom fast path and the hash-short-circuited fixed-point check
    must not change observable evaluation semantics."""

    def test_own_value_symbols_still_reevaluate(self, run):
        # symbols are atoms but carry OwnValues: the fast path must not
        # skip their lookup
        assert run("x1 = 7; x1") == "7"
        # `=` captures the value; `:=` re-reads the OwnValue on each use
        assert run("y1 = x1; x1 = 8; y1") == "7"
        assert run("y2 := x1; x1 = 9; y2") == "9"

    def test_chained_own_values_resolve_to_fixed_point(self, run):
        assert run("a1 = b1; b1 = c1; c1 = 3; a1") == "3"

    def test_non_symbol_atoms_are_self_evaluating(self, run):
        assert run("5") == "5"
        assert run("2.5") == "2.5"
        assert run('"text"') == '"text"'

    def test_delayed_definitions_track_rebinding(self, run):
        # the stamp cache keys on state_version; rebinding must flow through
        assert run("base = 1; view := base + 1; base = 10; view") == "11"

    def test_fixed_point_terminates_on_equal_rebuild(self, run):
        # Orderless canonicalisation rebuilds an equal expression; the
        # hash short-circuit must still detect the fixed point
        assert run("c0 + b0 + a0") == "Plus[a0, b0, c0]"
        assert run("Plus[a0, b0, c0]") == "Plus[a0, b0, c0]"

    def test_evaluation_stamp_not_shared_across_sessions(self):
        first = Evaluator()
        second = Evaluator()
        assert full_form(first.run("m = 1; m")) == "1"
        # a different session with a different binding must not reuse
        # any evaluated-stamp from the first
        assert full_form(second.run("m = 2; m")) == "2"
        assert full_form(first.run("m")) == "1"
