"""Higher-order primitives (§2.1: the constructs users reach for)."""

import pytest


class TestMapApply:
    @pytest.mark.parametrize("source,expected", [
        ("Map[f, {1, 2}]", "List[f[1], f[2]]"),
        ("Map[(#^2)&, {1, 2, 3}]", "List[1, 4, 9]"),
        ("(#^2)& /@ {2, 3}", "List[4, 9]"),
        ("Map[f, g[a, b]]", "g[f[a], f[b]]"),
        ("MapIndexed[f, {a, b}]", "List[f[a, List[1]], f[b, List[2]]]"),
        ("Apply[Plus, {1, 2, 3}]", "6"),
        ("Plus @@ {1, 2, 3}", "6"),
        ("Apply[f, {{1, 2}, {3}}, {1}]", "List[f[1, 2], f[3]]"),
        ("Through[{Min, Max}[3, 1]]", "List[1, 3]"),
    ])
    def test_value(self, run, source, expected):
        assert run(source) == expected

    def test_scan_side_effects(self, run):
        assert run("acc = 0; Scan[(acc += #)&, {1, 2, 3}]; acc") == "6"


class TestSelectCases:
    @pytest.mark.parametrize("source,expected", [
        ("Select[{1, 2, 3, 4}, EvenQ]", "List[2, 4]"),
        ("Select[Range[10], (# > 7)&]", "List[8, 9, 10]"),
        ("Select[Range[10], EvenQ, 2]", "List[2, 4]"),
        ("Cases[{1, 2.0, 3}, _Integer]", "List[1, 3]"),
        ("Cases[{f[1], g[2], f[3]}, f[x_] -> x]", "List[1, 3]"),
        ("DeleteCases[{1, 2.0, 3}, _Real]", "List[1, 3]"),
    ])
    def test_value(self, run, source, expected):
        assert run(source) == expected


class TestFolds:
    @pytest.mark.parametrize("source,expected", [
        ("Fold[Plus, 0, {1, 2, 3}]", "6"),
        ("Fold[Plus, {1, 2, 3}]", "6"),
        ("Fold[f, x, {a, b}]", "f[f[x, a], b]"),
        ("FoldList[Plus, 0, {1, 2, 3}]", "List[0, 1, 3, 6]"),
        ("FoldList[Times, {1, 2, 3, 4}]", "List[1, 2, 6, 24]"),
        ("Fold[Min, {5, 2, 9}]", "2"),
    ])
    def test_value(self, run, source, expected):
        assert run(source) == expected


class TestNesting:
    @pytest.mark.parametrize("source,expected", [
        ("Nest[(# + 1)&, 0, 5]", "5"),
        ("Nest[f, x, 3]", "f[f[f[x]]]"),
        ("NestList[f, x, 2]", "List[x, f[x], f[f[x]]]"),
        ("NestList[(2 #)&, 1, 4]", "List[1, 2, 4, 8, 16]"),
        ("NestWhile[(# / 2)&, 64, EvenQ]", "1"),
        ("FixedPoint[Function[{x}, Floor[(x + 2)/2]], 20]", "2"),
    ])
    def test_value(self, run, source, expected):
        assert run(source) == expected

    def test_fixed_point_list_converges(self, run):
        assert run("FixedPointList[(Floor[#/2])&, 8]") == (
            "List[8, 4, 2, 1, 0, 0]"
        )

    def test_nest_list_result_length(self, run_value):
        """NestList[f, x, n] has length n + 1 (§2.1)."""
        assert len(run_value("NestList[(# + 1)&, 0, 7]")) == 8


class TestRandomWalkExample:
    def test_figure_one_program_shape(self, evaluator):
        """The paper's Figure 1 random-walk function runs end to end."""
        from repro.mexpr import head_name, parse

        evaluator.run("""
            interpreted = Function[{len},
              NestList[
                Module[{arg = RandomReal[{0, 2 Pi}]},
                  {-Cos[arg], Sin[arg]} + #
                ]&,
                {0, 0},
                len
              ]
            ]
        """)
        walk = evaluator.run("interpreted[10]")
        assert head_name(walk) == "List"
        assert len(walk.args) == 11
        first = walk.args[0]
        assert first.to_python() == [0, 0]
        # each step moves by a unit vector
        import math

        points = walk.to_python()
        for before, after in zip(points, points[1:]):
            dx, dy = after[0] - before[0], after[1] - before[1]
            assert math.hypot(dx, dy) == pytest.approx(1.0)


class TestReplaceRules:
    @pytest.mark.parametrize("source,expected", [
        ("x /. x -> 1", "1"),
        ("x + y /. {x -> 1, y -> 2}", "3"),
        ("f[a, b] /. f[x_, y_] -> g[y, x]", "g[b, a]"),
        ("{1, 2, 3} /. x_Integer /; x > 1 -> 0", "List[1, 0, 0]"),
        ("x //. {x -> y, y -> z}", "z"),
        ("MatchQ[f[1], f[_Integer]]", "True"),
        ("Replace[5, x_ -> x + 1]", "6"),
    ])
    def test_value(self, run, source, expected):
        assert run(source) == expected

    def test_outermost_rule_wins(self, run):
        assert run("f[f[x]] /. f[a_] -> a") == "f[x]"
