"""List, tensor, and structural builtins in the interpreter."""

import pytest


class TestAccess:
    @pytest.mark.parametrize("source,expected", [
        ("Length[{1, 2, 3}]", "3"),
        ("Length[f[a, b]]", "2"),
        ("Length[5]", "0"),
        ("{10, 20, 30}[[2]]", "20"),
        ("{10, 20, 30}[[-1]]", "30"),
        ("{{1, 2}, {3, 4}}[[2, 1]]", "3"),
        ("First[{5, 6}]", "5"),
        ("Last[{5, 6}]", "6"),
        ("Rest[{1, 2, 3}]", "List[2, 3]"),
        ("Most[{1, 2, 3}]", "List[1, 2]"),
        ("Take[{1, 2, 3, 4}, 2]", "List[1, 2]"),
        ("Take[{1, 2, 3, 4}, -2]", "List[3, 4]"),
        ("Take[{1, 2, 3, 4}, {2, 3}]", "List[2, 3]"),
        ("Drop[{1, 2, 3, 4}, 1]", "List[2, 3, 4]"),
        ("f[a, b][[0]]", "f"),
    ])
    def test_value(self, run, source, expected):
        assert run(source) == expected

    def test_part_out_of_range_raises(self, evaluator):
        from repro.errors import WolframEvaluationError
        from repro.mexpr import parse

        with pytest.raises(WolframEvaluationError):
            evaluator.evaluate(parse("{1, 2}[[5]]"))


class TestConstruction:
    @pytest.mark.parametrize("source,expected", [
        ("Range[4]", "List[1, 2, 3, 4]"),
        ("Range[2, 5]", "List[2, 3, 4, 5]"),
        ("Range[1, 10, 3]", "List[1, 4, 7, 10]"),
        ("Range[5, 1, -2]", "List[5, 3, 1]"),
        ("Table[i^2, {i, 3}]", "List[1, 4, 9]"),
        ("Table[0, {3}]", "List[0, 0, 0]"),
        ("Table[i + j, {i, 2}, {j, 2}]",
         "List[List[2, 3], List[3, 4]]"),
        ("ConstantArray[7, 3]", "List[7, 7, 7]"),
        ("ConstantArray[0, {2, 2}]", "List[List[0, 0], List[0, 0]]"),
        ("Array[(#^2)&, 3]", "List[1, 4, 9]"),
        ("IdentityMatrix[2]", "List[List[1, 0], List[0, 1]]"),
        ("Append[{1}, 2]", "List[1, 2]"),
        ("Prepend[{1}, 0]", "List[0, 1]"),
        ("Join[{1}, {2, 3}, {4}]", "List[1, 2, 3, 4]"),
        ("Riffle[{a, b, c}, x]", "List[a, x, b, x, c]"),
    ])
    def test_value(self, run, source, expected):
        assert run(source) == expected

    def test_append_to(self, run):
        assert run("acc = {}; AppendTo[acc, 1]; AppendTo[acc, 2]; acc") == (
            "List[1, 2]"
        )


class TestTransformation:
    @pytest.mark.parametrize("source,expected", [
        ("Reverse[{1, 2, 3}]", "List[3, 2, 1]"),
        ("Sort[{3, 1, 2}]", "List[1, 2, 3]"),
        ("Sort[{3, 1, 2}, Greater]", "List[3, 2, 1]"),
        ("SortBy[{-3, 1, -2}, Abs]", "List[1, -2, -3]"),
        ("Flatten[{{1, {2}}, 3}]", "List[1, 2, 3]"),
        ("Flatten[{{1, {2}}, 3}, 1]", "List[1, List[2], 3]"),
        ("Partition[{1, 2, 3, 4}, 2]", "List[List[1, 2], List[3, 4]]"),
        ("Partition[{1, 2, 3}, 2, 1]", "List[List[1, 2], List[2, 3]]"),
        ("Transpose[{{1, 2}, {3, 4}}]", "List[List[1, 3], List[2, 4]]"),
        ("DeleteDuplicates[{1, 2, 1, 3, 2}]", "List[1, 2, 3]"),
        ("ReplacePart[{a, b, c}, 2 -> x]", "List[a, x, c]"),
        ("Thread[f[{1, 2}, {3, 4}]]", "List[f[1, 3], f[2, 4]]"),
        ("Outer[Times, {1, 2}, {3, 4}]",
         "List[List[3, 4], List[6, 8]]"),
        ("Tuples[{0, 1}, 2]",
         "List[List[0, 0], List[0, 1], List[1, 0], List[1, 1]]"),
    ])
    def test_value(self, run, source, expected):
        assert run(source) == expected


class TestAggregation:
    @pytest.mark.parametrize("source,expected", [
        ("Total[{1, 2, 3}]", "6"),
        ("Total[{}]", "0"),
        ("Accumulate[{1, 2, 3}]", "List[1, 3, 6]"),
        ("Mean[{1, 2, 3}]", "2"),
        ("Count[{1, 2, 1, 3}, 1]", "2"),
        ("Count[{1, 2.0, 3}, _Integer]", "2"),
        ("MemberQ[{1, 2}, 2]", "True"),
        ("MemberQ[{1, 2}, 5]", "False"),
        ("FreeQ[{1, {2, x}}, x]", "False"),
        ("FreeQ[{1, 2}, x]", "True"),
        ("Position[{a, b, a}, a]", "List[List[1], List[3]]"),
        ("IntegerDigits[1024]", "List[1, 0, 2, 4]"),
        ("IntegerDigits[255, 16]", "List[15, 15]"),
    ])
    def test_value(self, run, source, expected):
        assert run(source) == expected

    def test_dot_vectors(self, run_value):
        assert run_value("Dot[{1, 2, 3}, {4, 5, 6}]") == 32

    def test_dot_matrix_vector(self, run_value):
        assert run_value("{{1, 0}, {0, 2}} . {3, 4}") == [3, 8]

    def test_dot_matrices(self, run_value):
        assert run_value("{{1, 2}, {3, 4}} . {{5, 6}, {7, 8}}") == [
            [19, 22], [43, 50]
        ]
