"""Module/Block/With semantics (§2.1, §4.2) and function application."""

import pytest


class TestModule:
    def test_basic(self, run):
        assert run("Module[{a = 1, b = 2}, a + b]") == "3"

    def test_lexical_isolation(self, run):
        assert run("a = 100; Module[{a = 1}, a]") == "1"
        assert run("a = 100; Module[{a = 1}, a]; a") == "100"

    def test_nested_shadowing(self, run):
        """The paper's §4.2 example shape: inner a shadows outer a."""
        assert run(
            "Module[{a = 1, b = 1}, a + b + Module[{a = 3}, a]]"
        ) == "5"

    def test_uninitialized_variable(self, run):
        assert run("Module[{u}, u = 4; u]") == "4"

    def test_initializer_sees_enclosing_scope(self, run):
        assert run("x = 10; Module[{x = x + 1}, x]") == "11"

    def test_module_variables_unique_per_invocation(self, run):
        assert run(
            "mk[] := Module[{local}, local]; mk[] === mk[]"
        ) == "False"


class TestBlock:
    def test_dynamic_scoping(self, run):
        assert run("v = 1; f[] := v; Block[{v = 2}, f[]]") == "2"

    def test_restores_after_body(self, run):
        assert run("v = 1; Block[{v = 2}, v]; v") == "1"

    def test_restores_on_throw(self, run):
        assert run(
            "v = 1; Catch[Block[{v = 2}, Throw[0]]]; v"
        ) == "1"

    def test_block_without_initializer_clears(self, run):
        # inside the block w has no value; (the bare result would re-evaluate
        # to 5 after restoration, as in Wolfram, so observe it via ToString)
        assert run('w = 5; Block[{w}, ToString[w]]') == '"w"'


class TestWith:
    def test_substitution(self, run):
        assert run("With[{c = 3}, c * c]") == "9"

    def test_substitutes_into_held_code(self, run):
        assert run("With[{c = 2}, Hold[c]]") == "Hold[2]"

    def test_requires_initializers(self, evaluator):
        from repro.errors import WolframEvaluationError
        from repro.mexpr import parse

        with pytest.raises(WolframEvaluationError):
            evaluator.evaluate(parse("With[{c}, c]"))


class TestFunctionApplication:
    def test_named_parameters(self, run):
        assert run("Function[{x, y}, x - y][10, 3]") == "7"

    def test_single_parameter_no_list(self, run):
        assert run("Function[x, x + 1][5]") == "6"

    def test_slots(self, run):
        assert run("(#1 + #2)&[3, 4]") == "7"

    def test_slot_sequence_via_extra_args(self, run):
        assert run("(#)&[1, 2]") == "1"  # extra arguments ignored

    def test_nested_pure_functions_shield_slots(self, run):
        assert run("((#& )[#])&[9]") == "9"

    def test_function_stored_and_applied(self, run):
        assert run("g = (# * 2)&; g[21]") == "42"

    def test_typed_parameters_accepted(self, run):
        assert run('Function[{Typed[x, "MachineInteger"]}, x + 1][4]') == "5"

    def test_closure_via_with(self, run):
        assert run("mk = Function[{n}, With[{m = n}, (# + m)&]]; mk[10][5]") == "15"

    def test_recursive_function_value(self, run):
        assert run(
            "fact = Function[{n}, If[n <= 1, 1, n*fact[n-1]]]; fact[6]"
        ) == "720"
