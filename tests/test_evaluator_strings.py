"""String builtins (the L1 expressiveness area the new compiler adds)."""

import pytest


class TestStrings:
    @pytest.mark.parametrize("source,expected", [
        ('StringLength["hello"]', "5"),
        ('StringJoin["foo", "bar"]', '"foobar"'),
        ('"foo" <> "bar" <> "!"', '"foobar!"'),
        ('StringTake["hello", 2]', '"he"'),
        ('StringTake["hello", -2]', '"lo"'),
        ('StringTake["hello", {2, 4}]', '"ell"'),
        ('StringDrop["hello", 2]', '"llo"'),
        ('Characters["abc"]', 'List["a", "b", "c"]'),
        ('ToCharacterCode["AB"]', "List[65, 66]"),
        ("FromCharacterCode[{72, 105}]", '"Hi"'),
        ("FromCharacterCode[97]", '"a"'),
        ('ToUpperCase["abC"]', '"ABC"'),
        ('ToLowerCase["AbC"]', '"abc"'),
        ('StringSplit["a,b,c", ","]', 'List["a", "b", "c"]'),
        ('StringSplit["a b  c"]', 'List["a", "b", "c"]'),
        ('StringContainsQ["hello", "ell"]', "True"),
        ('StringStartsQ["hello", "he"]', "True"),
        ('StringRepeat["ab", 3]', '"ababab"'),
        ("ToString[123]", '"123"'),
        ("ToString[a + b]", '"a + b"'),
    ])
    def test_value(self, run, source, expected):
        assert run(source) == expected

    def test_string_replace_paper_example(self, run):
        """§3 F5's example: the original string is not mutated."""
        assert run(
            '({#, StringReplace[#, "foo" -> "grok"]}&)["foobar"]'
        ) == 'List["foobar", "grokbar"]'

    def test_string_replace_multiple_rules(self, run):
        assert run(
            'StringReplace["aXbY", {"X" -> "1", "Y" -> "2"}]'
        ) == '"a1b2"'

    def test_string_ordering(self, run):
        assert run('"apple" < "banana"') == "True"


class TestSymbolicStructure:
    @pytest.mark.parametrize("source,expected", [
        ("Head[5]", "Integer"),
        ("Head[2.5]", "Real"),
        ('Head["s"]', "String"),
        ("Head[x]", "Symbol"),
        ("Head[f[x]]", "f"),
        ("Head[{1}]", "List"),
        ("LeafCount[f[x, g[y]]]", "4"),
        ("Depth[f[g[x]]]", "3"),
        ("Depth[x]", "1"),
    ])
    def test_value(self, run, source, expected):
        assert run(source) == expected
