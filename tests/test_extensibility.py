"""Extending the compiler (§4.7): user macros, type declarations, passes.

"Users can extend the compiler by adding new macro rules, type system
definitions, or transformation passes.  Macros and type systems are defined
within an environment which is passed in at FunctionCompile time.  Passes
can be enabled during the FunctionCompile call."
"""

import pytest

from repro.compiler import (
    FunctionCompile,
    MacroEnvironment,
    TypeEnvironment,
    UserPass,
    default_environment,
    default_macro_environment,
    fn,
    register_macro,
    tensor,
    ty,
)
from repro.compiler.types.builtin_env import PRIMITIVE_IMPLS
from repro.compiler.types.environment import PrimitiveImpl
from repro.mexpr import parse


class TestUserMacros:
    def test_new_macro_rule(self):
        env = MacroEnvironment(parent=default_macro_environment())
        register_macro(env, "Double", "Double[x_] -> Times[2, x]")
        f = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"]}, Double[x] + 1]',
            macro_environment=env,
        )
        assert f(20) == 41

    def test_macro_overrides_builtin_lowering(self):
        env = MacroEnvironment(parent=default_macro_environment())
        # redefine squaring to be an off-by-one (observable override)
        register_macro(env, "Square", "Square[x_] -> Times[x, x]")
        f = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"]}, Square[x]]',
            macro_environment=env,
        )
        assert f(9) == 81

    def test_conditioned_macro_on_target_system(self):
        """The paper's CUDA`Map example: predicated on TargetSystem."""
        env = MacroEnvironment(parent=default_macro_environment())
        register_macro(
            env, "Accel",
            "Accel[x_] -> Times[1000, x]",
            condition=lambda options: options.get("TargetSystem") == "CUDA",
        )
        register_macro(
            env, "Accel",
            "Accel[x_] -> x",
            condition=lambda options: options.get("TargetSystem") != "CUDA",
        )
        plain = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"]}, Accel[x]]',
            macro_environment=env,
        )
        assert plain(3) == 3


class TestUserTypeEnvironments:
    def test_declare_function_with_primitive(self):
        env = TypeEnvironment(parent=default_environment())
        impl = PrimitiveImpl(
            "binary_min", py_inline="{out} = {a0} if {a0} < {a1} else {a1}"
        )
        env.declare_function("SmallerOf",
                             fn(["Integer64", "Integer64"], "Integer64"),
                             impl)
        f = FunctionCompile(
            'Function[{Typed[a, "MachineInteger"],'
            ' Typed[b, "MachineInteger"]}, SmallerOf[a, b]]',
            type_environment=env,
        )
        assert f(5, 3) == 3

    def test_declare_function_with_wolfram_implementation(self):
        """§4.4's declareFunction with a Wolfram-level body."""
        env = TypeEnvironment(parent=default_environment())
        env.declare_function(
            "Cube",
            fn(["Integer64"], "Integer64"),
            parse("Function[{x}, x * x * x]"),
        )
        f = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"]}, Cube[x] + 1]',
            type_environment=env,
        )
        assert f(3) == 28

    def test_polymorphic_user_function(self):
        from repro.compiler import forall

        env = TypeEnvironment(parent=default_environment())
        env.declare_function(
            "Twice",
            forall(["a"], fn(["a"], "a"), [("a", "Number")]),
            parse("Function[{x}, x + x]"),
        )
        f_int = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"]}, Twice[x]]',
            type_environment=env,
        )
        f_real = FunctionCompile(
            'Function[{Typed[x, "Real64"]}, Twice[x]]',
            type_environment=env,
        )
        assert f_int(21) == 42
        assert f_real(1.25) == 2.5

    def test_user_overload_shadows_builtin(self):
        env = TypeEnvironment(parent=default_environment())
        env.declare_function(
            "Abs", fn(["Integer64"], "Integer64"),
            parse("Function[{x}, x]"),  # deliberately wrong Abs
            inline_always=True,
        )
        f = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"]}, Abs[x]]',
            type_environment=env,
        )
        assert f(-5) == -5  # the user definition won

    def test_forced_inlining_flag(self):
        env = TypeEnvironment(parent=default_environment())
        env.declare_function(
            "AddOne", fn(["Integer64"], "Integer64"),
            parse("Function[{x}, x + 1]"),
            inline_always=True,
        )
        f = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"]}, AddOne[AddOne[x]]]',
            type_environment=env,
        )
        assert f(40) == 42
        # forced inlining leaves a single function in the program module
        assert list(f.program.functions) == ["Main"]

    def test_non_inlined_call_creates_mangled_function(self):
        env = TypeEnvironment(parent=default_environment())
        env.declare_function(
            "AddTwo", fn(["Integer64"], "Integer64"),
            parse("Function[{x}, x + 2]"),
        )
        f = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"]}, AddTwo[x]]',
            type_environment=env,
        )
        assert f(40) == 42
        assert "AddTwo_Integer64" in f.program.functions


class TestUserPasses:
    def test_ast_pass_injection(self):
        """An AST pass sees the body before macros run."""
        from repro.mexpr import MExprNormal, S

        seen = []

        def spy(body):
            seen.append(body)
            return body

        f = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"]}, x + 1]',
            user_passes=[UserPass(stage="ast", run=spy, name="spy")],
        )
        assert f(1) == 2
        assert len(seen) == 1

    def test_ast_pass_can_rewrite(self):
        from repro.engine.patterns import substitute
        from repro.mexpr import parse as p

        def strengthen(body):
            # rewrite +1 into +100 at the AST level
            from repro.engine import match

            return substitute(p("x + 100"), {})  # replace wholesale

        f = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"]}, x + 1]',
            user_passes=[UserPass(stage="ast", run=strengthen,
                                  name="strengthen")],
        )
        assert f(1) == 101

    def test_twir_pass_injection(self):
        counted = []

        def count_instructions(function_module):
            counted.append(sum(1 for _ in function_module.instructions()))

        f = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"]}, x * x]',
            user_passes=[UserPass(stage="twir", run=count_instructions,
                                  name="counter")],
        )
        assert f(6) == 36
        assert counted and counted[0] > 0

    def test_conditioned_pass(self):
        fired = []

        def only_when_c(function_module):
            fired.append(True)

        f = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"]}, x]',
            user_passes=[UserPass(
                stage="twir", run=only_when_c, name="conditional",
                condition=lambda options: options.target_system == "C",
            )],
        )
        assert f(1) == 1
        assert not fired  # TargetSystem defaults to Python

    def test_pass_timings_recorded(self):
        """§5/§6: the suite measures 'time to run specific passes'."""
        from repro.compiler import CompileToIR

        timings = CompileToIR(
            'Function[{Typed[x, "MachineInteger"]}, x + 1]'
        )["passTimings"]
        names = [name for name, _elapsed in timings]
        assert "macro-expansion" in names
        assert any(name.startswith("infer:") for name in names)
        assert any(name.startswith("resolve:") for name in names)
        assert "cse" in names and "dce" in names

    def test_pass_logger_streams(self):
        logged = []
        FunctionCompile(
            'Function[{Typed[x, "MachineInteger"]}, x + 1]',
            PassLogger=lambda name, elapsed: logged.append(name),
        )
        assert "macro-expansion" in logged


class TestAutomaticDifferentiationExtension:
    """§5: developers 'performed AST and IR manipulation for automatic
    differentiation' — here as an AST user pass built on the engine's D."""

    def test_forward_derivative_pass(self):
        from repro.engine.numerics import differentiate
        from repro.mexpr import MSymbol

        def derive(body):
            return differentiate(body, MSymbol("x"))

        f = FunctionCompile(
            'Function[{Typed[x, "Real64"]}, x * x * x]',
            user_passes=[UserPass(stage="ast", run=derive, name="d/dx")],
        )
        # d(x^3)/dx = 3 x^2
        assert f(2.0) == pytest.approx(12.0)
