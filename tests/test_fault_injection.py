"""Fault injection: prove every fallback path unwinds without corruption.

Acceptance: injected overflow/timeout/abort at every tier triggers the
documented fallback or unwind, the circuit breaker demotes after N=3 soft
failures (verified via the FailureRecord log), and no injected fault leaves
the engine session corrupted.

Marked ``faults`` so CI can run it as a dedicated smoke job
(``pytest -m faults``).
"""

import pytest

from repro.compiler import FunctionCompile, install_engine_support
from repro.compiler.api import (
    clear_failure_records,
    failure_records,
    failure_transitions,
)
from repro.engine import Evaluator
from repro.errors import (
    WolframAbort,
    WolframRuntimeError,
    WolframTimeoutError,
)
from repro.mexpr import full_form, parse
from repro.runtime.guard import Tier, active_guard
from repro.testing import Fault, inject_faults

pytestmark = pytest.mark.faults


@pytest.fixture()
def hosted():
    evaluator = Evaluator()
    install_engine_support(evaluator)
    return evaluator


@pytest.fixture(autouse=True)
def _clean_failure_log():
    clear_failure_records()
    yield
    clear_failure_records()


LOOP_BODY = (
    "Module[{a = 0, b = 1, i = 1},"
    " While[i <= n, Module[{t = a + b}, a = b; b = t]; i = i + 1]; a]"
)
COMPILED_LOOP = f'Function[{{Typed[n, "MachineInteger"]}}, {LOOP_BODY}]'


def _session_snapshot(evaluator, name):
    definition = evaluator.state.lookup(name)
    assert definition is not None
    return [(full_form(d.lhs), full_form(d.rhs)) for d in definition.down_values]


def fib(n):
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


class TestVMInstructionFaults:
    def test_injected_overflow_mid_loop_falls_back(self, hosted):
        hosted.run("cf = Compile[{{n, _Integer}}, " + LOOP_BODY + "]")
        with inject_faults(Fault("vm.instruction", "overflow", after=40)):
            result = hosted.run("cf[30]")
        # the VM died mid-loop; the interpreter fallback still answers
        assert result.to_python() == fib(30)
        assert any("reverting to uncompiled" in m for m in hosted.messages)

    def test_abort_mid_loop_returns_aborted_and_keeps_state(self, hosted):
        """Satellite: abort delivered at a VM instruction boundary (F3)."""
        hosted.run("g[x_] := x + 1")
        hosted.run("cf = Compile[{{n, _Integer}}, " + LOOP_BODY + "]")
        before = _session_snapshot(hosted, "g")
        with inject_faults(Fault("vm.instruction", "abort", after=40)):
            result = hosted.evaluate_protected(parse("cf[30]"))
        assert full_form(result) == "$Aborted"
        assert _session_snapshot(hosted, "g") == before
        assert not hosted.abort_pending()
        # a subsequent identical call succeeds: nothing was corrupted
        assert hosted.run("cf[30]").to_python() == fib(30)
        assert hosted.run("g[41]").to_python() == 42

    def test_programming_error_does_not_ride_soft_failure(self, evaluator):
        from repro.bytecode import compile_function

        f = compile_function(
            parse("{{n, _Integer}}"), parse("n + 1"), evaluator
        )
        with inject_faults(Fault("vm.instruction", "backend-raise")):
            with pytest.raises(AttributeError):
                f(1)
        assert f.fallback_count == 0
        assert f(1) == 2  # artifact still usable afterwards


class TestCompiledCodeFaults:
    def test_abort_mid_iteration_returns_aborted_and_keeps_state(self, hosted):
        """Satellite: abort at a codegen'd loop-header check (F3)."""
        hosted.run("g[x_] := x + 1")
        compiled = FunctionCompile(COMPILED_LOOP, evaluator=hosted)
        compiled.install(hosted, "cfib")
        before = _session_snapshot(hosted, "g")
        # after=2 skips the prologue check; the fault lands mid-loop
        with inject_faults(Fault("abort.check", "abort", after=2)):
            result = hosted.evaluate_protected(parse("cfib[30]"))
        assert full_form(result) == "$Aborted"
        assert _session_snapshot(hosted, "g") == before
        assert not hosted.abort_pending()
        assert hosted.run("cfib[30]").to_python() == fib(30)
        assert hosted.run("g[41]").to_python() == 42

    def test_injected_runtime_error_falls_back(self, hosted):
        compiled = FunctionCompile(COMPILED_LOOP, evaluator=hosted)
        with inject_faults(Fault("abort.check", "runtime")):
            assert compiled(30) == fib(30)
        assert compiled.fallback_count == 1
        assert failure_records(kind="Injected")

    def test_injected_timeout_unwinds_without_retry(self, hosted):
        """A deadline expiry must not be retried on a slower tier."""
        compiled = FunctionCompile(COMPILED_LOOP, evaluator=hosted)
        with inject_faults(Fault("abort.check", "timeout")):
            with pytest.raises(WolframTimeoutError):
                compiled(30)
        assert compiled.fallback_count == 0
        assert compiled.current_tier is Tier.COMPILED
        assert active_guard() is None
        assert failure_records(kind="Timeout")
        assert compiled(30) == fib(30)

    def test_injected_abort_leaves_no_guard_behind(self, hosted):
        compiled = FunctionCompile(COMPILED_LOOP, evaluator=hosted)
        with inject_faults(Fault("abort.check", "abort", after=2)):
            with pytest.raises(WolframAbort):
                compiled(30)
        assert active_guard() is None
        assert compiled(30) == fib(30)


class TestRuntimeLibraryFaults:
    def test_injected_fault_at_named_primitive(self, hosted):
        # InlinePolicy -> "none" routes every primitive through the RUNTIME
        # table, where the injector wraps the named entry
        compiled = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]}, n + 1]',
            evaluator=hosted,
            InlinePolicy="none",
        )
        site = "runtime.checked_binary_plus_Integer64_Integer64"
        with inject_faults(Fault(site, "overflow")):
            assert compiled(41) == 42  # interpreter fallback
        assert compiled.fallback_count == 1
        with inject_faults(Fault(site, "overflow")) as injector:
            assert compiled(1) == 2
            assert compiled.fallback_count == 2
        # wrappers are restored on exit
        from repro.compiler.runtime_library import RUNTIME

        assert RUNTIME["checked_binary_plus_Integer64_Integer64"](1, 2) == 3
        assert compiled(1) == 2
        assert compiled.fallback_count == 2

    def test_unknown_primitive_site_is_an_error(self):
        with pytest.raises(KeyError):
            with inject_faults(Fault("runtime.no_such_primitive", "overflow")):
                pass


class TestCircuitBreakerUnderInjection:
    def test_three_injected_failures_demote_compiled_tier(self, hosted):
        compiled = FunctionCompile(COMPILED_LOOP, evaluator=hosted)
        # the prologue abort check fires on every compiled-tier call
        with inject_faults(Fault("abort.check", "runtime", times=3)):
            for _ in range(3):
                assert compiled(20) == fib(20)  # fallback answers each time
        assert compiled.current_tier is Tier.BYTECODE
        transitions = failure_transitions(compiled.program.main)
        assert [t.transition for t in transitions] == [
            (Tier.COMPILED, Tier.BYTECODE)
        ]
        # the demoted tier actually executes (and is correct)
        assert compiled(20) == fib(20)
        assert compiled.stats().calls["bytecode"] == 1

    def test_continued_failures_demote_to_interpreter(self, hosted):
        compiled = FunctionCompile(COMPILED_LOOP, evaluator=hosted)
        with inject_faults(Fault("abort.check", "runtime", times=3)):
            for _ in range(3):
                compiled(20)
        assert compiled.current_tier is Tier.BYTECODE
        with inject_faults(Fault("vm.instruction", "runtime", times=3)):
            for _ in range(3):
                assert compiled(20) == fib(20)
        assert compiled.current_tier is Tier.INTERPRETER
        assert [t.transition for t in failure_transitions(compiled.program.main)] == [
            (Tier.COMPILED, Tier.BYTECODE),
            (Tier.BYTECODE, Tier.INTERPRETER),
        ]
        # fully demoted: still correct, no further failures recorded
        records_before = len(failure_records())
        assert compiled(20) == fib(20)
        assert len(failure_records()) == records_before

    def test_breaker_not_tripped_by_boxing_failures(self, hosted):
        compiled = FunctionCompile(COMPILED_LOOP, evaluator=hosted)
        for _ in range(5):
            compiled(1.5)  # TypeMismatch at the boxing boundary
        assert compiled.current_tier is Tier.COMPILED
        assert failure_records(kind="TypeMismatch")

    def test_session_survives_every_injected_fault_kind(self, hosted):
        hosted.run("g[x_] := x + 1")
        before = _session_snapshot(hosted, "g")
        compiled = FunctionCompile(COMPILED_LOOP, evaluator=hosted)
        for kind, expected in [
            ("overflow", None),
            ("runtime", None),
            ("abort", WolframAbort),
            ("timeout", WolframTimeoutError),
            ("budget", WolframRuntimeError),
        ]:
            with inject_faults(Fault("abort.check", kind, after=2)):
                if expected is None:
                    assert compiled(20) == fib(20)
                else:
                    with pytest.raises(expected):
                        compiled(20)
            assert active_guard() is None
            assert not hosted.abort_pending()
        assert _session_snapshot(hosted, "g") == before
        assert hosted.run("g[1]").to_python() == 2


class TestInjectorMechanics:
    def test_faults_fire_deterministically(self, hosted):
        hosted.run("cf = Compile[{{n, _Integer}}, " + LOOP_BODY + "]")
        hits = []
        for _ in range(2):
            with inject_faults(
                Fault("vm.instruction", "runtime", after=25)
            ) as injector:
                hosted.run("cf[30]")
                hits.append(injector.faults[0].hits)
        assert hits[0] == hits[1] == 26

    def test_injection_is_not_reentrant(self):
        with inject_faults(Fault("vm.instruction", "runtime")):
            with pytest.raises(RuntimeError):
                with inject_faults(Fault("vm.instruction", "runtime")):
                    pass


class TestPromotedFunctionFaults:
    """Tier-up meets guarded execution: a profile-promoted artifact that
    soft-fails demotes through the same circuit breaker as an explicit
    ``FunctionCompile``, attributed to the *symbol* in the failure log."""

    @pytest.fixture()
    def promoted(self, hosted):
        hosted.hotspot.threshold = 4
        hosted.run("dbl[n_] := n + n")
        for _ in range(6):
            assert hosted.run("dbl[3]").to_python() == 6
        assert "dbl" in hosted.hotspot.promoted
        assert hosted.hotspot.promoted["dbl"].tier_kind == "compiled"
        return hosted

    def test_three_soft_failures_demote_the_promoted_artifact(self, promoted):
        with inject_faults(Fault("abort.check", "runtime", times=3)):
            for _ in range(3):
                # each call soft-fails in the compiled prologue and the
                # artifact's internal fallback still answers
                assert promoted.run("dbl[10]").to_python() == 20
        entry = promoted.hotspot.promoted["dbl"]
        assert entry.artifact_tier() is Tier.BYTECODE
        # the failure log names the promoted symbol, not a synthetic id
        assert [t.transition for t in failure_transitions("dbl")] == [
            (Tier.COMPILED, Tier.BYTECODE)
        ]
        # the demoted tier keeps serving the promoted dispatch path
        assert promoted.run("dbl[21]").to_python() == 42
        assert "dbl" in promoted.hotspot.promoted

    def test_exhausting_the_breaker_withdraws_the_promotion(self, promoted):
        with inject_faults(Fault("abort.check", "runtime", times=3)):
            for _ in range(3):
                promoted.run("dbl[10]")
        with inject_faults(Fault("vm.instruction", "runtime", times=3)):
            for _ in range(3):
                assert promoted.run("dbl[10]").to_python() == 20
        # the breaker bottomed out at the interpreter tier; the next
        # dispatch withdraws the promotion entirely
        assert promoted.run("dbl[4]").to_python() == 8
        assert "dbl" not in promoted.hotspot.promoted
        assert any(
            e.name == "dbl" and e.action == "demoted"
            for e in promoted.hotspot.events
        )
        assert [t.transition for t in failure_transitions("dbl")] == [
            (Tier.COMPILED, Tier.BYTECODE),
            (Tier.BYTECODE, Tier.INTERPRETER),
        ]
        # the known-bad definition stays blocked while it stays hot ...
        for _ in range(10):
            assert promoted.run("dbl[4]").to_python() == 8
        assert "dbl" not in promoted.hotspot.promoted
        # ... and redefinition lifts the block
        promoted.run("dbl[n_] := n * 2")
        for _ in range(6):
            assert promoted.run("dbl[5]").to_python() == 10
        assert "dbl" in promoted.hotspot.promoted

    def test_injected_fault_leaves_no_corrupted_state(self, promoted):
        before = _session_snapshot(promoted, "dbl")
        with inject_faults(Fault("abort.check", "overflow", after=1)):
            assert promoted.run("dbl[6]").to_python() == 12
        assert active_guard() is None
        assert not promoted.abort_pending()
        assert _session_snapshot(promoted, "dbl") == before
        assert promoted.run("dbl[2]").to_python() == 4


class TestTemplateTierFaults:
    """The baseline tier's demotion ladder, driven by the ``template.call``
    site: template → (lazy) bytecode → interpreter, one shared breaker."""

    @pytest.fixture()
    def template_promoted(self, hosted):
        # a threshold too high to reach keeps the entry on the template rung
        hosted.hotspot.threshold = 1000
        hosted.hotspot.template_threshold = 2
        hosted.run("tpl[n_] := n + n")
        for _ in range(4):
            assert hosted.run("tpl[3]").to_python() == 6
        assert hosted.hotspot.promoted["tpl"].tier_kind == "template"
        return hosted

    def test_three_injected_failures_demote_to_bytecode(
        self, template_promoted
    ):
        with inject_faults(Fault("template.call", "runtime", times=3)):
            for _ in range(3):
                # each call soft-fails at the stitched entry; the
                # interpreter fallback still answers
                assert template_promoted.run("tpl[10]").to_python() == 20
        entry = template_promoted.hotspot.promoted["tpl"]
        assert entry.artifact_tier() is Tier.BYTECODE
        assert [t.transition for t in failure_transitions("tpl")] == [
            (Tier.TEMPLATE, Tier.BYTECODE)
        ]
        # the lazily-compiled bytecode fallback keeps serving the dispatch
        assert template_promoted.run("tpl[21]").to_python() == 42
        assert "tpl" in template_promoted.hotspot.promoted

    def test_full_ladder_ends_with_withdrawal(self, template_promoted):
        with inject_faults(Fault("template.call", "runtime", times=3)):
            for _ in range(3):
                template_promoted.run("tpl[10]")
        with inject_faults(Fault("vm.instruction", "runtime", times=3)):
            for _ in range(3):
                assert template_promoted.run("tpl[10]").to_python() == 20
        # bottomed out at the interpreter: the next dispatch withdraws
        assert template_promoted.run("tpl[4]").to_python() == 8
        assert "tpl" not in template_promoted.hotspot.promoted
        assert [t.transition for t in failure_transitions("tpl")] == [
            (Tier.TEMPLATE, Tier.BYTECODE),
            (Tier.BYTECODE, Tier.INTERPRETER),
        ]
        # redefinition lifts the block and re-promotes on the template rung
        template_promoted.run("tpl[n_] := n * 2")
        for _ in range(4):
            assert template_promoted.run("tpl[5]").to_python() == 10
        assert "tpl" in template_promoted.hotspot.promoted

    def test_injected_abort_unwinds_cleanly(self, template_promoted):
        with inject_faults(Fault("template.call", "abort")):
            result = template_promoted.evaluate_protected(parse("tpl[10]"))
        assert full_form(result) == "$Aborted"
        assert not template_promoted.abort_pending()
        # no breaker damage: aborts are not soft failures
        entry = template_promoted.hotspot.promoted["tpl"]
        assert entry.artifact_tier() is Tier.TEMPLATE
        assert template_promoted.run("tpl[6]").to_python() == 12

    def test_injected_timeout_is_recorded_but_never_retried(
        self, template_promoted
    ):
        artifact = template_promoted.hotspot.promoted["tpl"].artifact
        with inject_faults(Fault("template.call", "timeout")):
            with pytest.raises(WolframTimeoutError):
                artifact(10)
        # a guard expiry does not trip the breaker
        assert artifact.breaker.tier is Tier.TEMPLATE
        assert artifact(10) == 20


class TestCorruptIrFaults:
    """The ``corrupt-ir`` fault class: a deliberately broken pass must be
    caught by the verify-each sanitizer and attributed *by name*."""

    SOURCE = (
        'Function[{Typed[x, "MachineInteger"]},'
        ' Module[{a = 0, i = 1}, While[i <= x, a = a + i; i = i + 1]; a]]'
    )

    def corrupted_pipeline(self, corruption, stage="wir"):
        from repro.compiler.options import CompilerOptions
        from repro.compiler.pipeline import CompilerPipeline
        from repro.testing import corrupt_ir_pass

        return CompilerPipeline(
            options=CompilerOptions(verify_ir="each"),
            user_passes=[corrupt_ir_pass(corruption, stage=stage)],
        )

    @pytest.mark.parametrize("corruption, stage, invariant", [
        ("drop-terminator", "wir", "cfg.terminated"),
        ("bad-target", "wir", "cfg.target"),
        ("duplicate-def", "wir", "ssa.unique-def"),
        ("dangling-operand", "wir", "ssa.dominance"),
        ("phi-edge", "wir", "phi.edges"),
        ("type-mismatch", "twir", "type.branch"),
    ])
    def test_corruption_caught_and_attributed(self, corruption, stage,
                                              invariant):
        from repro.errors import VerificationError

        pipeline = self.corrupted_pipeline(corruption, stage=stage)
        with pytest.raises(VerificationError) as failure:
            pipeline.compile_program(parse(self.SOURCE))
        assert failure.value.pass_name == f"user:corrupt-ir[{corruption}]"
        assert any(
            d.invariant == invariant for d in failure.value.diagnostics
        ), failure.value.diagnostics

    def test_corruption_unnoticed_without_sanitizer(self):
        # the same corruption with verify_ir='off' sails past the pass
        # boundary — the whole reason the sanitizer exists.  (It may still
        # blow up later in codegen, but not as a VerificationError.)
        from repro.compiler.options import CompilerOptions
        from repro.compiler.pipeline import CompilerPipeline
        from repro.errors import VerificationError
        from repro.testing import corrupt_ir_pass

        pipeline = CompilerPipeline(
            options=CompilerOptions(verify_ir="off"),
            user_passes=[corrupt_ir_pass("duplicate-def")],
        )
        try:
            pipeline.compile_program(parse(self.SOURCE))
        except VerificationError:  # pragma: no cover - would be a bug
            pytest.fail("verifier ran despite verify_ir='off'")
        except Exception:
            pass  # downstream breakage is allowed, attribution is lost

    def test_unknown_corruption_rejected(self):
        from repro.testing import corrupt_ir_pass

        with pytest.raises(ValueError):
            corrupt_ir_pass("no-such-corruption")
