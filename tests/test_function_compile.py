"""End-to-end FunctionCompile behaviour across the language surface."""

import math

import pytest

from repro.compiler import FunctionCompile
from repro.errors import CompilerError, TypeInferenceError


def fc(source: str, *args, **options):
    return FunctionCompile(source, **options)


class TestScalars:
    @pytest.mark.parametrize("source,args,expected", [
        ('Function[{Typed[x, "MachineInteger"]}, x + 1]', (41,), 42),
        ('Function[{Typed[x, "MachineInteger"]}, x*x - x]', (7,), 42),
        ('Function[{Typed[x, "Real64"]}, x / 2]', (5.0,), 2.5),
        ('Function[{Typed[x, "Real64"]}, x^3]', (2.0,), 8.0),
        ('Function[{Typed[x, "MachineInteger"]}, Mod[x, 7]]', (23,), 2),
        ('Function[{Typed[x, "MachineInteger"]}, Quotient[x, 7]]', (23,), 3),
        ('Function[{Typed[x, "MachineInteger"]}, Abs[x]]', (-9,), 9),
        ('Function[{Typed[x, "MachineInteger"]}, Max[x, 0]]', (-3,), 0),
        ('Function[{Typed[x, "MachineInteger"]}, Min[x, 10]]', (25,), 10),
        ('Function[{Typed[b, "Boolean"]}, !b]', (True,), False),
        ('Function[{Typed[b, "Boolean"]}, Boole[b]]', (True,), 1),
        ('Function[{Typed[x, "MachineInteger"]}, EvenQ[x]]', (4,), True),
        ('Function[{Typed[x, "MachineInteger"]}, OddQ[x]]', (4,), False),
        ('Function[{Typed[x, "MachineInteger"]}, BitXor[x, 5]]', (3,), 6),
        ('Function[{Typed[a, "MachineInteger"], Typed[b, "MachineInteger"]},'
         ' PowerMod[a, b, 97]]', (5, 13), pow(5, 13, 97)),
    ])
    def test_value(self, source, args, expected):
        assert fc(source)(*args) == expected

    def test_mixed_int_real_coerces(self):
        f = fc('Function[{Typed[x, "Real64"]}, x + 1]')
        assert f(2.5) == 3.5

    def test_transcendental(self):
        f = fc('Function[{Typed[x, "Real64"]}, Sin[x] + E^x]')
        assert f(0.5) == pytest.approx(math.sin(0.5) + math.exp(0.5))

    def test_complex(self):
        f = fc('Function[{Typed[z, "ComplexReal64"]}, z * Conjugate[z]]')
        assert f(3 + 4j) == pytest.approx(25.0)

    def test_complex_abs(self):
        f = fc('Function[{Typed[z, "ComplexReal64"]}, Abs[z]]')
        assert f(3 + 4j) == pytest.approx(5.0)

    def test_type_inference_minimal_annotations(self):
        """§4.4: only the inputs are annotated; everything else infers."""
        f = fc(
            'Function[{Typed[x, "MachineInteger"]},'
            ' Module[{a = x + 1, b = 0.5}, a * 2 + Floor[b]]]'
        )
        assert f(10) == 22

    def test_inference_failure_reports_source(self):
        with pytest.raises(TypeInferenceError):
            fc('Function[{Typed[s, "String"]}, s + 1]')

    def test_missing_annotation_rejected(self):
        with pytest.raises(CompilerError):
            fc("Function[{x}, x + 1]")


class TestControlFlow:
    def test_if(self):
        f = fc('Function[{Typed[x, "MachineInteger"]}, If[x > 0, x, -x]]')
        assert f(5) == 5
        assert f(-5) == 5

    def test_which(self):
        f = fc(
            'Function[{Typed[x, "MachineInteger"]},'
            ' Which[x < 0, -1, x == 0, 0, True, 1]]'
        )
        assert (f(-9), f(0), f(9)) == (-1, 0, 1)

    def test_while_loop(self):
        f = fc(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{s = 0, i = 1}, While[i <= n, s = s + i; i = i + 1]; s]]'
        )
        assert f(100) == 5050

    def test_for_loop(self):
        f = fc(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{s = 0}, For[i = 1, i <= n, i++, s += i]; s]]'
        )
        assert f(10) == 55

    def test_do_loop(self):
        f = fc(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{s = 0}, Do[s += i*i, {i, 1, n}]; s]]'
        )
        assert f(4) == 30

    def test_nested_loops(self):
        f = fc(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{s = 0, i = 1, j = 1},'
            '  While[i <= n, j = 1; While[j <= n, s = s + i*j; j = j + 1];'
            '   i = i + 1]; s]]'
        )
        assert f(3) == 36

    def test_break_and_continue(self):
        f = fc(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{s = 0, i = 0},'
            '  While[True, i = i + 1;'
            '   If[i > n, Break[]];'
            '   If[EvenQ[i], Continue[]];'
            '   s = s + i]; s]]'
        )
        assert f(6) == 9

    def test_return(self):
        f = fc(
            'Function[{Typed[x, "MachineInteger"]},'
            ' Module[{}, If[x > 0, Return[100]]; -1]]'
        )
        assert f(1) == 100
        assert f(-1) == -1

    def test_self_recursion(self):
        """The cfib pattern: an unbound callee matching our own signature
        compiles as a self-call (§4.1's example)."""
        f = fc(
            'Function[{Typed[n, "MachineInteger"]},'
            ' If[n < 1, 1, selfFib[n - 1] + selfFib[n - 2]]]'
        )
        assert f(10) == 144

    def test_comparison_chain(self):
        f = fc(
            'Function[{Typed[x, "MachineInteger"]}, If[0 < x < 10, 1, 0]]'
        )
        assert (f(5), f(50), f(-5)) == (1, 0, 0)


class TestTensors:
    def test_total_and_parts(self):
        f = fc(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Real64", 1]]]},'
            ' Total[v] + v[[1]] + v[[-1]]]'
        )
        assert f([1.0, 2.0, 3.0]) == 10.0

    def test_length(self):
        f = fc(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Integer64", 1]]]},'
            ' Length[v]]'
        )
        assert f([5, 6, 7]) == 3

    def test_table_map_fold(self):
        f = fc(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Fold[Plus, 0, Map[(# * #)&, Table[i, {i, 1, n}]]]]'
        )
        assert f(5) == 55

    def test_range(self):
        f = fc('Function[{Typed[n, "MachineInteger"]}, Total[Range[n]]]')
        assert f(100) == 5050

    def test_constant_array(self):
        f = fc(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Total[ConstantArray[7, n]]]'
        )
        assert f(3) == 21

    def test_list_literal(self):
        f = fc(
            'Function[{Typed[x, "Real64"]}, Total[{x, 2.0 x, 3.0 x}]]'
        )
        assert f(1.0) == 6.0

    def test_nested_list_literal_rank2(self):
        f = fc(
            'Function[{Typed[x, "Real64"]}, {{x, x}, {x, x}}[[2, 1]]]'
        )
        assert f(3.5) == 3.5

    def test_matrix_parts(self):
        f = fc(
            'Function[{Typed[m, TypeSpecifier["Tensor"["Real64", 2]]]},'
            ' m[[1, 1]] + m[[2, 2]]]'
        )
        assert f([[1.0, 2.0], [3.0, 4.0]]) == 5.0

    def test_dot_via_blas(self):
        f = fc(
            'Function[{Typed[a, TypeSpecifier["Tensor"["Real64", 2]]],'
            '          Typed[b, TypeSpecifier["Tensor"["Real64", 2]]]},'
            ' Dot[a, b]]'
        )
        out = f([[1.0, 0.0], [0.0, 2.0]], [[1.0, 2.0], [3.0, 4.0]])
        assert out.to_nested() == [[1.0, 2.0], [6.0, 8.0]]

    def test_tensor_plus_elementwise(self):
        f = fc(
            'Function[{Typed[a, TypeSpecifier["Tensor"["Real64", 1]]],'
            '          Typed[b, TypeSpecifier["Tensor"["Real64", 1]]]},'
            ' a + b]'
        )
        assert f([1.0, 2.0], [10.0, 20.0]).to_nested() == [11.0, 22.0]

    def test_scalar_broadcast_both_orders(self):
        f = fc(
            'Function[{Typed[a, TypeSpecifier["Tensor"["Real64", 1]]]},'
            ' 2.0 * a + 1.0]'
        )
        assert f([1.0, 2.0]).to_nested() == [3.0, 5.0]

    def test_negative_index_via_fallback(self):
        f = fc(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Integer64", 1]]],'
            '          Typed[i, "MachineInteger"]}, v[[i]]]'
        )
        assert f([10, 20, 30], -1) == 30
        assert f([10, 20, 30], 2) == 20

    def test_min_container_paper_example(self):
        """§4.4: container Min instantiates the Fold-based definition."""
        f = fc(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Integer64", 1]]]},'
            ' Min[v]]'
        )
        assert f([9, 3, 7]) == 3

    def test_nest_list(self):
        f = fc(
            'Function[{Typed[n, "MachineInteger"]},'
            ' NestList[(# * 2)&, 1, n]]'
        )
        assert f(4).to_nested() == [1, 2, 4, 8, 16]


class TestStrings:
    def test_string_length(self):
        f = fc('Function[{Typed[s, "String"]}, StringLength[s]]')
        assert f("hello") == 5

    def test_string_join(self):
        f = fc('Function[{Typed[s, "String"]}, StringJoin[s, "!"]]')
        assert f("hi") == "hi!"

    def test_utf8_bytes(self):
        f = fc(
            'Function[{Typed[s, "String"]},'
            ' Total[Native`UTF8Bytes[s]]]'
        )
        assert f("AB") == 65 + 66

    def test_character_codes_round_trip(self):
        f = fc(
            'Function[{Typed[s, "String"]},'
            ' FromCharacterCode[ToCharacterCode[s]]]'
        )
        assert f("round") == "round"

    def test_string_take_drop(self):
        f = fc(
            'Function[{Typed[s, "String"]},'
            ' StringJoin[StringTake[s, 2], StringDrop[s, 3]]]'
        )
        assert f("abcdef") == "abdef"

    def test_string_equality(self):
        f = fc(
            'Function[{Typed[a, "String"], Typed[b, "String"]}, a == b]'
        )
        assert f("x", "x") is True
        assert f("x", "y") is False


class TestFunctionValues:
    def test_branch_selected_builtin(self):
        """§3 F6's example: f = If[i == 0, Sin, Cos]; f[v]."""
        f = fc(
            'Function[{Typed[i, "MachineInteger"], Typed[v, "Real64"]},'
            ' Module[{g = If[i == 0, Sin, Cos]}, g[v]]]'
        )
        assert f(0, 0.5) == pytest.approx(math.sin(0.5))
        assert f(1, 0.5) == pytest.approx(math.cos(0.5))

    def test_function_typed_parameter(self):
        f = fc(
            'Function[{Typed[v, "Real64"],'
            ' Typed[g, TypeSpecifier[{"Real64"} -> "Real64"]]}, g[v] + 1.0]'
        )
        assert f(4.0, lambda x: x * 10) == 41.0

    def test_comparator_parameter(self):
        f = fc(
            'Function[{Typed[a, "MachineInteger"],'
            '          Typed[b, "MachineInteger"],'
            ' Typed[less, TypeSpecifier[{"Integer64", "Integer64"}'
            ' -> "Boolean"]]}, If[less[a, b], a, b]]'
        )
        assert f(3, 7, lambda a, b: a < b) == 3
        assert f(3, 7, lambda a, b: a > b) == 7


class TestBoundary:
    def test_argument_count_error_falls_to_runtime_error(self):
        from repro.errors import WolframRuntimeError

        f = fc('Function[{Typed[x, "MachineInteger"]}, x]')
        with pytest.raises(WolframRuntimeError):
            f(1, 2)

    def test_type_mismatch_rejected(self):
        from repro.errors import WolframRuntimeError

        f = fc('Function[{Typed[x, "MachineInteger"]}, x]')
        with pytest.raises(WolframRuntimeError):
            f("not an integer")

    def test_packed_array_accepted_directly(self):
        from repro.runtime import PackedArray

        f = fc(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Real64", 1]]]},'
            ' Total[v]]'
        )
        packed = PackedArray.from_nested([1.0, 2.0], "Real64")
        assert f(packed) == 3.0

    def test_caller_list_not_mutated(self):
        """F5 across the boundary: mutation in compiled code copies."""
        f = fc(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Integer64", 1]]]},'
            ' Module[{w = v}, Set[Part[w, 1], 99]; w[[1]]]]'
        )
        data = [1, 2, 3]
        assert f(data) == 99
        assert data == [1, 2, 3]

    def test_mexpr_arguments_unwrap(self):
        from repro.mexpr import parse

        f = fc('Function[{Typed[x, "MachineInteger"]}, x * 2]')
        assert f(parse("21")) == 42

    def test_signature_exposed(self):
        f = fc('Function[{Typed[x, "Real64"]}, x]')
        assert "Real64" in str(f.signature)
        assert "CompiledCodeFunction" in f.input_form()


class TestCopySemantics:
    def test_aliased_mutation_copies(self):
        """§4.5's x={...}; y=x; y[[1]]=3 case inside compiled code."""
        f = fc(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{a = Table[i, {i, 1, n}], s = 0},'
            '  Module[{b = a},'
            '   Set[Part[b, 1], 100];'
            '   a[[1]] * 1000 + b[[1]]]]]'
        )
        assert f(3) == 1100  # a untouched (1), b mutated (100)

    def test_unaliased_mutation_does_not_copy(self):
        source = (
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{a = Native`CreateTensor[n, 0], i = 1},'
            '  While[i <= n, Set[Part[a, i], i]; i = i + 1]; Total[a]]]'
        )
        f = fc(source)
        assert f(10) == 55
        # no Copy instruction inside the loop
        assert "CopiesInserted" not in (
            f.program.main_function().information
        ) or f.program.main_function().information["CopiesInserted"] == 0
