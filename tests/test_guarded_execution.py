"""Guarded execution: budgets, deadlines, constraint builtins, stats API.

The fault-injection counterpart lives in ``test_fault_injection.py``; this
file covers the guard subsystem itself and the guard/tier APIs.
"""

import time

import pytest

from repro.compiler import (
    FunctionCompile,
    FunctionCompileExportLibrary,
    LibraryFunctionLoad,
    install_engine_support,
)
from repro.compiler.api import clear_failure_records, failure_transitions
from repro.engine import Evaluator
from repro.errors import (
    WolframBudgetError,
    WolframRuntimeError,
    WolframTimeoutError,
    classify_runtime_error,
)
from repro.runtime.abort import abort_checks_enabled, attach_abort_source
from repro.runtime.guard import (
    FAILURE_LOG,
    CircuitBreaker,
    ExecutionGuard,
    FallbackStats,
    Tier,
    active_guard,
    guard_checkpoint,
    guard_scope,
)


@pytest.fixture()
def hosted():
    evaluator = Evaluator()
    install_engine_support(evaluator)
    return evaluator


@pytest.fixture(autouse=True)
def _clean_failure_log():
    clear_failure_records()
    yield
    clear_failure_records()


COUNTING_LOOP = (
    'Function[{Typed[n, "MachineInteger"]},'
    ' Module[{i = 0, s = 0},'
    '  While[i < n, s = s + 1; i = i + 1]; s]]'
)


class TestExecutionGuard:
    def test_no_guard_checkpoint_is_noop(self):
        assert active_guard() is None
        guard_checkpoint()  # must not raise

    def test_deadline_raises_timeout(self):
        with guard_scope(time_limit=0.02) as guard:
            time.sleep(0.03)
            with pytest.raises(WolframTimeoutError) as info:
                guard_checkpoint()
            assert info.value.guard is guard

    def test_step_budget_raises_budget_error(self):
        with guard_scope(step_budget=5):
            with pytest.raises(WolframBudgetError) as info:
                for _ in range(10):
                    guard_checkpoint()
            assert info.value.resource == "steps"

    def test_memory_budget(self):
        with guard_scope(memory_budget=100) as guard:
            guard.charge_memory(50)
            with pytest.raises(WolframBudgetError) as info:
                guard.charge_memory(51)
            assert info.value.resource == "memory"

    def test_guard_errors_are_soft_runtime_errors(self):
        assert issubclass(WolframTimeoutError, WolframRuntimeError)
        assert issubclass(WolframBudgetError, WolframRuntimeError)

    def test_nested_outer_deadline_fires_inside_inner_scope(self):
        outer = ExecutionGuard.with_time_limit(0.01)
        inner = ExecutionGuard.with_time_limit(60.0)
        with guard_scope(outer):
            with guard_scope(inner):
                time.sleep(0.02)
                with pytest.raises(WolframTimeoutError) as info:
                    guard_checkpoint()
                # the *outer* guard expired; its identity rides the error
                assert info.value.guard is outer

    def test_scopes_unwind(self):
        with guard_scope(step_budget=10) as outer:
            with guard_scope(step_budget=5) as inner:
                assert active_guard() is inner
            assert active_guard() is outer
        assert active_guard() is None


class TestConstrainedBuiltins:
    def test_time_constrained_aborts_runaway_loop(self, run):
        started = time.monotonic()
        result = run("TimeConstrained[While[True], 0.1]")
        assert result == "$Aborted"
        assert time.monotonic() - started < 5.0

    def test_time_constrained_returns_value_in_time(self, run):
        assert run("TimeConstrained[2 + 3, 10]") == "5"

    def test_time_constrained_interrupts_range_materialization(self, run):
        # the iterator build loop itself polls the guard: a 10^12-element
        # range must not run to completion before the deadline is noticed
        started = time.monotonic()
        assert run("TimeConstrained[Do[i, {i, 1, 10^12}], 0.2]") == "$Aborted"
        assert time.monotonic() - started < 5.0

    def test_memory_constrained_trips_before_materialization(self, run):
        # the range length is charged up front, so this returns immediately
        # instead of first building 10^9 elements
        started = time.monotonic()
        assert (
            run('MemoryConstrained[Table[i, {i, 1, 10^9}], 10000, "too big"]')
            == '"too big"'
        )
        assert time.monotonic() - started < 5.0

    def test_time_constrained_fail_expression(self, run):
        assert run('TimeConstrained[While[True], 0.05, "slow"]') == '"slow"'

    def test_time_constrained_keeps_session_alive(self, evaluator, run):
        run("x = 42")
        run("TimeConstrained[While[True], 0.05]")
        assert run("x + 1") == "43"

    def test_nested_time_constrained_outer_wins(self, run):
        # inner allows 50s but the outer 0.05s deadline must fire and be
        # handled by the *outer* TimeConstrained
        result = run(
            'TimeConstrained[TimeConstrained[While[True], 50], 0.05, "outer"]'
        )
        assert result == '"outer"'

    def test_nested_inner_expiry_handled_by_inner(self, run):
        result = run(
            'TimeConstrained['
            ' TimeConstrained[While[True], 0.05, "inner"], 50, "outer"]'
        )
        assert result == '"inner"'

    def test_memory_constrained_trips_on_large_table(self, run):
        assert run("MemoryConstrained[Table[i, {i, 200000}], 10000]") == (
            "$Aborted"
        )

    def test_memory_constrained_trips_on_allocation_heavy_body(self, run):
        # per-iteration expression construction is charged too, so the
        # budget fires mid-Table, not only on the materialized range
        assert run(
            "MemoryConstrained[Table[{i, i, i}, {i, 1000}], 5000]"
        ) == "$Aborted"

    def test_memory_constrained_passes_small_work(self, run):
        assert run("MemoryConstrained[1 + 1, 1000000]") == "2"

    def test_memory_constrained_fail_expression(self, run):
        assert run(
            'MemoryConstrained[Table[i, {i, 200000}], 1000, "big"]'
        ) == '"big"'

    def test_time_constrained_bounds_compiled_code(self, hosted):
        """Guard checkpoints ride compiled code's abort checks (§4.5)."""
        compiled = FunctionCompile(COUNTING_LOOP, evaluator=hosted)
        with guard_scope(time_limit=0.1):
            with pytest.raises(WolframTimeoutError):
                compiled(10 ** 12)

    def test_time_constrained_bounds_bytecode_vm(self, evaluator, run):
        run('cf = Compile[{{n, _Integer}}, '
            'Module[{i = 0}, While[i < n, i = i + 1]; i]]')
        result = run("TimeConstrained[cf[1000000000000], 0.1]")
        assert result == "$Aborted"


class TestStandaloneExport(object):
    """Satellite: §4.6 standalone mode — abort degrades to noop, guards
    still enforce deadlines by wall clock."""

    def test_exported_guard_polling_degrades_to_noop(self, tmp_path):
        path = str(tmp_path / "lib.py")
        FunctionCompileExportLibrary(path, COUNTING_LOOP)
        main = LibraryFunctionLoad(path)
        attach_abort_source(None)
        assert not abort_checks_enabled()
        # no abort source, no guard: checks are noops and the call completes
        assert main(10000) == 10000

    def test_exported_time_constraint_enforced_by_wall_clock(self, tmp_path):
        path = str(tmp_path / "lib.py")
        FunctionCompileExportLibrary(path, COUNTING_LOOP)
        main = LibraryFunctionLoad(path)
        attach_abort_source(None)
        started = time.monotonic()
        with guard_scope(time_limit=0.1):
            with pytest.raises(WolframTimeoutError):
                main(10 ** 12)
        assert time.monotonic() - started < 5.0
        # the guard scope is gone: subsequent calls are unconstrained again
        assert main(100) == 100


class TestClassification:
    """Satellite: caught exceptions become structured kinds; programming
    errors propagate."""

    def test_zero_division_classified(self):
        error = classify_runtime_error(ZeroDivisionError("x"))
        assert error.kind == "DivideByZero"

    def test_index_error_classified(self):
        assert classify_runtime_error(IndexError()).kind == "PartOutOfRange"

    def test_value_error_classified(self):
        assert classify_runtime_error(ValueError()).kind == "InvalidValue"

    def test_overflow_classified(self):
        assert classify_runtime_error(OverflowError()).kind == "NumericOverflow"

    def test_programming_error_reraises(self):
        with pytest.raises(AttributeError):
            classify_runtime_error(AttributeError("bug"))

    def test_structured_kind_reaches_warning_message(self, hosted):
        f = FunctionCompile(
            'Function[{Typed[x, "Real64"]}, 1.0 / x]', evaluator=hosted
        )
        f(0.0)
        assert any("DivideByZero" in m for m in hosted.messages)

    def test_attribute_error_in_generated_code_propagates(self, hosted):
        """A broken backend is a compiler bug, not a soft failure."""
        f = FunctionCompile(COUNTING_LOOP, evaluator=hosted)

        def broken_entry(n):
            raise AttributeError("backend bug")

        f._entry = broken_entry
        with pytest.raises(AttributeError):
            f(10)
        assert f.fallback_count == 0


class TestFallbackStats:
    """Satellite: FallbackStats replaces the bare mutable counter."""

    def test_stats_on_compiled_code_function(self, hosted):
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]}, n * n]', evaluator=hosted
        )
        assert isinstance(f.stats(), FallbackStats)
        f(4)
        assert f.stats().calls == {"compiled": 1}
        f(2 ** 40)  # overflow -> interpreter rerun
        stats = f.stats()
        assert stats.interpreter_reruns == 1
        assert stats.kinds == {"IntegerOverflow": 1}
        assert f.fallback_count == 1  # compatibility alias

    def test_stats_reset(self, hosted):
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]}, n * n]', evaluator=hosted
        )
        f(2 ** 40)
        f.reset_tiers()
        stats = f.stats()
        assert stats.interpreter_reruns == 0
        assert stats.calls == {}
        assert f.current_tier is Tier.COMPILED

    def test_stats_on_bytecode_compiled_function(self, evaluator):
        from repro.bytecode import compile_function
        from repro.mexpr import parse

        f = compile_function(parse("{{n, _Integer}}"), parse("2^n"), evaluator)
        f(10)
        f(100)  # overflow -> fallback
        stats = f.stats()
        assert stats.calls["bytecode"] == 2
        assert stats.interpreter_reruns == 1
        assert f.fallback_count == 1

    def test_cli_stats_flag(self):
        import io

        from repro.__main__ import repl

        source = io.StringIO(
            'f = FunctionCompile[Function[{Typed[n, "MachineInteger"]},'
            " n*n*n]]\nf[3000000000]\n"
        )
        out = io.StringIO()
        assert repl(input_stream=source, output=out, show_stats=True) == 0
        transcript = out.getvalue()
        assert "guarded execution statistics" in transcript
        assert "IntegerOverflow" in transcript

    def test_cli_rejects_unknown_arguments(self):
        from repro.__main__ import main

        assert main(["--bogus"]) == 2


class TestCircuitBreaker:
    def test_demotes_after_threshold(self):
        breaker = CircuitBreaker("f", threshold=3, log=FAILURE_LOG)
        assert breaker.tier is Tier.COMPILED
        breaker.record_failure(Tier.COMPILED, "IntegerOverflow")
        breaker.record_failure(Tier.COMPILED, "IntegerOverflow")
        assert breaker.tier is Tier.COMPILED
        breaker.record_failure(Tier.COMPILED, "IntegerOverflow")
        assert breaker.tier is Tier.BYTECODE

    def test_unavailable_tier_demotes_immediately(self):
        breaker = CircuitBreaker("f", start=Tier.BYTECODE)
        breaker.unavailable(Tier.BYTECODE, "no VM translation")
        assert breaker.tier is Tier.INTERPRETER

    def test_full_demotion_chain_on_real_function(self, hosted):
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]}, n * n * n]',
            evaluator=hosted,
        )
        big = 3 * 10 ** 9
        for _ in range(3):
            assert f(big) == big ** 3  # interpreter rerun each time
        assert f.current_tier is Tier.BYTECODE
        assert f(5) == 125  # runs on the VM tier now
        assert f.stats().calls["bytecode"] == 1
        for _ in range(3):
            assert f(big) == big ** 3
        assert f.current_tier is Tier.INTERPRETER
        assert f(5) == 125  # interpreter-direct, still correct
        chain = [
            (r.transition[0], r.transition[1])
            for r in failure_transitions(f.program.main)
        ]
        assert chain == [
            (Tier.COMPILED, Tier.BYTECODE),
            (Tier.BYTECODE, Tier.INTERPRETER),
        ]

    def test_guard_expiry_does_not_trip_breaker(self, hosted):
        f = FunctionCompile(COUNTING_LOOP, evaluator=hosted)
        for _ in range(4):
            with guard_scope(time_limit=0.02):
                with pytest.raises(WolframTimeoutError):
                    f(10 ** 12)
        assert f.current_tier is Tier.COMPILED
        assert f(100) == 100
