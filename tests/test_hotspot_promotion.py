"""Profile-guided tier-up: promotion, gating, invalidation, demotion.

The promotion half of tier governance (`runtime/hotspot.py`): hot DownValue
definitions are synthesized into typed functions and promoted to the
compiled/bytecode tiers; the existing circuit breaker demotes a bad
promotion; any redefinition invalidates the promoted artifact in the same
``state_version`` bump.
"""

import pytest

from repro.compiler import install_engine_support
from repro.compiler.api import clear_failure_records, failure_records
from repro.engine import Evaluator
from repro.mexpr import full_form, parse
from repro.runtime.guard import Tier
from repro.runtime.hotspot import (
    DEFAULT_THRESHOLD,
    HotspotProfiler,
    disable_hotspot,
    enable_hotspot,
    threshold_from_environment,
)


@pytest.fixture()
def hosted():
    session = Evaluator(recursion_limit=8192)
    install_engine_support(session)
    session.hotspot.threshold = 4
    return session


@pytest.fixture(autouse=True)
def _clean_failure_log():
    clear_failure_records()
    yield
    clear_failure_records()


def _define_fib(session):
    session.run("fib[0] = 0")
    session.run("fib[1] = 1")
    session.run("fib[n_] := fib[n-1] + fib[n-2]")


class TestPromotion:
    def test_recursive_fib_promotes_and_stays_correct(self, hosted):
        _define_fib(hosted)
        assert hosted.run("fib[20]").to_python() == 6765
        assert "fib" in hosted.hotspot.promoted
        entry = hosted.hotspot.promoted["fib"]
        assert entry.tier_kind == "compiled"
        # promoted dispatch produces the same values as rule dispatch
        assert hosted.run("fib[25]").to_python() == 75025
        assert entry.hits > 0

    def test_multi_rule_literal_synthesis_preserves_rule_order(self, hosted):
        """Multiple literal base cases fold into an If chain in rule order."""
        hosted.run("step[0] = 100")
        hosted.run("step[1] = 200")
        hosted.run("step[2] = 300")
        hosted.run("step[n_] := n * 10")
        for _ in range(6):
            assert hosted.run("step[7]").to_python() == 70
        assert "step" in hosted.hotspot.promoted
        assert hosted.run("step[0]").to_python() == 100
        assert hosted.run("step[1]").to_python() == 200
        assert hosted.run("step[2]").to_python() == 300
        assert hosted.run("step[3]").to_python() == 30

    def test_promotion_event_and_stats_table(self, hosted):
        _define_fib(hosted)
        hosted.run("fib[15]")
        events = [(e.name, e.action) for e in hosted.hotspot.events]
        assert ("fib", "promoted") in events
        rows = hosted.hotspot.table()
        assert rows and rows[0][0] == "fib"
        assert rows[0][2] == "promoted:compiled"

    def test_real_typed_definition_promotes(self, hosted):
        hosted.run("scale[x_Real] := x * 2.0 + 1.0")
        for _ in range(6):
            assert hosted.run("scale[3.0]").to_python() == 7.0
        assert "scale" in hosted.hotspot.promoted
        assert hosted.run("scale[0.5]").to_python() == 2.0

    def test_bare_evaluator_has_no_profiler(self):
        session = Evaluator()
        assert session.hotspot is None
        session.run("f[n_] := n + 1")
        for _ in range(40):
            assert session.run("f[1]").to_python() == 2

    def test_enable_hotspot_is_idempotent(self):
        session = Evaluator()
        first = enable_hotspot(session, threshold=7)
        second = enable_hotspot(session, threshold=99)
        assert first is second
        assert session.hotspot.threshold == 7
        disable_hotspot(session)
        assert session.hotspot is None


class TestGating:
    def test_symbolic_arguments_fall_through_to_rules(self, hosted):
        hosted.run("twice[n_] := n + n")
        for _ in range(6):
            hosted.run("twice[3]")
        assert "twice" in hosted.hotspot.promoted
        # a symbolic argument fails the type gate; the general rule still
        # applies interpretively
        assert full_form(hosted.run("twice[y]")) == "Plus[y, y]"
        # the promotion survives the gated call and keeps working
        assert "twice" in hosted.hotspot.promoted
        assert hosted.run("twice[21]").to_python() == 42

    def test_out_of_range_integer_is_evaluated_exactly(self, hosted):
        hosted.run("dbl[n_] := n + n")
        for _ in range(6):
            hosted.run("dbl[3]")
        assert "dbl" in hosted.hotspot.promoted
        huge = 2 ** 80
        assert hosted.run(f"dbl[{huge}]").to_python() == 2 * huge
        # no soft-failure message: the gate declined before the artifact ran
        assert not hosted.messages

    def test_observed_int_gate_rejects_reals(self, hosted):
        hosted.run("dbl[n_] := n + n")
        for _ in range(6):
            hosted.run("dbl[3]")
        assert "dbl" in hosted.hotspot.promoted
        assert hosted.hotspot.promoted["dbl"].kinds == ("i",)
        assert hosted.run("dbl[1.25]").to_python() == 2.5

    def test_unsupported_bodies_are_blocked_not_promoted(self, hosted):
        hosted.run('name[n_] := StringJoin["x", "y"]')
        for _ in range(8):
            hosted.run("name[1]")
        assert "name" not in hosted.hotspot.promoted
        assert any(e.action == "blocked" for e in hosted.hotspot.events)

    def test_integer_division_is_never_promoted(self, hosted):
        """Machine integer division (5/2 -> 2) would diverge from the
        engine's real-valued division (5/2 -> 2.5)."""
        hosted.run("half[n_] := n / 2")
        for _ in range(8):
            result = hosted.run("half[5]")
        assert "half" not in hosted.hotspot.promoted
        assert result.to_python() == 2.5

    def test_overflow_soft_fails_to_exact_interpretation(self, hosted):
        hosted.run("cube[n_] := n*n*n")
        for _ in range(6):
            assert hosted.run("cube[5]").to_python() == 125
        assert "cube" in hosted.hotspot.promoted
        # 1e10^3 overflows int64 in the artifact; the interpreter answers
        value = hosted.run("cube[10000000000]").to_python()
        assert value == 10 ** 30
        assert failure_records(kind="IntegerOverflow")
        assert any("reverting to uncompiled" in m for m in hosted.messages)


class TestInvalidation:
    def test_set_invalidates_in_same_state_version_bump(self, hosted):
        hosted.run("g[0] = 0")
        hosted.run("g[n_] := g[n-1] + 2")
        assert hosted.run("g[10]").to_python() == 20
        assert "g" in hosted.hotspot.promoted
        stale = hosted.hotspot.promoted["g"]
        version_before = hosted.state.state_version
        hosted.run("g[n_] := g[n-1] + 3")  # one Set, one version bump
        assert hosted.state.state_version == version_before + 1
        # the very next call sees the new rule, not the stale artifact
        assert hosted.run("g[10]").to_python() == 30
        assert hosted.hotspot.promoted.get("g") is not stale
        assert any(
            e.name == "g" and e.action == "invalidated"
            for e in hosted.hotspot.events
        )

    def test_clear_invalidates_promotion(self, hosted):
        hosted.run("h[n_] := n + 1")
        for _ in range(6):
            hosted.run("h[1]")
        assert "h" in hosted.hotspot.promoted
        hosted.run("Clear[h]")
        assert full_form(hosted.run("h[1]")) == "h[1]"
        hosted.run("h[n_] := n + 5")
        assert hosted.run("h[1]").to_python() == 6

    def test_block_scoped_redefinition_is_honoured(self, hosted):
        hosted.run("k[n_] := n + 1")
        for _ in range(6):
            hosted.run("k[1]")
        assert "k" in hosted.hotspot.promoted
        result = hosted.run("Block[{k}, k[n_] := n + 100; k[1]]")
        assert result.to_python() == 101
        # after the Block exits the original definition is live again
        assert hosted.run("k[1]").to_python() == 2


class TestDemotion:
    def test_exhausted_breaker_withdraws_the_promotion(self, hosted):
        hosted.run("p[n_] := n + 1")
        for _ in range(6):
            hosted.run("p[1]")
        entry = hosted.hotspot.promoted["p"]
        # force the artifact's breaker all the way down
        entry.artifact._breaker.tier = Tier.INTERPRETER
        assert hosted.run("p[41]").to_python() == 42
        assert "p" not in hosted.hotspot.promoted
        assert any(
            e.name == "p" and e.action == "demoted"
            for e in hosted.hotspot.events
        )
        # blocked: staying hot does not re-promote the known-bad definition
        for _ in range(10):
            hosted.run("p[1]")
        assert "p" not in hosted.hotspot.promoted
        # ... until the definition changes
        hosted.run("p[n_] := n + 2")
        for _ in range(6):
            hosted.run("p[1]")
        assert "p" in hosted.hotspot.promoted

    def test_template_tier_kept_when_compiled_tier_unavailable(
        self, hosted, monkeypatch
    ):
        from repro.errors import CompilerError

        def refuse(*args, **kwargs):
            raise CompilerError("compiled tier unavailable in this test")

        monkeypatch.setattr("repro.compiler.api.FunctionCompile", refuse)
        hosted.run("q[n_] := n * 3")
        for _ in range(6):
            assert hosted.run("q[2]").to_python() == 6
        # the template rung promoted early; the tier-up to compiled was
        # refused, so the entry keeps its template artifact permanently
        assert "q" in hosted.hotspot.promoted
        entry = hosted.hotspot.promoted["q"]
        assert entry.tier_kind == "template"
        assert entry.upgrade_blocked
        assert hosted.run("q[14]").to_python() == 42

    def test_bytecode_tier_promotion_when_template_rung_disabled(
        self, hosted, monkeypatch
    ):
        from repro.errors import CompilerError

        def refuse(*args, **kwargs):
            raise CompilerError("compiled tier unavailable in this test")

        monkeypatch.setattr("repro.compiler.api.FunctionCompile", refuse)
        hosted.hotspot.template_enabled = False
        hosted.run("q[n_] := n * 3")
        for _ in range(6):
            assert hosted.run("q[2]").to_python() == 6
        assert "q" in hosted.hotspot.promoted
        assert hosted.hotspot.promoted["q"].tier_kind == "bytecode"
        assert hosted.run("q[14]").to_python() == 42

    def test_recursive_definition_promotes_on_the_template_rung(
        self, hosted, monkeypatch
    ):
        from repro.errors import CompilerError

        def refuse(*args, **kwargs):
            raise CompilerError("compiled tier unavailable in this test")

        monkeypatch.setattr("repro.compiler.api.FunctionCompile", refuse)
        _define_fib(hosted)
        assert hosted.run("fib[15]").to_python() == 610
        # unlike the VM, the stitched tier supports direct self-calls, so
        # recursion still gets a (template) promotion without FunctionCompile
        assert "fib" in hosted.hotspot.promoted
        assert hosted.hotspot.promoted["fib"].tier_kind == "template"
        assert hosted.run("fib[20]").to_python() == 6765

    def test_recursive_definition_needs_a_self_calling_tier(
        self, hosted, monkeypatch
    ):
        from repro.errors import CompilerError

        def refuse(*args, **kwargs):
            raise CompilerError("compiled tier unavailable in this test")

        monkeypatch.setattr("repro.compiler.api.FunctionCompile", refuse)
        hosted.hotspot.template_enabled = False
        _define_fib(hosted)
        assert hosted.run("fib[15]").to_python() == 610
        # the VM has no self-call: recursion is not promoted to bytecode
        assert "fib" not in hosted.hotspot.promoted


class TestThresholdKnob:
    def test_environment_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOTSPOT_THRESHOLD", "3")
        assert threshold_from_environment() == 3
        profiler = HotspotProfiler()
        assert profiler.threshold == 3

    def test_environment_threshold_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_HOTSPOT_THRESHOLD", raising=False)
        assert threshold_from_environment() == DEFAULT_THRESHOLD
        monkeypatch.setenv("REPRO_HOTSPOT_THRESHOLD", "not-a-number")
        assert threshold_from_environment() == DEFAULT_THRESHOLD
        monkeypatch.setenv("REPRO_HOTSPOT_THRESHOLD", "-5")
        assert threshold_from_environment() == 1

    def test_below_threshold_no_promotion(self):
        session = Evaluator()
        install_engine_support(session)
        session.hotspot.threshold = 1000
        session.hotspot.template_enabled = False
        session.run("r[n_] := n + 1")
        for _ in range(20):
            session.run("r[1]")
        assert "r" not in session.hotspot.promoted
        assert session.hotspot.counts["r"] == 20


class TestStatsSurface:
    def test_stats_report_includes_hot_function_table(self, hosted):
        import io

        from repro.__main__ import _print_session_stats

        _define_fib(hosted)
        hosted.run("fib[15]")
        out = io.StringIO()
        _print_session_stats(hosted, out)
        text = out.getvalue()
        assert "hot functions" in text
        assert "fib" in text
        assert "promoted:compiled" in text

    def test_parse_roundtrip_for_promoted_result(self, hosted):
        """Promoted results re-enter the evaluator as ordinary MExprs."""
        _define_fib(hosted)
        hosted.run("fib[15]")
        assert full_form(parse("fib[10] + fib[10]")) == \
            "Plus[fib[10], fib[10]]"
        assert hosted.run("fib[10] + fib[10]").to_python() == 110
