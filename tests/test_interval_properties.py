"""Property tests: interval arithmetic vs concrete int64 semantics.

The soundness of every elided check reduces to one algebraic claim: the
abstract transfer functions over-approximate the concrete operations.
Hypothesis drives that claim with boundary-biased integers (int64 edges
get extra weight).  The suite is skipped gracefully where hypothesis is
not installed (the CI image has it; the baked toolchain may not).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.analyze.dataflow import INT64_MAX, INT64_MIN, Interval  # noqa: E402

#: concrete values with the int64 boundary over-represented
boundary_ints = st.one_of(
    st.sampled_from([
        INT64_MAX, INT64_MAX - 1, INT64_MIN, INT64_MIN + 1, -1, 0, 1,
    ]),
    st.integers(min_value=INT64_MIN * 2, max_value=INT64_MAX * 2),
)


@st.composite
def interval_with_member(draw):
    """A (possibly half-unbounded) interval plus one value inside it."""
    value = draw(boundary_ints)
    lo_slack = draw(st.integers(min_value=0, max_value=1 << 70))
    hi_slack = draw(st.integers(min_value=0, max_value=1 << 70))
    lo = None if draw(st.booleans()) else value - lo_slack
    hi = None if draw(st.booleans()) else value + hi_slack
    return Interval(lo, hi), value


@settings(max_examples=300, deadline=None)
@given(interval_with_member(), interval_with_member())
def test_add_over_approximates(left, right):
    (a, x), (b, y) = left, right
    assert a.add(b).contains(x + y)


@settings(max_examples=300, deadline=None)
@given(interval_with_member(), interval_with_member())
def test_subtract_over_approximates(left, right):
    (a, x), (b, y) = left, right
    assert a.subtract(b).contains(x - y)


@settings(max_examples=300, deadline=None)
@given(interval_with_member(), interval_with_member())
def test_multiply_over_approximates(left, right):
    (a, x), (b, y) = left, right
    assert a.multiply(b).contains(x * y)


@settings(max_examples=300, deadline=None)
@given(interval_with_member())
def test_negate_over_approximates(pair):
    a, x = pair
    assert a.negate().contains(-x)


@settings(max_examples=300, deadline=None)
@given(interval_with_member(), interval_with_member())
def test_fits_int64_is_a_proof(left, right):
    """The elision criterion itself: when the abstract sum claims to fit,
    the concrete sum must be a legal int64 — no overflow trap possible."""
    (a, x), (b, y) = left, right
    if a.add(b).fits_int64():
        assert INT64_MIN <= x + y <= INT64_MAX
    if a.multiply(b).fits_int64():
        assert INT64_MIN <= x * y <= INT64_MAX


@settings(max_examples=300, deadline=None)
@given(interval_with_member(), interval_with_member())
def test_union_and_widen_contain_both(left, right):
    (a, x), (b, y) = left, right
    union = a.union(b)
    assert union.contains(x) and union.contains(y)
    widened = a.widen(b)
    assert widened.contains(x) and widened.contains(y)


@settings(max_examples=300, deadline=None)
@given(interval_with_member())
def test_widen_reaches_fixpoint(pair):
    """Widening is ascending and idempotent once a bound escapes —
    the termination argument for the worklist loop."""
    a, _ = pair
    grown = a.widen(Interval(None, None))
    assert grown.is_top
    assert grown.widen(grown).is_top


@settings(max_examples=300, deadline=None)
@given(interval_with_member(), interval_with_member())
def test_intersect_is_exact_meet(left, right):
    (a, x), (b, _) = left, right
    meet = a.intersect(b)
    assert meet.contains(x) == (a.contains(x) and b.contains(x))


@settings(max_examples=300, deadline=None)
@given(interval_with_member())
def test_clamp_result_fits(pair):
    a, x = pair
    clamped = a.clamp_int64()
    assert clamped.fits_int64() or clamped.is_empty
    if INT64_MIN <= x <= INT64_MAX:
        assert clamped.contains(x)
