"""The IR verifier and the verify-each sanitizer (repro.analyze.verify)."""

import pytest

from repro.analyze import (
    Diagnostic,
    errors,
    format_report,
    verify_function,
    verify_program,
    worst_severity,
)
from repro.analyze.diagnostics import position_to_line_column
from repro.compiler.options import CompilerOptions
from repro.compiler.pipeline import CompilerPipeline
from repro.compiler.wir.function_module import FunctionModule
from repro.compiler.wir.instructions import (
    BranchInstr,
    ConstantInstr,
    CopyInstr,
    JumpInstr,
    PhiInstr,
    ReturnInstr,
    Value,
)
from repro.errors import VerificationError
from repro.mexpr import parse

LOOP_SOURCE = (
    'Function[{Typed[x, "MachineInteger"]},'
    ' Module[{a = 0, i = 1}, While[i <= x, a = a + i; i = i + 1]; a]]'
)


def straight_line_function() -> FunctionModule:
    function = FunctionModule("F")
    block = function.new_block("entry")
    value = Value("c")
    block.append(ConstantInstr(value, 7))
    block.terminator = ReturnInstr(value)
    return function


def invariants(diagnostics) -> set:
    return {d.invariant for d in diagnostics}


class TestCfgChecks:
    def test_clean_function_verifies(self):
        assert verify_function(straight_line_function()) == []

    def test_missing_terminator(self):
        function = straight_line_function()
        function.blocks[function.entry].terminator = None
        assert "cfg.terminated" in invariants(verify_function(function))

    def test_unknown_branch_target(self):
        function = straight_line_function()
        function.blocks[function.entry].terminator = JumpInstr("nowhere")
        assert "cfg.target" in invariants(verify_function(function))

    def test_broken_cfg_short_circuits_dataflow_checks(self):
        # dominance analysis over a malformed CFG is meaningless; only the
        # structural findings are reported
        function = straight_line_function()
        function.blocks[function.entry].terminator = None
        found = verify_function(function)
        assert invariants(found) == {"cfg.terminated"}

    def test_unreachable_block_is_a_warning(self):
        function = straight_line_function()
        orphan = function.new_block("orphan")
        orphan.terminator = ReturnInstr(None)
        found = verify_function(function)
        assert not errors(found)
        assert "cfg.unreachable" in invariants(found)

    def test_entry_with_predecessors(self):
        function = straight_line_function()
        loop_back = function.new_block("back")
        loop_back.terminator = JumpInstr(function.entry)
        # make the back block reachable to focus the finding
        assert "cfg.entry" in invariants(verify_function(function))


class TestSsaChecks:
    def test_duplicate_definition(self):
        function = straight_line_function()
        block = function.blocks[function.entry]
        value = block.instructions[0].result
        block.instructions.append(CopyInstr(value, [value]))
        assert "ssa.unique-def" in invariants(verify_function(function))

    def test_undefined_operand(self):
        function = straight_line_function()
        block = function.blocks[function.entry]
        block.terminator = ReturnInstr(Value("ghost"))
        assert "ssa.dominance" in invariants(verify_function(function))

    def test_use_not_dominated_by_definition(self):
        function = FunctionModule("F")
        entry = function.new_block("entry")
        then_block = function.new_block("then")
        else_block = function.new_block("else")
        join = function.new_block("join")
        condition = Value("cond")
        entry.append(ConstantInstr(condition, True))
        entry.terminator = BranchInstr(
            condition, then_block.name, else_block.name
        )
        only_then = Value("t")
        then_block.append(ConstantInstr(only_then, 1))
        then_block.terminator = JumpInstr(join.name)
        else_block.terminator = JumpInstr(join.name)
        join.terminator = ReturnInstr(only_then)  # not on the else path
        assert "ssa.dominance" in invariants(verify_function(function))

    def test_phi_edges_must_match_predecessors(self):
        function = FunctionModule("F")
        entry = function.new_block("entry")
        join = function.new_block("join")
        value = Value("v")
        entry.append(ConstantInstr(value, 1))
        entry.terminator = JumpInstr(join.name)
        phi = PhiInstr(Value("p"), [
            (entry.name, value), ("no-such-block", value),
        ])
        join.phis.append(phi)
        join.terminator = ReturnInstr(phi.result)
        assert "phi.edges" in invariants(verify_function(function))


class TestPipelineIntegration:
    def test_real_compile_verifies_cleanly(self):
        pipeline = CompilerPipeline()
        program = pipeline.compile_program(parse(LOOP_SOURCE))
        assert not errors(verify_program(program))

    def test_verify_each_compile_succeeds(self):
        pipeline = CompilerPipeline(
            options=CompilerOptions(verify_ir="each")
        )
        program = pipeline.compile_program(parse(LOOP_SOURCE))
        assert pipeline.verify_runs > 0
        assert program.metadata["verify"]["mode"] == "each"
        assert program.metadata["verify"]["runs"] == pipeline.verify_runs

    def test_verifier_time_excluded_from_pass_report(self):
        pipeline = CompilerPipeline(
            options=CompilerOptions(verify_ir="each")
        )
        pipeline.compile_program(parse(LOOP_SOURCE))
        assert pipeline.verify_seconds > 0.0
        assert not any(
            name.startswith("verify") for name in pipeline.pass_report()
        )

    def test_verify_off_by_default(self, monkeypatch):
        # The CI static-analysis job exports REPRO_VERIFY_IR=each for the
        # whole suite; clear it so this test observes the built-in default.
        monkeypatch.delenv("REPRO_VERIFY_IR", raising=False)
        pipeline = CompilerPipeline()
        program = pipeline.compile_program(parse(LOOP_SOURCE))
        assert pipeline.verify_runs == 0
        assert "verify" not in program.metadata


class TestOptions:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_IR", raising=False)
        assert CompilerOptions().verify_ir == "off"

    @pytest.mark.parametrize("raw, expected", [
        ("0", "off"), ("1", "final"), ("each", "each"),
        ("EACH", "each"), ("on", "final"), ("garbage", "off"),
    ])
    def test_env_spellings(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_VERIFY_IR", raw)
        assert CompilerOptions().verify_ir == expected

    def test_from_wolfram_spellings(self):
        build = CompilerOptions.from_wolfram
        assert build({"VerifyIR": True}).verify_ir == "final"
        assert build({"VerifyIR": False}).verify_ir == "off"
        assert build({"VerifyIR": "Each"}).verify_ir == "each"


class TestErrorShape:
    def test_verification_error_to_dict(self):
        diagnostic = Diagnostic(
            invariant="cfg.terminated", message="no terminator",
            function="Main", block="entry(1)",
        )
        error = VerificationError("cse", [diagnostic], function="Main")
        payload = error.to_dict()
        assert payload["kind"] == "IRVerification"
        assert payload["pass"] == "cse"
        assert payload["function"] == "Main"
        assert payload["diagnostics"][0]["invariant"] == "cfg.terminated"
        # every Diagnostic key is always present (stable schema)
        assert set(payload["diagnostics"][0]) == {
            "invariant", "severity", "message", "function", "block",
            "instruction", "source", "position", "line", "column", "data",
        }

    def test_report_orders_errors_first(self):
        report = format_report([
            Diagnostic(invariant="cfg.unreachable", message="w",
                       severity="warning"),
            Diagnostic(invariant="ssa.unique-def", message="e"),
        ])
        assert report.splitlines()[0].startswith("error:")

    def test_worst_severity(self):
        assert worst_severity([]) is None
        assert worst_severity([
            Diagnostic(invariant="x", message="", severity="info"),
            Diagnostic(invariant="y", message="", severity="warning"),
        ]) == "warning"

    def test_position_to_line_column(self):
        text = "abc\ndef\nghi"
        assert position_to_line_column(text, 0) == (1, 1)
        assert position_to_line_column(text, 4) == (2, 1)
        assert position_to_line_column(text, 9) == (3, 2)
