"""The hygienic macro system (§4.2)."""

import pytest

from repro.compiler.macros import (
    MacroEnvironment,
    MacroExpander,
    default_macro_environment,
    register_macro,
)
from repro.errors import MacroExpansionError
from repro.mexpr import full_form, parse


def expand(source: str, environment=None, options=None) -> str:
    expander = MacroExpander(
        environment or default_macro_environment(), options
    )
    return full_form(expander.expand(parse(source)))


class TestPaperAndMacro:
    """§4.2's RegisterMacro[macroEnv, And, ...] rules, rule by rule."""

    def test_unary_rule(self):
        assert expand("And[x]") == "SameQ[x, True]"

    def test_false_short_circuit_first(self):
        assert expand("And[False, anything]") == "False"

    def test_false_second(self):
        assert expand("And[x, False]") == "False"

    def test_true_skipped(self):
        assert expand("And[True, x]") == "SameQ[x, True]"

    def test_binary_desugars_to_if(self):
        assert expand("And[a, b]") == (
            "If[SameQ[a, True], SameQ[b, True], False]"
        )

    def test_nary_nests(self):
        result = expand("And[a, b, c]")
        # And[And[a, b], c] after rule 6, then both desugar to Ifs
        assert result.count("If[") == 2

    def test_or_rules(self):
        assert expand("Or[True, x]") == "True"
        assert expand("Or[False, x]") == "SameQ[x, True]"
        assert expand("Or[a, b]") == (
            "If[SameQ[a, True], True, SameQ[b, True]]"
        )


class TestHygiene:
    """§4.2: 'the key distinction being that substitution is hygienic'."""

    def test_introduced_binder_renamed(self):
        env = MacroEnvironment()
        register_macro(env, "Twice",
                       "Twice[e_] -> Module[{tmp$ = e}, tmp$ + tmp$]")
        result = expand("Twice[5]", env)
        assert "tmp$" in result
        assert "tmp$ =" not in result  # renamed: tmp$N, not bare tmp$

    def test_no_capture_of_user_variable(self):
        env = MacroEnvironment()
        register_macro(env, "Twice",
                       "Twice[e_] -> Module[{tmp$ = e}, tmp$ + tmp$]")
        # the user's own `tmp$`-free variable must not be captured
        result = expand("Twice[x + 1]", env)
        expansion_a = expand("Twice[a]", env)
        expansion_b = expand("Twice[a]", env)
        # fresh names per expansion
        assert expansion_a != expansion_b

    def test_nested_expansions_get_distinct_names(self):
        env = MacroEnvironment()
        register_macro(env, "Twice",
                       "Twice[e_] -> Module[{tmp$ = e}, tmp$ + tmp$]")
        result = expand("Twice[Twice[1]]", env)
        import re

        names = set(re.findall(r"tmp\$\d+", result))
        assert len(names) == 2


class TestExpansionMechanics:
    def test_fixed_point_termination(self):
        env = MacroEnvironment()
        register_macro(env, "Ping", "Ping[x_] -> Pong[x]")
        register_macro(env, "Pong", "Pong[x_] -> Done[x]")
        assert expand("Ping[1]", env) == "Done[1]"

    def test_divergent_macro_detected(self):
        env = MacroEnvironment()
        register_macro(env, "Loop", "Loop[x_] -> Loop[Loop[x]]")
        with pytest.raises(MacroExpansionError):
            expand("Loop[1]", env)

    def test_depth_first_order(self):
        env = MacroEnvironment()
        register_macro(env, "Inner", "Inner[x_] -> 1")
        register_macro(env, "Outer2", "Outer2[1] -> win")
        assert expand("Outer2[Inner[q]]", env) == "win"

    def test_specificity_ordering(self):
        env = MacroEnvironment()
        register_macro(env, "M", "M[x_] -> generic")
        register_macro(env, "M", "M[1] -> specific")
        assert expand("M[1]", env) == "specific"
        assert expand("M[2]", env) == "generic"

    def test_beta_reduction_of_literal_functions(self):
        assert expand("Function[{x}, x + x][3]") == "Plus[3, 3]"
        assert expand("(#1 * 2)&[7]") == "Times[7, 2]"

    def test_user_environment_chains_over_default(self):
        env = MacroEnvironment(parent=default_macro_environment())
        register_macro(env, "And", "And[x_, y_] -> myAnd[x, y]")
        assert expand("And[a, b]", env) == "myAnd[a, b]"
        # parent rules still available for other heads
        assert expand("TrueQ[q]", env) == "SameQ[q, True]"


class TestConditionedMacros:
    """§4.7: macros predicated on compile options (the CUDA Map example)."""

    def test_conditioned_rule_fires_only_when_predicate_holds(self):
        env = MacroEnvironment(parent=default_macro_environment())
        register_macro(
            env, "Map",
            "Map[f_, lst_] -> CUDA`Map[f, lst]",
            condition=lambda options: options.get("TargetSystem") == "CUDA",
        )
        cuda = expand("Map[f, data]", env, {"TargetSystem": "CUDA"})
        assert cuda == "CUDA`Map[f, data]"
        cpu = expand("Map[f, data]", env, {"TargetSystem": "Python"})
        assert "CUDA`Map" not in cpu


class TestDefaultDesugarings:
    def test_nary_plus_folds_left(self):
        assert expand("Plus[a, b, c]") == "Plus[Plus[a, b], c]"

    def test_division_recovered(self):
        assert expand("Times[a, Power[b, -1]]") == "Divide[a, b]"

    def test_square_becomes_multiply(self):
        result = expand("Power[q, 2]")
        assert "Times" in result and "Power" not in result

    def test_power_one_erased(self):
        assert expand("Power[q, 1]") == "q"

    def test_exp_special_case(self):
        assert expand("Power[E, q]") == "Exp[q]"

    def test_increment_preserves_old_value_semantics(self):
        result = expand("Increment[i]")
        assert "old$" in result  # returns the pre-increment value

    def test_for_loop(self):
        result = expand("For[i = 0, i < 3, i++, body]")
        assert "While" in result

    def test_table_becomes_loop_over_tensor_primitives(self):
        result = expand("Table[i, {i, 1, 5}]")
        assert "Native`CreateTensorUninit" in result
        assert "While" in result

    def test_comparison_chain(self):
        result = expand("Less[a, b, c]")
        assert result.count("Less[") == 2

    def test_first_last(self):
        assert expand("First[t]") == "Part[t, 1]"
        assert expand("Last[t]") == "Part[t, -1]"
