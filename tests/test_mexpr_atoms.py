"""Tests for the MExpr atom and normal-expression layer."""

import pytest

from repro.mexpr import (
    MComplex,
    MExprNormal,
    MInteger,
    MReal,
    MString,
    MSymbol,
    S,
    expr,
    list_expr,
    normal,
    to_mexpr,
)


class TestAtomEquality:
    def test_integer_equality(self):
        assert MInteger(5) == MInteger(5)
        assert MInteger(5) != MInteger(6)

    def test_integer_and_real_are_distinct(self):
        assert MInteger(1) != MReal(1.0)

    def test_symbol_equality_by_name(self):
        assert MSymbol("x") == MSymbol("x")
        assert MSymbol("x") != MSymbol("y")

    def test_string_equality(self):
        assert MString("ab") == MString("ab")
        assert MString("ab") != MString("ba")

    def test_complex_equality(self):
        assert MComplex(1 + 2j) == MComplex(1 + 2j)
        assert MComplex(1 + 2j) != MComplex(1 - 2j)

    def test_hash_consistency(self):
        assert hash(MInteger(7)) == hash(MInteger(7))
        table = {MInteger(7): "seven"}
        assert table[MInteger(7)] == "seven"

    def test_atoms_not_equal_to_python_values(self):
        assert MInteger(5) != 5
        assert MString("a") != "a"


class TestNormalExpressions:
    def test_structure(self):
        node = expr("Plus", 1, 2)
        assert node.head == S.Plus
        assert node.args == (MInteger(1), MInteger(2))
        assert not node.is_atom()

    def test_equality_is_structural(self):
        assert expr("f", 1, "a") == expr("f", 1, "a")
        assert expr("f", 1) != expr("f", 2)
        assert expr("f", 1) != expr("g", 1)

    def test_nested_equality(self):
        a = expr("f", expr("g", 1), 2)
        b = expr("f", expr("g", 1), 2)
        assert a == b and hash(a) == hash(b)

    def test_part_access_one_based(self):
        node = expr("f", 10, 20, 30)
        assert node[0] == S.f
        assert node[1] == MInteger(10)
        assert node[3] == MInteger(30)
        assert node[-1] == MInteger(30)

    def test_len_counts_arguments(self):
        assert len(expr("f", 1, 2, 3)) == 3
        assert len(MInteger(5)) == 0

    def test_replace_args(self):
        node = expr("f", 1, 2)
        replaced = node.replace_args([MInteger(9)])
        assert replaced == expr("f", 9)
        assert node == expr("f", 1, 2)  # original untouched

    def test_non_symbol_head(self):
        node = MExprNormal(expr("f", 1), [MInteger(2)])
        assert node.head == expr("f", 1)


class TestMetadata:
    def test_set_and_get_property(self):
        node = expr("f", 1)
        node.set_property("source", "here")
        assert node.get_property("source") == "here"
        assert node.get_property("missing") is None
        assert node.get_property("missing", 0) == 0

    def test_metadata_does_not_affect_equality(self):
        a, b = expr("f", 1), expr("f", 1)
        a.set_property("k", "v")
        assert a == b
        assert hash(a) == hash(b)

    def test_has_property(self):
        node = MSymbol("x")
        assert not node.has_property("binding")
        node.set_property("binding", "x$1")
        assert node.has_property("binding")

    def test_clone_drops_metadata_keeps_structure(self):
        node = expr("f", expr("g", 1))
        node.set_property("k", 1)
        cloned = node.clone()
        assert cloned == node
        assert cloned is not node
        assert not cloned.has_property("k")


class TestConversions:
    def test_to_mexpr_scalars(self):
        assert to_mexpr(3) == MInteger(3)
        assert to_mexpr(2.5) == MReal(2.5)
        assert to_mexpr("s") == MString("s")
        assert to_mexpr(True) == MSymbol("True")
        assert to_mexpr(None) == MSymbol("Null")
        assert to_mexpr(1 + 1j) == MComplex(1 + 1j)

    def test_to_mexpr_nested_lists(self):
        node = to_mexpr([1, [2, 3]])
        assert node == list_expr(1, list_expr(2, 3))

    def test_to_python_roundtrip(self):
        assert to_mexpr([1, 2.5, [3]]).to_python() == [1, 2.5, [3]]
        assert MInteger(7).to_python() == 7
        assert MSymbol("True").to_python() is True

    def test_to_python_raises_for_symbolic(self):
        with pytest.raises(ValueError):
            MSymbol("x").to_python()
        with pytest.raises(ValueError):
            expr("f", 1).to_python()

    def test_to_mexpr_numpy(self):
        import numpy as np

        assert to_mexpr(np.int64(4)) == MInteger(4)
        assert to_mexpr(np.float64(0.5)) == MReal(0.5)
        assert to_mexpr(np.array([1, 2])) == list_expr(1, 2)

    def test_to_mexpr_rejects_unknown(self):
        with pytest.raises(TypeError):
            to_mexpr(object())


class TestSubexpressions:
    def test_preorder_traversal(self):
        node = expr("f", expr("g", 1), 2)
        nodes = list(node.subexpressions())
        assert nodes[0] == node
        assert MInteger(1) in nodes and MInteger(2) in nodes

    def test_includes_heads(self):
        node = expr("f", 1)
        assert S.f in list(node.subexpressions())


class TestCloneAcrossTheMRO:
    """`clone()` must copy payload slots declared on base classes too
    (``type(self).__slots__`` only sees the leaf class's slots)."""

    @pytest.mark.parametrize("atom", [
        MInteger(42),
        MReal(2.5),
        MComplex(complex(1, -2)),
        MString("hello"),
        MSymbol("sym"),
    ])
    def test_each_atom_type_clones_its_payload(self, atom):
        cloned = atom.clone()
        assert cloned is not atom
        assert type(cloned) is type(atom)
        assert cloned == atom
        assert hash(cloned) == hash(atom)

    def test_clone_copies_inherited_slot_state(self):
        """A subclass adding its own slot must still clone the base payload."""

        class TaggedInteger(MInteger):
            __slots__ = ("tag",)

            def __init__(self, value, tag):
                super().__init__(value)
                self.tag = tag

        original = TaggedInteger(7, "hot")
        cloned = original.clone()
        assert cloned.value == 7      # inherited slot (the historical bug)
        assert cloned.tag == "hot"    # leaf slot
        assert cloned == original

    def test_clone_drops_metadata_on_atoms(self):
        atom = MInteger(5)
        atom.set_property("binding", "x$1")
        cloned = atom.clone()
        assert not cloned.has_property("binding")
        assert cloned == atom

    def test_normal_clone_is_deep(self):
        node = expr("f", expr("g", 1), "s")
        cloned = node.clone()
        assert cloned == node
        assert cloned.args[0] is not node.args[0]


class TestStructureKeyCaching:
    def test_structure_key_is_cached(self):
        node = expr("f", 1, 2)
        first = node.structure_key()
        assert node.structure_key() is first

    def test_cached_hash_short_circuits_inequality(self):
        a, b = expr("f", 1), expr("f", 2)
        hash(a), hash(b)  # populate both caches
        assert a != b
        assert a == expr("f", 1)

    def test_metadata_does_not_affect_keys(self):
        a, b = expr("f", 1), expr("f", 1)
        a.set_property("k", "v")
        assert a.structure_key() == b.structure_key()
        assert a == b
