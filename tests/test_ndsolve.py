"""NDSolveValue — the third §1 auto-compiling solver (RK4 substrate)."""

import math

import pytest

from repro.compiler import enable_auto_compilation
from repro.engine import Evaluator
from repro.engine.numerics.ndsolve import rk4


class TestRK4:
    def test_exponential(self):
        assert rk4(lambda x, y: y, 0.0, 1.0, 1.0) == pytest.approx(
            math.e, rel=1e-8
        )

    def test_linear(self):
        assert rk4(lambda x, y: 2.0, 0.0, 0.0, 3.0) == pytest.approx(6.0)

    def test_backward_integration(self):
        assert rk4(lambda x, y: y, 1.0, math.e, 0.0) == pytest.approx(
            1.0, rel=1e-7
        )


class TestNDSolveValue:
    def test_exponential_growth(self, evaluator):
        out = evaluator.run(
            "NDSolveValue[{y'[x] == y[x], y[0] == 1}, y[1], {x, 0, 1}]"
        ).to_python()
        assert out == pytest.approx(math.e, rel=1e-8)

    def test_gaussian_decay(self, evaluator):
        out = evaluator.run(
            "NDSolveValue[{y'[x] == -2 x y[x], y[0] == 1},"
            " y[1.5], {x, 0, 1.5}]"
        ).to_python()
        assert out == pytest.approx(math.exp(-2.25), rel=1e-6)

    def test_pure_quadrature(self, evaluator):
        out = evaluator.run(
            "NDSolveValue[{y'[x] == Cos[x], y[0] == 0}, y[2.0], {x, 0, 2.0}]"
        ).to_python()
        assert out == pytest.approx(math.sin(2.0), rel=1e-8)

    def test_auto_compiled_rhs_used(self):
        session = Evaluator()
        enable_auto_compilation(session)
        calls = []
        original = session.extensions["auto_compile"]

        def counting(equation, variable, result_type):
            calls.append(equation)
            return original(equation, variable, result_type)

        # the solver compiles via FunctionCompile directly; spy one level up
        out = session.run(
            "NDSolveValue[{y'[x] == y[x] * Cos[x], y[0] == 1},"
            " y[3.0], {x, 0, 3.0}]"
        ).to_python()
        assert out == pytest.approx(math.exp(math.sin(3.0)), rel=1e-6)

    def test_compiled_and_interpreted_agree(self):
        plain = Evaluator()
        fast = Evaluator()
        enable_auto_compilation(fast)
        program = ("NDSolveValue[{y'[x] == Sin[x] - y[x], y[0] == 0.5},"
                   " y[2.0], {x, 0, 2.0}]")
        assert plain.run(program).to_python() == pytest.approx(
            fast.run(program).to_python(), rel=1e-9
        )

    def test_non_numeric_initial_value_rejected(self, evaluator):
        from repro.errors import WolframEvaluationError

        with pytest.raises(WolframEvaluationError):
            evaluator.run(
                "NDSolveValue[{y'[x] == y[x], y[0] == q}, y[1], {x, 0, 1}]"
            )
