"""NMinimize — the second §1 solver that auto-compiles its objective."""

import math

import pytest

from repro.compiler import enable_auto_compilation
from repro.engine import Evaluator
from repro.engine.numerics.nminimize import golden_section


class TestGoldenSection:
    def test_quadratic(self):
        x, fx = golden_section(lambda v: (v - 3) ** 2 + 1, -10, 10)
        assert x == pytest.approx(3.0, abs=1e-6)
        assert fx == pytest.approx(1.0)

    def test_shifted_cosine(self):
        x, _ = golden_section(math.cos, 0, 2 * math.pi)
        assert x == pytest.approx(math.pi, abs=1e-6)


class TestNMinimize:
    def unpack(self, result):
        fx = result.args[0].to_python()
        x = result.args[1].args[0].args[1].to_python()
        return fx, x

    def test_interpreted_objective(self, evaluator):
        fx, x = self.unpack(
            evaluator.run("NMinimize[(x - 3)^2 + 1, {x, -10, 10}]")
        )
        assert x == pytest.approx(3.0, abs=1e-6)
        assert fx == pytest.approx(1.0)

    def test_auto_compiled_objective(self):
        session = Evaluator()
        enable_auto_compilation(session)
        calls = []
        original = session.extensions["auto_compile"]

        def counting(equation, variable, result_type):
            calls.append(equation)
            return original(equation, variable, result_type)

        session.extensions["auto_compile"] = counting
        fx, x = self.unpack(
            session.run("NMinimize[Sin[x] + x^2/10, {x, -4, 4}]")
        )
        assert calls, "NMinimize did not auto-compile (§1)"
        assert fx == pytest.approx(-0.794582, abs=1e-5)
        assert x == pytest.approx(-1.30644, abs=1e-4)

    def test_compiled_and_interpreted_agree(self):
        plain = Evaluator()
        compiled = Evaluator()
        enable_auto_compilation(compiled)
        program = "NMinimize[Exp[x] - 2*x, {x, -2, 3}]"
        fx1, x1 = self.unpack(plain.run(program))
        fx2, x2 = self.unpack(compiled.run(program))
        assert x1 == pytest.approx(x2, abs=1e-6)
        assert x1 == pytest.approx(math.log(2), abs=1e-6)

    def test_symbolic_bounds(self, evaluator):
        fx, x = self.unpack(
            evaluator.run("NMinimize[(x - 1)^2, {x, -Pi, Pi}]")
        )
        assert x == pytest.approx(1.0, abs=1e-6)
