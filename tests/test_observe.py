"""The ``repro.observe`` tracing + metrics layer (DESIGN.md §7).

Covers the tentpole contract end to end: span nesting and the Chrome-trace
export shape, the zero-allocation disabled path, metrics JSON round-trips,
the tier-transition event vocabulary emitted by hotspot promotion and
circuit-breaker demotion, guard trips, VM counters, the pipeline
pass-report aggregation bugfix, and the ``python -m repro --trace`` CLI
acceptance shape (spans from at least three subsystems).
"""

import io
import json

import pytest

from repro.compiler import install_engine_support
from repro.compiler.api import clear_failure_records
from repro.engine import Evaluator
from repro.mexpr import parse
from repro.observe import (
    MetricsRegistry,
    Tracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    with_tracing,
)
from repro.observe import trace as trace_module
from repro.runtime.guard import (
    FAILURE_LOG,
    CircuitBreaker,
    ExecutionGuard,
    Tier,
    WolframBudgetError,
)


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test must leave the process-wide tracer disabled."""
    assert trace_module.TRACER is None
    yield
    assert trace_module.TRACER is None
    clear_failure_records()


def _fib_session(threshold=4):
    session = Evaluator(recursion_limit=8192)
    install_engine_support(session)
    session.hotspot.threshold = threshold
    session.run("fib[0] = 0")
    session.run("fib[1] = 1")
    session.run("fib[n_] := fib[n-1] + fib[n-2]")
    return session


class TestTracer:
    def test_span_nesting_records_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer", "test"):
            with tracer.span("inner", "test"):
                pass
        inner, outer = tracer.events  # inner closes (and appends) first
        assert outer.name == "outer" and outer.parent == "" and outer.depth == 0
        assert inner.name == "inner" and inner.parent == "outer"
        assert inner.depth == 1
        # the child interval nests inside the parent interval
        assert outer.start <= inner.start
        assert inner.start + inner.duration <= outer.start + outer.duration + 1e-9

    def test_instant_events_carry_args(self):
        tracer = Tracer()
        tracer.event("tier.promote", "hotspot", symbol="fib", tier="compiled")
        (instant,) = tracer.instants("tier.promote")
        assert not instant.is_span()
        assert instant.args == {"symbol": "fib", "tier": "compiled"}

    def test_chrome_trace_shape(self):
        tracer = Tracer()
        with tracer.span("work", "test", n=3):
            tracer.event("tick", "test")
        payload = json.loads(json.dumps(tracer.chrome_trace()))
        assert {entry["ph"] for entry in payload} == {"X", "i"}
        span = next(e for e in payload if e["ph"] == "X")
        assert span["name"] == "work" and span["cat"] == "test"
        assert span["dur"] >= 0 and span["args"] == {"n": 3}
        instant = next(e for e in payload if e["ph"] == "i")
        assert instant["s"] == "t"

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("work", "test"):
            pass
        path = tracer.write_chrome_trace(str(tmp_path / "trace.json"))
        assert json.load(open(path))[0]["name"] == "work"

    def test_with_tracing_installs_and_removes(self):
        assert active_tracer() is None
        with with_tracing() as tracer:
            assert active_tracer() is tracer
        assert active_tracer() is None

    def test_with_tracing_rejects_nesting(self):
        with with_tracing():
            with pytest.raises(RuntimeError):
                with with_tracing():
                    pass

    def test_enable_disable_roundtrip(self):
        tracer = enable_tracing()
        try:
            assert active_tracer() is tracer
        finally:
            assert disable_tracing() is tracer
        assert active_tracer() is None


class TestDisabledPath:
    def test_disabled_tracer_allocates_nothing(self):
        """With tracing off, evaluation emits no events anywhere."""
        sentinel = Tracer()  # never installed
        session = _fib_session()
        session.run("fib[12]")
        assert list(sentinel.events) == []
        assert sentinel.metrics.as_dict() == {"counters": {}, "histograms": {}}
        assert trace_module.TRACER is None

    def test_hot_sites_guard_on_module_flag(self):
        """The instrumented hot paths all test ``TRACER`` before any work."""
        import inspect

        from repro.bytecode.vm import WVM
        from repro.engine.definitions import DownValueIndex
        from repro.engine.evaluator import Evaluator as Engine

        for site in (Engine.evaluate, Engine.evaluate_protected,
                     DownValueIndex.candidates, WVM.run):
            assert "_trace.TRACER" in inspect.getsource(site)


class TestMetrics:
    def test_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.count("calls")
        registry.count("calls", 4)
        registry.observe("latency", 0.25)
        registry.observe("latency", 0.75)
        assert registry.counter("calls") == 5
        hist = registry.histogram("latency")
        assert hist.count == 2 and hist.mean == pytest.approx(0.5)
        assert hist.minimum == 0.25 and hist.maximum == 0.75

    def test_json_round_trip(self):
        registry = MetricsRegistry()
        registry.count("eval.rule_applications", 7)
        registry.observe("pipeline.pass.cse", 0.002)
        registry.observe("pipeline.pass.cse", 0.004)
        clone = MetricsRegistry.from_json(registry.to_json())
        assert clone == registry
        assert clone.counter("eval.rule_applications") == 7
        assert clone.histogram("pipeline.pass.cse").count == 2


class TestTierEvents:
    def test_hotspot_promotion_emits_tier_promote(self):
        session = _fib_session(threshold=4)
        with with_tracing() as tracer:
            session.run("fib[12]")
        assert "fib" in session.hotspot.promoted
        # the ladder promotes twice: template rung first, then the tier-up
        promotes = tracer.instants("tier.promote")
        assert [p.args["tier"] for p in promotes] == ["template", "compiled"]
        assert all(p.args["symbol"] == "fib" for p in promotes)
        assert promotes[-1].args["upgraded_from"] == "template"
        assert tracer.spans("hotspot.promote")  # the attempt span wraps it

    def test_breaker_demotion_emits_tier_demote_with_symbol(self):
        breaker = CircuitBreaker("fib", threshold=2, log=FAILURE_LOG)
        with with_tracing() as tracer:
            breaker.record_failure(Tier.COMPILED, "IntegerOverflow")
            breaker.record_failure(Tier.COMPILED, "IntegerOverflow")
        assert breaker.tier is not Tier.COMPILED
        (demote,) = tracer.instants("tier.demote")
        assert demote.args["symbol"] == "fib"
        assert demote.args["from"] == Tier.COMPILED.value
        assert demote.args["to"] == breaker.tier.value

    def test_guard_trip_emits_kind(self):
        guard = ExecutionGuard.with_step_budget(3, label="test")
        with with_tracing() as tracer:
            with pytest.raises(WolframBudgetError):
                guard.check(steps=10)
        (trip,) = tracer.instants("guard.trip")
        assert trip.args["kind"] == "steps"
        assert trip.args["budget"] == 3


class TestSubsystemCounters:
    def test_evaluator_counters(self):
        session = _fib_session(threshold=10**9)  # never promote
        with with_tracing() as tracer:
            session.run("fib[8]")
        counters = tracer.metrics.as_dict()["counters"]
        assert counters["eval.rule_applications"] > 0
        assert counters["eval.fixed_point_iterations"] > 0
        assert ("eval.dispatch_index.hits" in counters
                or "eval.dispatch_index.misses" in counters)

    def test_vm_counters_and_span(self):
        session = Evaluator()
        install_engine_support(session)
        session.run(
            'f = Compile[{{n, _Integer}}, Module[{i = 0},'
            ' While[i < n, i = i + 1]; i]]'
        )
        with with_tracing() as tracer:
            session.run("f[50]")
        counters = tracer.metrics.as_dict()["counters"]
        assert counters["vm.dispatches"] == 1
        assert counters["vm.instructions"] > 50  # the loop body dominates
        (run_span,) = tracer.spans("vm.run")
        assert run_span.args["instructions"] == counters["vm.instructions"]


class TestPipelineReport:
    def test_pass_report_aggregates_repeated_passes(self):
        """A pass name that runs twice accumulates — no silent overwrite."""
        from repro.compiler.pipeline import CompilerPipeline

        source = parse('Function[{Typed[x, "MachineInteger"]}, x*x + x]')
        pipeline = CompilerPipeline()
        with with_tracing() as tracer:
            pipeline.compile_program(source)
        report = pipeline.pass_report()
        assert report, "pass report is empty"
        names = [name for name, _elapsed in pipeline.pass_timings]
        repeated = {n for n in names if names.count(n) > 1}
        assert repeated, "expected at least one pass to run more than once"
        sample = next(iter(repeated))
        assert report[sample]["calls"] == names.count(sample)
        # per-pass histograms mirror the aggregate call counts
        hist = tracer.metrics.histogram(f"pipeline.pass.{sample}")
        assert hist.count == report[sample]["calls"]
        # spans carry IR node-count deltas
        pass_spans = tracer.spans(category="pipeline")
        assert pass_spans
        assert any("ir_nodes_after" in s.args for s in pass_spans)

    def test_pass_report_surfaces_in_program_metadata(self):
        from repro.compiler.pipeline import CompilerPipeline

        program = CompilerPipeline().compile_program(
            parse('Function[{Typed[x, "MachineInteger"]}, x + 1]')
        )
        report = program.metadata["passReport"]
        assert all({"calls", "seconds"} <= set(v) for v in report.values())
        assert sum(v["calls"] for v in report.values()) >= len(report)
        # analysis passes surface their fact counts alongside the timings
        assert report["dataflow"]["facts"] > 0


class TestCLI:
    def test_trace_flag_produces_three_subsystems(self, tmp_path):
        """The ISSUE acceptance invocation, as an in-process call."""
        from repro.__main__ import main

        trace_path = tmp_path / "out.json"
        metrics_path = tmp_path / "metrics.json"
        out = io.StringIO()
        # enough repeat calls to climb the whole ladder: the template rung
        # promotes almost immediately, the full pipeline at the threshold
        calls = [arg for _ in range(16) for arg in ("-e", "fib[19]")]
        status = main(
            [
                "--trace", str(trace_path),
                "--metrics", str(metrics_path),
                "-e", "fib[0] = 0",
                "-e", "fib[1] = 1",
                "-e", "fib[n_] := fib[n-1] + fib[n-2]",
                *calls,
            ],
            output=out,
        )
        assert status == 0
        assert "Out[4]= 4181" in out.getvalue()
        events = json.load(open(trace_path))
        categories = {e["cat"] for e in events}
        assert {"evaluator", "pipeline", "hotspot",
                "template_jit"} <= categories
        promotes = [e for e in events if e["name"] == "tier.promote"]
        assert [p["args"]["tier"] for p in promotes] == [
            "template", "compiled"
        ]
        metrics = json.load(open(metrics_path))
        assert metrics["counters"]["eval.rule_applications"] >= 1

    def test_metrics_to_stdout(self):
        from repro.__main__ import main

        out = io.StringIO()
        assert main(["--metrics", "-e", "1 + 1"], output=out) == 0
        text = out.getvalue()
        payload = json.loads(text[text.index("{"):])
        assert set(payload) == {"counters", "histograms"}

    def test_batch_reports_syntax_errors(self):
        from repro.__main__ import main

        out = io.StringIO()
        assert main(["-e", "f[«bogus"], output=out) == 1
        assert "Syntax" in out.getvalue()
