"""Every benchmark program compiles and agrees at every optimization level
— the O0 path exercises raw lowered code (no folding, no elision)."""

import pytest

from repro.benchsuite import programs, reference
from repro.compiler import FunctionCompile

CASES = [
    ("fnv1a", programs.NEW_FNV1A, ("compile this",),
     lambda out: out == reference.fnv1a_c_port("compile this")),
    ("mandelbrot", programs.NEW_MANDELBROT, (complex(-0.5, 0.3),),
     lambda out: out == reference.mandelbrot_point(complex(-0.5, 0.3))),
    ("histogram", programs.NEW_HISTOGRAM, ([5, 300, 256, 5],),
     lambda out: out.data == reference.histogram_c_port([5, 300, 256, 5])),
    ("qsort", programs.NEW_QSORT, ([3, 1, 2], lambda a, b: a < b),
     lambda out: out.to_nested() == [1, 2, 3]),
]


class TestOptimizationLevels:
    @pytest.mark.parametrize("name,source,args,check",
                             CASES, ids=[c[0] for c in CASES])
    def test_o0_matches_default(self, name, source, args, check):
        unoptimized = FunctionCompile(source, OptimizationLevel=None)
        optimized = FunctionCompile(source)
        assert check(unoptimized(*args))
        assert check(optimized(*args))

    def test_o0_blur(self):
        from repro.benchsuite import data as workloads

        side = 8
        nested = workloads.blur_image_nested(side)
        flat = workloads.blur_image_flat(side)
        unoptimized = FunctionCompile(programs.NEW_BLUR,
                                      OptimizationLevel=None)
        expected = reference.blur_c_port(flat, side, side)
        out = unoptimized(nested)
        assert [round(x, 9) for x in out.data] == [
            round(x, 9) for x in expected
        ]

    def test_o0_keeps_index_checks(self):
        source = FunctionCompile(
            programs.NEW_HISTOGRAM, OptimizationLevel=None
        ).generated_source
        assert "unchecked" not in source  # elision is an O1 pass

    def test_o0_primeq_with_constants(self):
        table = reference.prime_sieve_bitmap()
        unoptimized = FunctionCompile(
            programs.NEW_PRIMEQ,
            constants={"primeTable": table,
                       "witnesses": programs.RM_WITNESSES},
            OptimizationLevel=None,
        )
        assert unoptimized(100) == reference.primeq_count_c_port(100, table)
