"""Canonical (Orderless) ordering: the structural key vs the legacy key.

The historical comparator printed every normal expression to its
``full_form`` string and compared strings; the new comparator
(`engine.evaluator.canonical_order_key`) compares cached structural keys.
The two provably agree wherever string ordering coincides with structural
ordering, which the property test below pins down on a mixed
integer/real/string/symbol/normal domain:

* top-level atoms order by value/name in both schemes (integers bounded so
  the legacy ``float()`` conversion is exact);
* normal expressions are restricted to lowercase symbol heads with
  single-digit-integer or lowercase-symbol arguments — in that domain the
  ``", "``/``"["`` separators sort below every payload character, so string
  prefix order equals left-to-right structural order.

Outside that domain the schemes *deliberately* diverge — the new key orders
``f[2]`` before ``f[10]`` (numeric intent) where the string comparator put
``f[10]`` first, and it no longer overflows on huge integers.  Those are
regression-tested explicitly below.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Evaluator
from repro.engine.evaluator import canonical_order_key
from repro.mexpr import full_form, parse
from repro.mexpr.atoms import (
    MComplex,
    MInteger,
    MReal,
    MString,
    MSymbol,
)
from repro.mexpr.expr import MExprNormal


def _legacy_order_key(expression):
    """The pre-PR comparator, verbatim (modulo the module move)."""
    if isinstance(expression, MInteger):
        return (0, float(expression.value), "")
    if isinstance(expression, MReal):
        return (0, expression.value, "")
    if isinstance(expression, MString):
        return (1, 0.0, expression.value)
    if isinstance(expression, MSymbol):
        return (2, 0.0, expression.name)
    return (3, float(len(expression.args)), full_form(expression))


_names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=3)

_top_atoms = st.one_of(
    st.integers(min_value=-(10 ** 6), max_value=10 ** 6).map(MInteger),
    st.floats(
        allow_nan=False, allow_infinity=False,
        min_value=-1e6, max_value=1e6,
    ).map(MReal),
    st.text(max_size=6).map(MString),
    _names.map(MSymbol),
)

_nested_args = st.one_of(
    st.integers(min_value=0, max_value=9).map(MInteger),
    _names.map(MSymbol),
)

_normals = st.builds(
    lambda head, args: MExprNormal(MSymbol(head), args),
    _names,
    st.lists(_nested_args, max_size=4),
)

_elements = st.one_of(_top_atoms, _normals)


@settings(max_examples=300, deadline=None)
@given(st.lists(_elements, max_size=12))
def test_structural_comparator_matches_legacy_on_agreement_domain(items):
    legacy = sorted(items, key=_legacy_order_key)
    structural = sorted(items, key=canonical_order_key)
    assert [full_form(a) for a in legacy] == [full_form(b) for b in structural]


@settings(max_examples=200, deadline=None)
@given(st.lists(_elements, max_size=10))
def test_structural_key_is_a_total_order(items):
    keys = [canonical_order_key(item) for item in items]
    # sorting never raises (shape-uniform keys) and is deterministic
    assert sorted(keys) == sorted(reversed(keys))


class TestDeliberateDivergence:
    def test_numeric_arguments_sort_numerically_not_lexically(self):
        two, ten = parse("f[2]"), parse("f[10]")
        assert canonical_order_key(two) < canonical_order_key(ten)
        # the legacy string comparator put "f[10]" before "f[2]"
        assert _legacy_order_key(ten) < _legacy_order_key(two)

    def test_huge_integers_do_not_overflow(self):
        huge = MInteger(10 ** 400)
        small = MInteger(3)
        assert canonical_order_key(small) < canonical_order_key(huge)
        try:
            _legacy_order_key(huge)
            legacy_overflowed = False
        except OverflowError:
            legacy_overflowed = True
        assert legacy_overflowed

    def test_complex_keys_are_shape_uniform(self):
        mixed = [
            MComplex(complex(2, 1)),
            parse("f[]"),
            MComplex(complex(1, 5)),
            parse("g[a, b]"),
            MInteger(7),
        ]
        ordered = sorted(mixed, key=canonical_order_key)  # must not raise
        assert isinstance(ordered[0], MInteger)
        complexes = [e for e in ordered if isinstance(e, MComplex)]
        assert [c.value for c in complexes] == [complex(1, 5), complex(2, 1)]


class TestEngineIntegration:
    def test_orderless_plus_canonicalisation(self):
        session = Evaluator()
        result = session.run("c + a + b + x2 + x10")
        assert full_form(result) == "Plus[a, b, c, x10, x2]"

    def test_numbers_sort_before_symbols(self):
        session = Evaluator()
        result = session.run("z + 1.5 + w")
        assert full_form(result) == "Plus[1.5, w, z]"

    def test_sort_builtin_uses_the_same_key(self):
        session = Evaluator()
        result = session.run("Sort[{f[10], f[2], b, 1}]")
        assert full_form(result) == "List[1, b, f[2], f[10]]"

    def test_order_keys_are_cached(self):
        expression = parse("f[1, 2, 3]")
        first = canonical_order_key(expression)
        assert canonical_order_key(expression) is first
