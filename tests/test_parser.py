"""Parser tests: grammar coverage, precedence, round-trips, errors."""

import pytest

from repro.errors import WolframParseError
from repro.mexpr import full_form, input_form, parse, tokenize


def ff(text: str) -> str:
    return full_form(parse(text))


class TestLiterals:
    def test_integer(self):
        assert ff("42") == "42"

    def test_negative_integer(self):
        assert ff("-42") == "-42"

    def test_real(self):
        assert ff("2.5") == "2.5"

    def test_real_wolfram_exponent(self):
        assert ff("1.5*^3") == "1500.0"

    def test_real_e_exponent(self):
        assert ff("2.0e-2") == "0.02"

    def test_string(self):
        assert ff('"hello"') == '"hello"'

    def test_string_escapes(self):
        assert parse(r'"a\nb"').value == "a\nb"
        assert parse(r'"say \"hi\""').value == 'say "hi"'

    def test_symbol(self):
        assert ff("foo") == "foo"

    def test_context_symbol(self):
        assert ff("Native`PartSet") == "Native`PartSet"

    def test_unicode_pi(self):
        assert ff("π") == "Pi"


class TestOperators:
    @pytest.mark.parametrize("source,expected", [
        ("1+2", "Plus[1, 2]"),
        ("1+2+3", "Plus[1, 2, 3]"),
        ("a-b", "Plus[a, Times[-1, b]]"),
        ("2*3", "Times[2, 3]"),
        ("a/b", "Times[a, Power[b, -1]]"),
        ("2^3^2", "Power[2, Power[3, 2]]"),
        ("1+2*3", "Plus[1, Times[2, 3]]"),
        ("(1+2)*3", "Times[Plus[1, 2], 3]"),
        ("a == b", "Equal[a, b]"),
        ("a != b", "Unequal[a, b]"),
        ("a === b", "SameQ[a, b]"),
        ("a =!= b", "UnsameQ[a, b]"),
        ("a < b", "Less[a, b]"),
        ("a <= b", "LessEqual[a, b]"),
        ("a && b && c", "And[a, b, c]"),
        ("a || b", "Or[a, b]"),
        ("!a", "Not[a]"),
        ("a -> b", "Rule[a, b]"),
        ("a :> b", "RuleDelayed[a, b]"),
        ("x /. a -> b", "ReplaceAll[x, Rule[a, b]]"),
        ("a = b", "Set[a, b]"),
        ("a := b", "SetDelayed[a, b]"),
        ("a += 2", "AddTo[a, 2]"),
        ("a <> b", "StringJoin[a, b]"),
        ("a . b", "Dot[a, b]"),
        ("f @ x", "f[x]"),
        ("x // f", "f[x]"),
        ("f /@ x", "Map[f, x]"),
        ("f @@ x", "Apply[f, x]"),
        ("i++", "Increment[i]"),
        ("i--", "Decrement[i]"),
        ("p /; c", "Condition[p, c]"),
    ])
    def test_operator(self, source, expected):
        assert ff(source) == expected

    def test_unicode_aliases(self):
        assert ff("a → b") == "Rule[a, b]"
        assert ff("a ≡ b") == "SameQ[a, b]"
        assert ff("a ≥ b") == "GreaterEqual[a, b]"
        assert ff("a ≤ b") == "LessEqual[a, b]"
        assert ff("a ≠ b") == "Unequal[a, b]"

    def test_implicit_multiplication(self):
        assert ff("2 x") == "Times[2, x]"
        assert ff("2π") == "Times[2, Pi]"

    def test_precedence_set_vs_compound(self):
        assert ff("a = 1; b = 2") == (
            "CompoundExpression[Set[a, 1], Set[b, 2]]"
        )

    def test_trailing_semicolon_appends_null(self):
        assert ff("a;") == "CompoundExpression[a, Null]"

    def test_right_assoc_rule(self):
        assert ff("a -> b -> c") == "Rule[a, Rule[b, c]]"

    def test_prefix_at_right_assoc(self):
        assert ff("f @ g @ x") == "f[g[x]]"


class TestCallsAndParts:
    def test_call(self):
        assert ff("f[1, 2]") == "f[1, 2]"

    def test_zero_arg_call(self):
        assert ff("f[]") == "f[]"

    def test_curried_call(self):
        assert ff("f[1][2]") == "f[1][2]"

    def test_list(self):
        assert ff("{1, 2, 3}") == "List[1, 2, 3]"

    def test_nested_list(self):
        assert ff("{{1}, {2}}") == "List[List[1], List[2]]"

    def test_part(self):
        assert ff("x[[1]]") == "Part[x, 1]"

    def test_multi_part(self):
        assert ff("m[[i, j]]") == "Part[m, i, j]"

    def test_negative_part(self):
        assert ff("x[[-1]]") == "Part[x, -1]"

    def test_part_of_call_result(self):
        assert ff("f[x][[2]]") == "Part[f[x], 2]"

    def test_nested_brackets_disambiguation(self):
        # the `]]` of the inner Part must not eat the If's closing brackets
        assert ff("If[a, x[[1]], x[[2]]]") == (
            "If[a, Part[x, 1], Part[x, 2]]"
        )


class TestFunctionsAndSlots:
    def test_slot(self):
        assert ff("#") == "Slot[1]"
        assert ff("#2") == "Slot[2]"

    def test_pure_function(self):
        assert ff("#^2 &") == "Function[Power[Slot[1], 2]]"

    def test_applied_pure_function(self):
        assert ff("(#+1)&[5]") == "Function[Plus[Slot[1], 1]][5]"

    def test_named_function(self):
        assert ff("Function[{x}, x + 1]") == "Function[List[x], Plus[x, 1]]"


class TestPatterns:
    def test_blank(self):
        assert ff("_") == "Blank[]"

    def test_named_blank(self):
        assert ff("x_") == "Pattern[x, Blank[]]"

    def test_typed_blank(self):
        assert ff("x_Integer") == "Pattern[x, Blank[Integer]]"

    def test_blank_sequence(self):
        assert ff("x__") == "Pattern[x, BlankSequence[]]"

    def test_blank_null_sequence(self):
        assert ff("x___") == "Pattern[x, BlankNullSequence[]]"

    def test_pattern_test(self):
        assert ff("x_?EvenQ") == "PatternTest[Pattern[x, Blank[]], EvenQ]"

    def test_pattern_colon(self):
        assert ff("x : f[_]") == "Pattern[x, f[Blank[]]]"


class TestComments:
    def test_comment_ignored(self):
        assert ff("1 + (* note *) 2") == "Plus[1, 2]"

    def test_nested_comment(self):
        assert ff("(* a (* b *) c *) 5") == "5"

    def test_unterminated_comment(self):
        with pytest.raises(WolframParseError):
            parse("(* oops")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "1 +", "f[", "{1, 2", "(1", '"unterminated', "1 ]", "x[[1]",
    ])
    def test_raises(self, bad):
        with pytest.raises(WolframParseError):
            parse(bad)


class TestRoundTrip:
    @pytest.mark.parametrize("source", [
        "fib = Function[{n}, If[n < 1, 1, fib[n-1]+fib[n-2]]]",
        'a = {1,2,3}; a[[3]] = -20; a',
        "FindRoot[Sin[x] + E^x, {x, 0}]",
        "i=0; While[True, If[i>3, i--, i++]]",
        "Module[{arg = RandomReal[{0, 2 Pi}]}, {-Cos[arg], Sin[arg]} + #] &",
        "x_Integer?EvenQ",
        "Table[i^2, {i, 1, 10}]",
        'StringJoin["a", "b", "c"]',
        "m[[i, j]] = m[[i, j]] + 1",
    ])
    def test_input_form_round_trips(self, source):
        first = parse(source)
        assert parse(input_form(first)) == first


class TestTokenizer:
    def test_token_kinds(self):
        kinds = [t.kind for t in tokenize('f[1, 2.5, "s"]')]
        assert kinds == ["name", "op", "int", "op", "real", "op", "string",
                         "op", "eof"]

    def test_three_char_operators(self):
        texts = [t.text for t in tokenize("a === b //. c")]
        assert "===" in texts and "//." in texts

    def test_positions(self):
        tokens = tokenize("ab + cd")
        assert tokens[0].pos == 0
        assert tokens[1].pos == 3
        assert tokens[2].pos == 5
