"""Individual TWIR passes (§4.3/§4.5): optimizations and semantic passes."""

from repro.compiler import CompileToIR, FunctionCompile
from repro.compiler.pipeline import CompilerPipeline
from repro.compiler.options import CompilerOptions
from repro.mexpr import parse


def ir_text(source: str, **options) -> str:
    text = CompileToIR(source, **options)["toString"]
    # drop the module-metadata line (pass timings contain arbitrary digits)
    return "\n".join(
        line for line in text.splitlines()
        if not line.startswith("; module metadata")
    )


class TestConstantPropagation:
    def test_constant_arithmetic_folds(self):
        text = ir_text('Function[{Typed[x, "MachineInteger"]}, x + 2*3]')
        assert "Constant 6" in text

    def test_constant_branch_folds_away(self):
        text = ir_text(
            'Function[{Typed[x, "MachineInteger"]}, If[1 < 2, x, x * 100]]'
        )
        assert "Branch" not in text  # dead branch deleted

    def test_fold_time_error_deferred_to_runtime(self):
        # constant overflow must not crash compilation
        f = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"]},'
            ' If[x > 0, x, 9223372036854775807 + 9223372036854775807]]'
        )
        assert f(1) == 1


class TestCSE:
    def test_repeated_pure_expression_computed_once(self):
        text = ir_text(
            'Function[{Typed[x, "Real64"]}, Sin[x] + Sin[x]]'
        )
        assert text.count("math_sin") == 1

    def test_impure_not_merged(self):
        text = ir_text(
            'Function[{Typed[x, "Real64"]},'
            ' RandomReal[0.0, x] + RandomReal[0.0, x]]'
        )
        assert text.count("random_real") == 2


class TestDCE:
    def test_unused_pure_value_removed(self):
        # the sentinel must be a number no global value-id counter can
        # plausibly reach in one test session (%999 appears in the IR
        # text once 999 values have been allocated process-wide)
        text = ir_text(
            'Function[{Typed[x, "MachineInteger"]},'
            ' Module[{dead = x * 98765431}, x]]'
        )
        assert "98765431" not in text

    def test_impure_kept(self):
        text = ir_text(
            'Function[{Typed[x, "Real64"]},'
            ' Module[{}, RandomReal[0.0, 1.0]; x]]'
        )
        assert "random_real" in text


class TestBlockFusion:
    def test_linear_blocks_merge(self):
        from repro.compiler.wir.lower import Lowerer
        from repro.compiler.twir.passes import fuse_blocks

        pipeline = CompilerPipeline()
        params, body = pipeline.parse_function(parse(
            'Function[{Typed[c, "Boolean"]}, If[c, 1, 2]]'
        ))
        body = pipeline.expand_macros(body)
        fn = Lowerer("Main", pipeline.type_environment).lower(params, body)
        before = len(fn.blocks)
        fuse_blocks(fn)
        assert len(fn.blocks) <= before


class TestAbortInsertion:
    SRC = (
        'Function[{Typed[n, "MachineInteger"]},'
        ' Module[{i = 0}, While[i < n, i = i + 1]; i]]'
    )

    def test_loop_header_and_prologue_checks(self):
        text = ir_text(self.SRC)
        assert text.count("CheckAbort") == 2  # prologue + loop header

    def test_disabled_by_option(self):
        text = ir_text(self.SRC, AbortHandling=False)
        assert "CheckAbort" not in text

    def test_not_per_instruction(self):
        """§4.5: checks at loop heads, NOT after every instruction."""
        text = ir_text(
            'Function[{Typed[x, "Real64"]},'
            ' Sin[x] + Cos[x] + Exp[x] + Sqrt[x]]'
        )
        assert text.count("CheckAbort") == 1  # prologue only; no loops


class TestIndexElision:
    def test_loop_counter_access_unchecked(self):
        text = ir_text(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Real64", 1]]]},'
            ' Module[{s = 0.0, i = 1, n = Length[v]},'
            '  While[i <= n, s = s + v[[i]]; i = i + 1]; s]]'
        )
        assert "tensor_part1_unchecked" in text

    def test_stencil_offsets_unchecked(self):
        text = ir_text(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Real64", 1]]]},'
            ' Module[{s = 0.0, i = 2, n = Length[v]},'
            '  While[i <= n - 1, s = s + v[[i - 1]] + v[[i + 1]];'
            '   i = i + 1]; s]]'
        )
        assert "tensor_part1]" not in text  # every access elided

    def test_unknown_index_stays_checked(self):
        text = ir_text(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Real64", 1]]],'
            ' Typed[i, "MachineInteger"]}, v[[i]]]'
        )
        assert "tensor_part1]" in text
        assert "unchecked" not in text

    def test_disabled_by_option(self):
        text = ir_text(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Real64", 1]]]},'
            ' Module[{s = 0.0, i = 1}, While[i <= Length[v],'
            '  s = s + v[[i]]; i = i + 1]; s]]',
            IndexCheckElision=False,
        )
        assert "unchecked" not in text


class TestOverflowElision:
    def test_guarded_counter_increment_unchecked(self):
        text = ir_text(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Real64", 1]]]},'
            ' Module[{i = 1, n = Length[v]},'
            '  While[i <= n, i = i + 1]; i]]'
        )
        assert "plus_unchecked_Integer64" in text

    def test_accumulator_stays_checked(self):
        text = ir_text(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{s = 1, i = 1},'
            '  While[i <= n, s = s * 2 + s; i = i + 1]; s]]'
        )
        assert "checked_binary_times_Integer64_Integer64" in text


class TestMemoryManagement:
    def test_acquire_for_allocations_only(self):
        text = ir_text(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{t = Native`CreateTensor[n, 0]}, Total[t]]]'
        )
        assert "MemoryAcquire" in text

    def test_disabled_by_option(self):
        text = ir_text(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{t = Native`CreateTensor[n, 0]}, Total[t]]]',
            MemoryManagement=False,
        )
        assert "MemoryAcquire" not in text

    def test_no_refcount_traffic_in_mutation_loop(self):
        """Loop-carried tensors alias, they don't re-acquire (§4.5)."""
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{t = Native`CreateTensor[n, 0], i = 1},'
            '  While[i <= n, Set[Part[t, i], i]; i = i + 1]; Total[t]]]'
        )
        source = f.generated_source
        loop_start = source.index("while True:")
        assert "_mem_acquire" not in source[loop_start:]


class TestCopyInsertion:
    def test_copy_present_for_aliased_mutation(self):
        text = ir_text(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{a = Table[i, {i, 1, n}]},'
            '  Module[{b = a}, Set[Part[b, 1], 0]; a[[1]] + b[[1]]]]]'
        )
        assert "Copy" in text

    def test_argument_mutation_copies_at_entry(self):
        f = FunctionCompile(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Integer64", 1]]]},'
            ' Module[{i = 1, n = Length[v]},'
            '  While[i <= n, Set[Part[v, i], 0]; i = i + 1]; v]]'
        )
        data = [1, 2, 3]
        out = f(data)
        assert out.to_nested() == [0, 0, 0]
        assert data == [1, 2, 3]  # caller unchanged: one entry copy

    def test_disabled_by_option_mutates_in_place(self):
        from repro.runtime import PackedArray

        f = FunctionCompile(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Integer64", 1]]]},'
            ' Module[{i = 1, n = Length[v]},'
            '  While[i <= n, Set[Part[v, i], 0]; i = i + 1]; v]]',
            CopyInsertion=False, ArgumentAlias=True,
        )
        packed = PackedArray.from_nested([1, 2, 3], "Integer64")
        f(packed)
        assert packed.to_nested() == [0, 0, 0]  # caller-visible (opted in)


class TestInlining:
    def test_paper_ablation_switch_behaviour(self):
        src = (
            'Function[{Typed[x, "Real64"]},'
            ' Module[{p = x}, p * p + p]]'
        )
        inlined = FunctionCompile(src).generated_source
        called = FunctionCompile(src, InlinePolicy=None).generated_source
        assert "_rt[" not in inlined.replace("_rt['tensor", "")
        assert "_rt['binary_times_Real64']" in called

    def test_aggressive_policy_inlines_small_functions(self):
        from repro.compiler import TypeEnvironment, default_environment, fn

        env = TypeEnvironment(parent=default_environment())
        env.declare_function(
            "Helper", fn(["Integer64"], "Integer64"),
            parse("Function[{x}, x + 5]"),
        )
        aggressive = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"]}, Helper[x]]',
            type_environment=env, options=CompilerOptions(
                inline_policy="aggressive"
            ),
        )
        assert list(aggressive.program.functions) == ["Main"]
        assert aggressive(1) == 6
