"""Pattern matching: blanks, sequences, conditions, specificity (§4.2)."""

import pytest

from repro.engine import Evaluator, match, match_q, pattern_specificity, substitute
from repro.mexpr import parse


def m(pattern: str, subject: str, evaluator=None):
    return match(parse(pattern), parse(subject), evaluator=evaluator)


class TestBasicMatching:
    def test_literal_match(self):
        assert m("1", "1") == {}
        assert m("1", "2") is None

    def test_blank_matches_anything(self):
        assert m("_", "f[x]") == {}
        assert m("_", "42") == {}

    def test_named_blank_binds(self):
        assert m("x_", "5") == {"x": parse("5")}

    def test_typed_blank(self):
        assert m("x_Integer", "5") == {"x": parse("5")}
        assert m("x_Integer", "5.0") is None
        assert m("x_Real", "5.0") is not None
        assert m("x_Symbol", "foo") is not None
        assert m("x_String", '"s"') is not None

    def test_head_restricted_blank_on_normals(self):
        assert m("_List", "{1, 2}") is not None
        assert m("_List", "f[1]") is None

    def test_structural_match(self):
        bindings = m("f[x_, y_]", "f[1, g[2]]")
        assert bindings == {"x": parse("1"), "y": parse("g[2]")}

    def test_arity_mismatch(self):
        assert m("f[x_]", "f[1, 2]") is None

    def test_head_mismatch(self):
        assert m("f[x_]", "g[1]") is None

    def test_repeated_name_must_agree(self):
        assert m("f[x_, x_]", "f[1, 1]") is not None
        assert m("f[x_, x_]", "f[1, 2]") is None

    def test_nested_patterns(self):
        bindings = m("f[g[x_], x_]", "f[g[3], 3]")
        assert bindings == {"x": parse("3")}


class TestSequencePatterns:
    def test_blank_sequence_one_or_more(self):
        bindings = m("f[x__]", "f[1, 2, 3]")
        assert bindings["x"] == parse("Sequence[1, 2, 3]")
        assert m("f[x__]", "f[]") is None

    def test_blank_null_sequence_zero_or_more(self):
        assert m("f[x___]", "f[]")["x"] == parse("Sequence[]")

    def test_sequence_with_following_pattern(self):
        bindings = m("f[x__, y_]", "f[1, 2, 3]")
        assert bindings["x"] == parse("Sequence[1, 2]")
        assert bindings["y"] == parse("3")

    def test_two_sequences_backtrack(self):
        bindings = m("f[x__, y__]", "f[1, 2, 3]")
        # greedy first: x takes as much as possible
        assert bindings["x"] == parse("Sequence[1, 2]")
        assert bindings["y"] == parse("Sequence[3]")

    def test_typed_sequence(self):
        assert m("f[x__Integer]", "f[1, 2]") is not None
        assert m("f[x__Integer]", "f[1, 2.0]") is None


class TestGuards:
    def test_condition(self, evaluator):
        assert m("x_ /; x > 3", "5", evaluator) is not None
        assert m("x_ /; x > 3", "2", evaluator) is None

    def test_pattern_test(self, evaluator):
        assert m("x_?EvenQ", "4", evaluator) is not None
        assert m("x_?EvenQ", "3", evaluator) is None

    def test_alternatives(self):
        pattern = parse("Alternatives[1, 2, x_Real]")
        assert match(pattern, parse("2")) is not None
        assert match(pattern, parse("2.5")) is not None
        assert match(pattern, parse("3")) is None

    def test_hold_pattern_transparent(self):
        assert m("HoldPattern[f[x_]]", "f[1]") is not None


class TestSubstitute:
    def test_simple(self):
        result = substitute(parse("x + y"), {"x": parse("1")})
        assert result == parse("1 + y")

    def test_sequence_splices(self):
        result = substitute(
            parse("f[pre, x, post]"), {"x": parse("Sequence[1, 2]")}
        )
        assert result == parse("f[pre, 1, 2, post]")

    def test_head_substitution(self):
        result = substitute(parse("h[1]"), {"h": parse("g")})
        assert result == parse("g[1]")


class TestSpecificity:
    def test_literal_beats_typed_blank(self):
        assert pattern_specificity(parse("f[1]")) > pattern_specificity(
            parse("f[x_Integer]")
        )

    def test_typed_blank_beats_bare(self):
        assert pattern_specificity(parse("x_Integer")) > pattern_specificity(
            parse("x_")
        )

    def test_blank_beats_sequence(self):
        assert pattern_specificity(parse("x_")) > pattern_specificity(
            parse("x__")
        )

    def test_condition_adds_specificity(self):
        assert pattern_specificity(parse("x_ /; x > 0")) > (
            pattern_specificity(parse("x_"))
        )

    def test_paper_and_macro_ordering(self):
        """§4.2: the And rules must order most-specific-first."""
        rules = ["And[x_]", "And[False, rest___]", "And[x_, False]",
                 "And[True, rest__]", "And[x_, y_]", "And[x_, y_, rest__]"]
        unary, false_first, false_second, true_first, binary, nary = (
            pattern_specificity(parse(r)) for r in rules
        )
        # the two literal-anchored rules are equally specific (disjoint
        # literals), and both beat the generic binary and n-ary rules
        assert false_first == true_first
        assert false_second > binary
        # the n-ary fallback never outranks the binary rule (arity keeps
        # them disjoint; equal scores are fine)
        assert binary >= nary


class TestDownValueOrdering:
    def test_specific_rule_fires_first(self, run):
        assert run("f[x_] := 0; f[1] := 99; {f[1], f[2]}") == "List[99, 0]"

    def test_redefinition_replaces(self, run):
        assert run("g[x_] := 1; g[x_] := 2; g[0]") == "2"
