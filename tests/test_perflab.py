"""The performance lab: registry completeness, record schema and
migration, comparator verdicts on synthetic trajectories, and a
tiny-scale end-to-end ``python -m repro bench`` smoke run."""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.perflab import compare, stats, store
from repro.perflab.registry import ALL_SPECS, SUITES, resolve_specs

REPO_ROOT = Path(__file__).resolve().parent.parent


# -- registry ----------------------------------------------------------------


class TestRegistry:
    def test_spec_names_unique_and_suites_known(self):
        names = [spec.name for spec in ALL_SPECS]
        assert len(names) == len(set(names))
        for spec in ALL_SPECS:
            assert spec.suite in SUITES
            assert spec.artifact in store.ARTIFACT_FILES

    def test_smoke_suite_spans_engine_artifacts(self):
        # the CI smoke run must append to the three engine trajectory
        # files; the server loadgen has its own suite (and CI job) because
        # a multi-client asyncio run is too wall-clock-heavy for smoke
        artifacts = {spec.artifact for spec in resolve_specs("smoke")}
        assert artifacts == set(store.ARTIFACT_FILES) - {"server"}
        assert {spec.artifact for spec in ALL_SPECS} == \
            set(store.ARTIFACT_FILES)

    def test_every_suite_resolves(self):
        for suite in SUITES:
            assert resolve_specs(suite)
        assert len(resolve_specs("all")) == len(ALL_SPECS)

    def test_unknown_suite_raises(self):
        with pytest.raises(ValueError):
            resolve_specs("nonesuch")

    def test_experiments_regen_commands_have_registered_specs(self):
        """Every `python -m repro bench` command EXPERIMENTS.md publishes
        must select at least one registered spec."""
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        commands = re.findall(r"python -m repro bench([^`\n]*)", text)
        assert commands, "EXPERIMENTS.md no longer documents repro bench"
        checked = 0
        for arg_string in commands:
            if "<suite>" in arg_string:  # the usage template
                continue
            tokens = arg_string.split()
            suite = name_filter = None
            for key, value in zip(tokens, tokens[1:]):
                if key == "--suite":
                    suite = value
                elif key == "--filter":
                    name_filter = value
            if suite is None and name_filter is None:
                continue  # bare mention (e.g. `--list`)
            specs = resolve_specs(suite or "all", name_filter)
            assert specs, f"no spec matches documented command:{arg_string}"
            checked += 1
        assert checked >= 6  # figure2 + ablations + evaluator + compiler...


# -- timing core -------------------------------------------------------------


class TestStats:
    def test_median_and_mad(self):
        assert stats.median([3, 1, 2]) == 2
        assert stats.median([1, 2, 3, 4]) == 2.5
        assert stats.mad([1, 1, 5]) == 0  # median of |v - 1| = [0, 0, 4]

    def test_sample_summaries_and_noise_flag(self):
        quiet = stats.Sample((1.0, 1.01, 1.02))
        assert quiet.best == 1.0
        assert not quiet.noisy
        jittery = stats.Sample((1.0, 2.0, 10.0))
        assert jittery.rel_dispersion == 0.5  # mad 1.0 / median 2.0
        assert jittery.noisy

    def test_noise_threshold_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_NOISE", "0.6")
        assert not stats.Sample((1.0, 2.0, 10.0)).noisy

    def test_measure_returns_sample_result_and_calibrations(self):
        sample, result = stats.measure(lambda: 41 + 1, repeats=2, warmup=1)
        assert result == 42
        assert sample.repeats == 2
        assert len(sample.calibrations) == 2
        assert sample.best_units is not None
        measurement = sample.as_measurement()
        assert measurement["unit"] == "seconds"
        assert measurement["best_units"] > 0

    def test_best_units_cancels_proportional_slowdown(self):
        # repeat 0 ran on a 2x-slower machine state: raw doubled, but so
        # did the spin-loop witness — identical work units
        sample = stats.Sample((0.2, 0.1), calibrations=(0.02, 0.01))
        assert sample.best_units == pytest.approx(10.0)

    def test_ratio_sample_pairs_repeats(self):
        num = stats.Sample((4.0, 8.0))
        den = stats.Sample((1.0, 2.0))
        ratio = stats.ratio_sample(num, den)
        assert ratio.samples == (4.0, 4.0)
        assert ratio.unit == "x"

    def test_scalar_shape(self):
        measurement = stats.scalar(7.0, direction="higher", unit="x")
        assert measurement["best"] == measurement["median"] == 7.0
        assert measurement["repeats"] == 1


# -- store: schema + migration ----------------------------------------------


def _entry(best: float, **extra) -> dict:
    return {
        "title": "synthetic",
        "verified": True,
        "measurements": {"seconds": _m(best)},
        "meta": {},
        **extra,
    }


def _m(best: float, *, mad: float = 0.0, direction: str = "lower",
       unit: str = "seconds", **extra) -> dict:
    return {
        "unit": unit,
        "direction": direction,
        "best": best,
        "median": best,
        "mad": mad,
        "repeats": 3,
        "noisy": False,
        **extra,
    }


class TestStore:
    def test_record_roundtrip(self, tmp_path):
        record = store.make_record(
            "smoke", 0.05, {"bench.x": _entry(0.01)}, root=REPO_ROOT)
        assert record["schema"] == store.SCHEMA_VERSION
        assert record["calibration_seconds"] > 0
        assert record["host"]["cpu_count"] >= 1
        trajectory_store = store.TrajectoryStore(tmp_path)
        path = trajectory_store.append("evaluator", record)
        assert path.name == "BENCH_evaluator.json"
        loaded = trajectory_store.load("evaluator")
        assert loaded == [record]

    def test_v0_record_migrates(self):
        raw = {
            "timestamp": "2026-08-01T00:00:00",
            "tierup": {
                "workload": "recursive-downvalue fib[19]",
                "interpreted_seconds": 0.8,
                "promoted_seconds": 0.01,
                "factor": 80.0,
                "promoted_tier": "compiled",
            },
            "orderless_plus_seconds": 0.002,
            "thousand_rule_dispatch_seconds": 0.004,
        }
        migrated = store.migrate(raw)
        assert migrated["schema"] == store.SCHEMA_VERSION
        assert migrated["migrated_from"] == 0
        benchmarks = migrated["benchmarks"]
        assert set(benchmarks) == {
            "dispatch.tierup", "dispatch.orderless_plus",
            "dispatch.thousand_rule",
        }
        factor = benchmarks["dispatch.tierup"]["measurements"]["factor"]
        assert factor["best"] == 80.0
        assert factor["direction"] == "higher"

    def test_append_rewrites_legacy_file_migrated(self, tmp_path):
        legacy = [{"timestamp": "t", "orderless_plus_seconds": 0.002}]
        (tmp_path / "BENCH_evaluator.json").write_text(json.dumps(legacy))
        trajectory_store = store.TrajectoryStore(tmp_path)
        record = store.make_record("smoke", 0.05, {"b": _entry(0.01)})
        trajectory_store.append("evaluator", record)
        on_disk = json.loads(
            (tmp_path / "BENCH_evaluator.json").read_text())
        assert [r["schema"] for r in on_disk] == [1, 1]

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            store.migrate({"schema": 99})

    def test_unknown_artifact_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            store.TrajectoryStore(tmp_path).path("nonesuch")


# -- comparator --------------------------------------------------------------


class TestComparator:
    def test_missing_baseline_is_new(self):
        verdict = compare.classify(_m(0.1), None)
        assert verdict.status == "new"

    def test_identical_is_stable(self):
        verdict = compare.classify(_m(0.1), _m(0.1))
        assert verdict.status == "stable"
        assert verdict.delta == 0.0

    def test_synthetic_2x_slowdown_regresses(self):
        verdict = compare.classify(_m(0.2), _m(0.1))
        assert verdict.status == "regressed"
        assert verdict.delta == pytest.approx(1.0)

    def test_synthetic_4x_speedup_improves(self):
        verdict = compare.classify(_m(0.05), _m(0.2))
        assert verdict.status == "improved"

    def test_dispersed_sample_goes_noisy_not_regressed(self):
        # relative MAD 0.3 widens the threshold to 4 x 0.3 = 1.2: the
        # +100% move lands between base and widened -> noisy soft-warn
        verdict = compare.classify(_m(0.2, mad=0.06), _m(0.1))
        assert verdict.status == "noisy"

    def test_higher_direction_drop_regresses(self):
        current = _m(4.0, direction="higher", unit="x")
        baseline = _m(10.0, direction="higher", unit="x")
        verdict = compare.classify(current, baseline)
        assert verdict.status == "regressed"
        assert verdict.delta == pytest.approx(0.6)

    def test_gate_false_caps_at_noisy(self):
        verdict = compare.classify(_m(0.2, gate=False), _m(0.1))
        assert verdict.status == "noisy"

    def test_sub_timer_floor_movement_is_stable(self):
        # 80us -> 120us is +50%, but under the 1ms floor: timer noise
        verdict = compare.classify(_m(0.00012), _m(0.00008))
        assert verdict.status == "stable"

    def test_work_units_cancel_machine_drift(self):
        # raw time doubled, but so did the spin-loop witness: the 2x
        # slower machine must not read as a code regression
        current = _m(0.2, best_units=10.0)
        baseline = _m(0.1, best_units=10.0)
        verdict = compare.classify(current, baseline)
        assert verdict.status == "stable"

    def test_work_units_expose_real_regression(self):
        current = _m(0.2, best_units=20.0)
        baseline = _m(0.1, best_units=10.0)
        verdict = compare.classify(current, baseline)
        assert verdict.status == "regressed"

    def test_threshold_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_THRESHOLD", "2.0")
        verdict = compare.classify(_m(0.2), _m(0.1))
        assert verdict.status == "stable"

    def test_per_measurement_threshold_override(self):
        verdict = compare.classify(_m(0.2, threshold=2.5), _m(0.1))
        assert verdict.status == "stable"

    def test_record_calibration_rescales_seconds_baseline(self):
        current = {
            "calibration_seconds": 0.02,  # this machine is 2x slower
            "benchmarks": {"b": {"measurements": {"seconds": _m(0.2)}}},
        }
        baseline = {
            "calibration_seconds": 0.01,
            "benchmarks": {"b": {"measurements": {"seconds": _m(0.1)}}},
        }
        (verdict,) = compare.compare_records(current, baseline)
        assert verdict.status == "stable"

    def test_per_benchmark_calibration_preferred(self):
        # the record-level calibration says "same speed" but the
        # benchmark-adjacent witness caught the 2x burst
        current = {
            "calibration_seconds": 0.01,
            "benchmarks": {"b": {
                "calibration_seconds": 0.02,
                "measurements": {"seconds": _m(0.2)},
            }},
        }
        baseline = {
            "calibration_seconds": 0.01,
            "benchmarks": {"b": {
                "calibration_seconds": 0.01,
                "measurements": {"seconds": _m(0.1)},
            }},
        }
        (verdict,) = compare.compare_records(current, baseline)
        assert verdict.status == "stable"

    def test_calibration_ratio_clamped(self):
        ratio = compare.calibration_ratio(
            {"calibration_seconds": 1.0}, {"calibration_seconds": 0.001})
        assert ratio == 4.0

    def test_baseline_record_prefers_same_scale(self):
        trajectory = [
            {"scale": 0.05, "suite": "smoke"},
            {"scale": 1.0, "suite": "figure2"},
        ]
        assert compare.baseline_record(trajectory, scale=0.05) == \
            trajectory[0]
        assert compare.baseline_record(trajectory) == trajectory[1]
        assert compare.baseline_record([]) is None

    def test_worst_status_ordering(self):
        def verdicts(*statuses):
            return [compare.Verdict("b", "m", s, 1.0) for s in statuses]

        assert compare.worst_status([]) == "stable"
        assert compare.worst_status(
            verdicts("improved", "noisy", "stable")) == "noisy"
        assert compare.worst_status(
            verdicts("stable", "regressed", "noisy")) == "regressed"


# -- end to end --------------------------------------------------------------


@pytest.mark.slow
class TestEndToEnd:
    def _run(self, tmp_path, *extra):
        import io

        from repro.perflab.cli import main

        buffer = io.StringIO()
        status = main(
            ["--suite", "smoke", "--scale", "0.004", "--repeats", "2",
             "--bench-dir", str(tmp_path), *extra],
            output=buffer,
        )
        return status, buffer.getvalue()

    def test_smoke_run_appends_verdicts_and_reports(self, tmp_path,
                                                    monkeypatch):
        # the test verifies the plumbing (records, verdicts, exit
        # contract), not this machine's noise profile: at repeats=2 and
        # tiny scale a loaded CI box can exceed the default threshold,
        # so pin a generous one for determinism
        monkeypatch.setenv("REPRO_BENCH_THRESHOLD", "3.0")
        report = tmp_path / "report.md"
        traces = tmp_path / "traces"
        status, output = self._run(
            tmp_path, "--compare", "--report", str(report),
            "--trace-dir", str(traces))
        assert status == 0, output
        # every measurement is new on the first run
        assert " new " in output or "new" in output
        # one record per engine artifact file, all schema-versioned (the
        # server artifact belongs to its own suite, not smoke)
        for artifact, filename in store.ARTIFACT_FILES.items():
            if artifact == "server":
                assert not (tmp_path / filename).exists()
                continue
            records = json.loads((tmp_path / filename).read_text())
            assert len(records) == 1
            assert records[0]["schema"] == store.SCHEMA_VERSION
            assert records[0]["suite"] == "smoke"
            assert records[0]["benchmarks"]
        report_text = report.read_text()
        assert "Figure 2" in report_text
        assert "Trajectory verdicts" in report_text
        assert any(traces.glob("*.json"))

        # run 2, identical code: must compare clean against run 1
        status, output = self._run(tmp_path, "--compare")
        assert status == 0, output
        assert "FAIL" not in output
        for artifact, filename in store.ARTIFACT_FILES.items():
            if artifact == "server":
                continue
            records = json.loads((tmp_path / filename).read_text())
            assert len(records) == 2

    def test_list_mode_runs_nothing(self, tmp_path):
        import io

        from repro.perflab.cli import main

        buffer = io.StringIO()
        status = main(["--suite", "all", "--list",
                       "--bench-dir", str(tmp_path)], output=buffer)
        assert status == 0
        listing = buffer.getvalue()
        for spec in ALL_SPECS:
            assert spec.name in listing
        assert not list(tmp_path.glob("BENCH_*.json"))
