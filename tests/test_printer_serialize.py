"""FullForm/InputForm printers and the wire serializer."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mexpr import (
    MComplex,
    MExprNormal,
    MInteger,
    MReal,
    MString,
    MSymbol,
    dumps,
    expr,
    full_form,
    input_form,
    list_expr,
    loads,
    parse,
)


class TestFullForm:
    def test_atoms(self):
        assert full_form(MInteger(-3)) == "-3"
        assert full_form(MReal(0.5)) == "0.5"
        assert full_form(MString('a"b')) == '"a\\"b"'
        assert full_form(MSymbol("x")) == "x"
        assert full_form(MComplex(1 + 2j)) == "Complex[1.0, 2.0]"

    def test_normal(self):
        assert full_form(expr("f", 1, expr("g", "s"))) == 'f[1, g["s"]]'

    def test_special_reals(self):
        assert full_form(MReal(float("nan"))) == "Indeterminate"
        assert full_form(MReal(float("inf"))) == "Infinity"
        assert full_form(MReal(float("-inf"))) == "-Infinity"


class TestInputForm:
    @pytest.mark.parametrize("source,expected", [
        ("Plus[1, 2]", "1 + 2"),
        ("Times[2, x]", "2*x"),
        ("Power[x, 2]", "x^2"),
        ("List[1, 2]", "{1, 2}"),
        ("Part[x, 1]", "x[[1]]"),
        ("Rule[a, b]", "a -> b"),
        ("Slot[1]", "#"),
        ("Slot[2]", "#2"),
        ("Pattern[x, Blank[]]", "x_"),
        ("Pattern[x, Blank[Integer]]", "x_Integer"),
        ("Equal[a, 1]", "a == 1"),
    ])
    def test_rendering(self, source, expected):
        assert input_form(parse(source)) == expected

    def test_precedence_parenthesization(self):
        assert input_form(parse("Times[Plus[1, 2], 3]")) == "(1 + 2)*3"

    def test_function_renders_with_ampersand(self):
        assert "&" in input_form(parse("Function[Plus[Slot[1], 1]]"))


class TestSerialization:
    @pytest.mark.parametrize("source", [
        "42", "2.5", '"text"', "sym",
        "f[1, {2, 3}, g[x]]",
        "Function[{n}, If[n < 1, 1, n]]",
    ])
    def test_round_trip(self, source):
        node = parse(source)
        assert loads(dumps(node)) == node

    def test_metadata_survives(self):
        node = parse("f[x]")
        node.set_property("stage", "lowered")
        restored = loads(dumps(node))
        assert restored.get_property("stage") == "lowered"

    def test_non_serializable_metadata_dropped(self):
        node = parse("x")
        node.set_property("callback", lambda: None)
        assert loads(dumps(node)) == node

    def test_complex_round_trip(self):
        node = MComplex(3 - 4j)
        assert loads(dumps(node)) == node


# -- property-based -------------------------------------------------------------------

_atoms = st.one_of(
    st.integers(min_value=-10**12, max_value=10**12).map(MInteger),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e6, max_value=1e6).map(MReal),
    st.text(alphabet="abcXYZ ", max_size=8).map(MString),
    st.sampled_from(["x", "y", "foo", "Plus"]).map(MSymbol),
)


def _exprs(depth: int):
    if depth == 0:
        return _atoms
    return st.one_of(
        _atoms,
        st.builds(
            lambda head, args: MExprNormal(MSymbol(head), args),
            st.sampled_from(["f", "g", "List", "Plus"]),
            st.lists(_exprs(depth - 1), max_size=3),
        ),
    )


class TestPropertyBased:
    @given(_exprs(3))
    @settings(max_examples=80)
    def test_serialize_round_trip(self, node):
        assert loads(dumps(node)) == node

    @given(_exprs(3))
    @settings(max_examples=80)
    def test_clone_equals_original(self, node):
        assert node.clone() == node

    @given(st.integers(min_value=-10**9, max_value=10**9),
           st.integers(min_value=-10**9, max_value=10**9))
    @settings(max_examples=50)
    def test_parse_prints_integers(self, a, b):
        node = expr("Plus", a, b)
        assert parse(full_form(node)) == node
