"""Structural product types: TypeProduct / TypeProjection (§4.4)."""

import pytest

from repro.compiler import FunctionCompile
from repro.compiler.types.specifier import (
    CompoundType,
    parse_type_specifier,
    ty,
)
from repro.errors import WolframTypeError
from repro.mexpr import parse


class TestTypeSpecifier:
    def test_type_product_parses(self):
        node = parse_type_specifier(
            parse('TypeProduct["Integer64", "Real64"]')
        )
        assert isinstance(node, CompoundType)
        assert node.constructor == "Product"
        assert node.params == (ty("Integer64"), ty("Real64"))

    def test_type_projection_extracts_component(self):
        node = parse_type_specifier(parse(
            'TypeProjection[TypeProduct["Integer64", "Real64"], 2]'
        ))
        assert node == ty("Real64")

    def test_projection_index_out_of_range(self):
        with pytest.raises(WolframTypeError):
            parse_type_specifier(parse(
                'TypeProjection[TypeProduct["Integer64"], 5]'
            ))

    def test_projection_of_non_product(self):
        with pytest.raises(WolframTypeError):
            parse_type_specifier(parse('TypeProjection["Integer64", 1]'))


class TestCompiledProducts:
    def test_make_and_project(self):
        f = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"], Typed[y, "Real64"]},'
            ' Module[{p = Native`MakeProduct[x, y]},'
            '  Native`Projection2[p] + 1.0]]'
        )
        assert f(3, 2.5) == 3.5

    def test_projection_macro_by_literal_index(self):
        f = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"], Typed[y, "MachineInteger"]},'
            ' Module[{p = Native`MakeProduct[x, y]},'
            '  Native`Projection[p, 1] * 10 + Native`Projection[p, 2]]]'
        )
        assert f(4, 2) == 42

    def test_three_field_product(self):
        f = FunctionCompile(
            'Function[{Typed[a, "MachineInteger"],'
            ' Typed[b, "MachineInteger"], Typed[c, "MachineInteger"]},'
            ' Module[{p = Native`MakeProduct[a, b, c]},'
            '  Native`Projection[p, 3] - Native`Projection[p, 1]]]'
        )
        assert f(10, 20, 30) == 20

    def test_heterogeneous_fields_keep_their_types(self):
        f = FunctionCompile(
            'Function[{Typed[s, "String"], Typed[n, "MachineInteger"]},'
            ' Module[{p = Native`MakeProduct[s, n]},'
            '  StringLength[Native`Projection1[p]] + Native`Projection2[p]]]'
        )
        assert f("four", 10) == 14

    def test_product_typed_parameter(self):
        f = FunctionCompile(
            'Function[{Typed[p, TypeSpecifier['
            ' TypeProduct["Integer64", "Integer64"]]]},'
            ' Native`Projection1[p] + Native`Projection2[p]]'
        )
        assert f((20, 22)) == 42

    def test_product_returned_to_python(self):
        f = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"]},'
            ' Native`MakeProduct[x, x * x]]'
        )
        assert f(6) == (6, 36)

    def test_products_flow_through_loops(self):
        # a (value, count) accumulator threaded through a loop
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{acc = Native`MakeProduct[0, 0], i = 1},'
            '  While[i <= n,'
            '   acc = Native`MakeProduct['
            '     Native`Projection1[acc] + i,'
            '     Native`Projection2[acc] + 1];'
            '   i = i + 1];'
            '  Native`Projection1[acc] * 100 + Native`Projection2[acc]]]'
        )
        assert f(10) == 5510
