"""The Profile instrumentation flag (§A.6.2's Information header)."""

from repro.compiler import FunctionCompile

SRC = (
    'Function[{Typed[n, "MachineInteger"]},'
    ' Module[{s = 0, i = 1}, While[i <= n, s = s + i*i; i = i + 1]; s]]'
)


class TestProfile:
    def test_counters_populated(self):
        f = FunctionCompile(SRC, Profile=True)
        assert f(10) == 385
        counts = f.profile_counts
        assert counts, "profiling produced no counters"
        # the loop multiplies once per iteration
        assert counts.get("Times") == 10
        assert counts.get("Plus", 0) >= 10

    def test_counters_accumulate_across_calls(self):
        f = FunctionCompile(SRC, Profile=True)
        f(5)
        first = dict(f.profile_counts)
        f(5)
        assert f.profile_counts["Times"] == 2 * first["Times"]

    def test_off_by_default(self):
        f = FunctionCompile(SRC)
        f(5)
        assert f.profile_counts == {}
        assert "_prof[" not in f.generated_source

    def test_information_header_reflects_flag(self):
        profiled = FunctionCompile(SRC, Profile=True)
        assert profiled.program.main_function().information["Profile"] is True
        plain = FunctionCompile(SRC)
        assert plain.program.main_function().information["Profile"] is False
