"""Property-based equivalence: the three execution tiers must agree.

The strongest correctness invariant this reproduction has: for any program
in the common subset, interpreter, bytecode VM, and new-compiler results
coincide with each other and with a Python oracle.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode import compile_function
from repro.compiler import FunctionCompile
from repro.engine import Evaluator
from repro.mexpr import parse

# -- expression generator over a tiny integer language -----------------------------

_INT = st.integers(min_value=-50, max_value=50)


def _expressions(depth: int):
    leaf = st.one_of(
        _INT.map(str),
        st.just("x"),
    )
    if depth == 0:
        return leaf
    sub = _expressions(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(sub, sub).map(lambda t: f"({t[0]} + {t[1]})"),
        st.tuples(sub, sub).map(lambda t: f"({t[0]} * {t[1]})"),
        st.tuples(sub, sub).map(lambda t: f"({t[0]} - {t[1]})"),
        st.tuples(sub, sub, sub).map(
            lambda t: f"If[{t[0]} < {t[1]}, {t[2]}, {t[0]}]"
        ),
        sub.map(lambda s: f"Abs[{s}]"),
        sub.map(lambda s: f"Max[{s}, 0]"),
    )


class TestTierEquivalence:
    @given(_expressions(3), _INT)
    @settings(max_examples=40, deadline=None)
    def test_integer_expressions_agree(self, body, x):
        evaluator = Evaluator()
        interpreted = evaluator.run(f"Function[{{x}}, {body}][{x}]")
        expected = interpreted.to_python()

        compiled = FunctionCompile(
            f'Function[{{Typed[x, "MachineInteger"]}}, {body}]'
        )
        assert compiled(x) == expected

        bytecode = compile_function(
            parse("{{x, _Integer}}"), parse(body), evaluator
        )
        assert bytecode(x) == expected

    @given(st.lists(st.integers(min_value=-1000, max_value=1000),
                    min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_total_agrees(self, data):
        compiled = FunctionCompile(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Integer64", 1]]]},'
            ' Total[v]]'
        )
        assert compiled(data) == sum(data)

    @given(st.lists(st.integers(min_value=-10**6, max_value=10**6),
                    min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_compiled_qsort_matches_sorted(self, data):
        from repro.benchsuite import programs

        compiled = FunctionCompile(programs.NEW_QSORT)
        out = compiled(data, lambda a, b: a < b)
        assert out.to_nested() == sorted(data)

    @given(st.text(max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_compiled_fnv_matches_reference(self, text):
        from repro.benchsuite import programs, reference

        compiled = FunctionCompile(programs.NEW_FNV1A)
        assert compiled(text) == reference.fnv1a_c_port(text)

    @given(st.text(max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_compiled_fnv64_matches_python(self, text):
        from repro.benchsuite import programs

        def fnv64(s: str) -> int:
            h = 14695981039346656037
            for b in s.encode("utf-8"):
                h ^= b
                h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
            return h

        compiled = FunctionCompile(programs.NEW_FNV1A_64)
        assert compiled(text) == fnv64(text)

    @given(st.floats(min_value=-3.0, max_value=3.0,
                     allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_real_math_matches_python(self, x):
        compiled = FunctionCompile(
            'Function[{Typed[x, "Real64"]}, Sin[x]*Cos[x] + Exp[x]/2.0]'
        )
        assert compiled(x) == pytest.approx(
            math.sin(x) * math.cos(x) + math.exp(x) / 2.0
        )

# fib(93) overflows int64, and the loop computes one step ahead: cap at 91
    @given(st.integers(min_value=0, max_value=91))
    @settings(max_examples=20, deadline=None)
    def test_iterative_fib_matches_python(self, n):
        compiled = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{a = 0, b = 1, i = 1},'
            '  While[i <= n, Module[{t = a + b}, a = b; b = t]; i = i + 1];'
            '  a]]'
        )
        a, b = 0, 1
        for _ in range(n):
            a, b = b, a + b
        assert compiled(n) == a


class TestInterpreterOracleProperties:
    @given(st.lists(st.integers(min_value=-100, max_value=100), max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_sort_matches_python(self, data):
        evaluator = Evaluator()
        from repro.mexpr import to_mexpr

        evaluator.state.set_own_value("lst", to_mexpr(data))
        result = evaluator.run("Sort[lst]").to_python()
        assert result == sorted(data)

    @given(st.lists(st.integers(min_value=-100, max_value=100),
                    min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_fold_plus_is_total(self, data):
        evaluator = Evaluator()
        from repro.mexpr import to_mexpr

        evaluator.state.set_own_value("lst", to_mexpr(data))
        fold = evaluator.run("Fold[Plus, 0, lst]").to_python()
        total = evaluator.run("Total[lst]").to_python()
        assert fold == total == sum(data)

    @given(st.integers(min_value=1, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_range_total_closed_form(self, n):
        evaluator = Evaluator()
        assert evaluator.run(f"Total[Range[{n}]]").to_python() == (
            n * (n + 1) // 2
        )
