"""The compiled-code runtime library: packed arrays, checked arithmetic,
memory management, strings, primes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IntegerOverflowError, WolframRuntimeError
from repro.runtime import (
    INT64_MAX,
    INT64_MIN,
    PackedArray,
    checked_binary_plus_Integer64_Integer64 as checked_plus,
    checked_binary_times_Integer64_Integer64 as checked_times,
    checked_unary_minus_Integer64 as checked_minus,
    is_probable_prime,
    memory_acquire,
    memory_release,
    small_prime_table,
)


class TestCheckedArithmetic:
    def test_plus_in_range(self):
        assert checked_plus(1, 2) == 3
        assert checked_plus(INT64_MAX - 1, 1) == INT64_MAX

    def test_plus_overflow(self):
        with pytest.raises(IntegerOverflowError):
            checked_plus(INT64_MAX, 1)

    def test_plus_underflow(self):
        with pytest.raises(IntegerOverflowError):
            checked_plus(INT64_MIN, -1)

    def test_times_overflow(self):
        with pytest.raises(IntegerOverflowError):
            checked_times(2 ** 32, 2 ** 32)

    def test_minus_overflow_on_min(self):
        with pytest.raises(IntegerOverflowError):
            checked_minus(INT64_MIN)

    def test_divide_by_zero(self):
        from repro.runtime import checked_divide_Real64

        with pytest.raises(WolframRuntimeError):
            checked_divide_Real64(1.0, 0.0)

    @given(st.integers(min_value=-2**61, max_value=2**61),
           st.integers(min_value=-2**61, max_value=2**61))
    @settings(max_examples=100)
    def test_plus_matches_python_in_range(self, a, b):
        assert checked_plus(a, b) == a + b


class TestPackedArray:
    def test_from_nested_rank1(self):
        array = PackedArray.from_nested([1.0, 2.0], "Real64")
        assert array.dims == (2,)
        assert array.data == [1.0, 2.0]

    def test_from_nested_rank2(self):
        array = PackedArray.from_nested([[1, 2, 3], [4, 5, 6]], "Integer64")
        assert array.dims == (2, 3)
        assert array.to_nested() == [[1, 2, 3], [4, 5, 6]]

    def test_ragged_rejected(self):
        with pytest.raises(WolframRuntimeError):
            PackedArray.from_nested([[1, 2], [3]], "Integer64")

    def test_compensating_ragged_rejected(self):
        """Row lengths that multiply out to the right flat total must still
        be rejected — the old flat-count check accepted this shape."""
        with pytest.raises(WolframRuntimeError):
            PackedArray.from_nested([[1, 2], [3], [4, 5, 6]], "Integer64")
        with pytest.raises(WolframRuntimeError):
            PackedArray.from_nested(
                [[[1], [2]], [[3, 4], []]], "Integer64"
            )
        # depth raggedness: a scalar where a row is expected, and vice versa
        with pytest.raises(WolframRuntimeError):
            PackedArray.from_nested([[1, 2], 3, [4, 5, 6]], "Integer64")
        with pytest.raises(WolframRuntimeError):
            PackedArray.from_nested([[1, [2]], [3, 4]], "Integer64")

    def test_one_based_indexing(self):
        array = PackedArray.from_nested([10, 20, 30], "Integer64")
        assert array.get1(1) == 10
        assert array.get1(3) == 30

    def test_negative_indexing(self):
        array = PackedArray.from_nested([10, 20, 30], "Integer64")
        assert array.get1(-1) == 30
        assert array.get1(-3) == 10

    def test_out_of_range(self):
        array = PackedArray.from_nested([1], "Integer64")
        with pytest.raises(WolframRuntimeError):
            array.get1(2)
        with pytest.raises(WolframRuntimeError):
            array.get1(0)
        with pytest.raises(WolframRuntimeError):
            array.get1(-2)

    def test_rank2_access(self):
        array = PackedArray.from_nested([[1, 2], [3, 4]], "Integer64")
        assert array.get2(2, 1) == 3
        array.set2(1, 2, 99)
        assert array.to_nested() == [[1, 99], [3, 4]]

    def test_copy_is_independent(self):
        array = PackedArray.from_nested([1, 2], "Integer64")
        clone = array.copy()
        clone.set1(1, 99)
        assert array.get1(1) == 1

    def test_numpy_round_trip(self):
        import numpy as np

        array = PackedArray.from_nested([[1.5, 2.5]], "Real64")
        round_tripped = PackedArray.from_numpy(array.to_numpy())
        assert round_tripped.to_nested() == array.to_nested()

    @given(st.lists(st.integers(min_value=-10**6, max_value=10**6),
                    min_size=1, max_size=32))
    @settings(max_examples=60)
    def test_indexing_matches_python_semantics(self, data):
        array = PackedArray.from_nested(data, "Integer64")
        for index in range(1, len(data) + 1):
            assert array.get1(index) == data[index - 1]
            assert array.get1(-index) == data[-index]


class TestMemoryManagement:
    def test_acquire_release_refcount(self):
        array = PackedArray.from_nested([1], "Integer64")
        assert array.ref_count == 1
        memory_acquire(array)
        assert array.ref_count == 2
        memory_release(array)
        assert array.ref_count == 1

    def test_noop_for_scalars(self):
        assert memory_acquire(5) == 5
        assert memory_release(2.5) == 2.5


class TestPrimes:
    def test_small_cases(self):
        assert not is_probable_prime(0)
        assert not is_probable_prime(1)
        assert is_probable_prime(2)
        assert is_probable_prime(3)
        assert not is_probable_prime(4)

    def test_against_sieve(self):
        table = set(small_prime_table(2000))
        for n in range(2000):
            assert is_probable_prime(n) == (n in table)

    def test_large_known_prime(self):
        assert is_probable_prime(2 ** 61 - 1)  # Mersenne prime
        assert not is_probable_prime(2 ** 61 - 3)

    def test_carmichael_numbers_rejected(self):
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(carmichael)

    def test_seed_table_size(self):
        """§6: the 2^14 seed table."""
        table = small_prime_table(1 << 14)
        assert table[0] == 2
        assert table[-1] < (1 << 14)
        assert len(table) == 1900  # π(16384)


class TestStrings:
    def test_utf8_bytes(self):
        from repro.runtime import string_utf8_bytes

        assert list(string_utf8_bytes("é")) == [0xC3, 0xA9]

    def test_byte_at_negative(self):
        from repro.runtime import string_byte_at, string_utf8_bytes

        data = string_utf8_bytes("abc")
        assert string_byte_at(data, -1) == ord("c")

    def test_character_codes_round_trip(self):
        from repro.runtime import from_character_codes, to_character_codes

        assert from_character_codes(to_character_codes("héllo")) == "héllo"


class TestBlasBridge:
    def test_dgemm_matches_numpy(self):
        import numpy as np

        from repro.runtime import dgemm

        a = PackedArray.from_nested([[1.0, 2.0], [3.0, 4.0]], "Real64")
        b = PackedArray.from_nested([[5.0, 6.0], [7.0, 8.0]], "Real64")
        ours = dgemm(a, b).to_numpy()
        reference = np.dot(a.to_numpy(), b.to_numpy())
        assert np.allclose(ours, reference)

    def test_dot_nested_scalar_result(self):
        from repro.runtime import dot_nested

        assert dot_nested([1.0, 2.0], [3.0, 4.0]) == 11.0


class TestMemoryBalance:
    def test_acquire_release_balance_for_temporary_tensor(self):
        """F7: a tensor consumed within the function balances its
        acquire/release events (the live-interval head and tail)."""
        from repro.compiler import FunctionCompile
        from repro.runtime import memory_stats, reset_memory_stats

        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Total[Table[i, {i, 1, n}]]]'
        )
        reset_memory_stats()
        f(10)
        f(10)
        stats = memory_stats()
        assert stats["acquire"] == stats["release"] == 2

    def test_returned_tensor_not_released(self):
        """A value that escapes through Return keeps its reference."""
        from repro.compiler import FunctionCompile
        from repro.runtime import memory_stats, reset_memory_stats

        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]}, Table[i, {i, 1, n}]]'
        )
        reset_memory_stats()
        out = f(4)
        stats = memory_stats()
        assert stats["acquire"] >= 1
        assert stats["release"] < stats["acquire"]
        assert out.ref_count >= 1
