"""Unit tests for ``repro.server``: admission, breakers, retry,
degradation, and the ``EngineServer`` request path."""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro.errors import RejectedError, WolframTimeoutError
from repro.errors import WolframRuntimeError
from repro.runtime.guard import Tier
from repro.server import (
    AdmissionController,
    BaseImage,
    BaseImageError,
    BreakerBoard,
    DegradationManager,
    EngineServer,
    LoadSpec,
    PressureLevel,
    RequestBreaker,
    RequestBudget,
    RetryPolicy,
    ServerConfig,
    generate,
)
from repro.server.session import Outcome, SessionState


def run_async(coroutine):
    return asyncio.run(coroutine)


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- admission ---------------------------------------------------------------


class TestAdmission:
    def test_budget_guard_and_scaling(self):
        budget = RequestBudget(deadline_seconds=2.0, steps=1000,
                               memory_bytes=4096)
        guard = budget.make_guard(label="t")
        assert guard.step_budget == 1000
        assert guard.memory_budget == 4096
        assert guard.remaining_time() is not None
        scaled = budget.scaled(0.5)
        assert scaled.deadline_seconds == 1.0
        assert scaled.steps == 500
        assert scaled.memory_bytes == 2048
        unlimited = RequestBudget(None, None, None).scaled(0.25)
        assert unlimited.deadline_seconds is None

    def test_sheds_past_queue_limit(self):
        async def scenario():
            controller = AdmissionController(max_concurrent=1, queue_limit=1)
            release = asyncio.Event()

            async def occupant():
                async with controller.slot():
                    await release.wait()

            async def waiter():
                async with controller.slot():
                    pass

            holder = asyncio.ensure_future(occupant())
            await asyncio.sleep(0.01)
            queued = asyncio.ensure_future(waiter())
            await asyncio.sleep(0.01)  # one waiting: the queue is full
            with pytest.raises(RejectedError) as excinfo:
                async with controller.slot():
                    pass
            assert excinfo.value.reason == "queue-full"
            assert excinfo.value.retry_after > 0
            release.set()
            await holder
            await queued
            return controller

        controller = run_async(scenario())
        assert controller.shed == 1
        assert controller.admitted == 2
        assert controller.waiting == 0
        assert controller.running == 0
        assert controller.peak_queue_depth == 1

    def test_rejected_error_envelope(self):
        error = RejectedError("queue-full", "busy", retry_after=0.25,
                              scope="s1")
        payload = error.to_dict()
        assert payload["reason"] == "queue-full"
        assert payload["retry_after"] == 0.25
        assert payload["scope"] == "s1"
        assert payload["error"] == "RejectedError"


# -- breakers ----------------------------------------------------------------


class TestRequestBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        defaults = dict(threshold=3, window=30.0, cooldown=1.0,
                        max_cooldown=8.0, clock=clock)
        defaults.update(kwargs)
        return RequestBreaker("s1", **defaults), clock

    def test_trips_at_threshold(self):
        breaker, _clock = self.make()
        breaker.record_failure("Timeout")
        breaker.record_failure("Timeout")
        breaker.admit()  # still closed
        breaker.record_failure("Timeout")
        with pytest.raises(RejectedError) as excinfo:
            breaker.admit()
        assert excinfo.value.reason == "session-breaker-open"
        assert 0 < excinfo.value.retry_after <= 1.0

    def test_half_open_probe_then_close(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure("Timeout")
        clock.advance(1.5)
        breaker.admit()  # the probe
        assert breaker.state == "half-open"
        with pytest.raises(RejectedError):
            breaker.admit()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.admit()

    def test_reopen_doubles_cooldown(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure("Timeout")
        first = breaker.retry_after()
        clock.advance(1.5)
        breaker.admit()
        breaker.record_failure("Timeout")  # the probe failed: re-open
        second = breaker.retry_after()
        assert second > first
        assert second == pytest.approx(2.0)
        # cap: repeated failures never exceed max_cooldown
        for _ in range(6):
            clock.advance(10.0)
            breaker.admit()
            breaker.record_failure("Timeout")
        assert breaker.retry_after() <= 8.0

    def test_rolling_window_ages_out_failures(self):
        breaker, clock = self.make(window=5.0)
        breaker.record_failure("Timeout")
        breaker.record_failure("Timeout")
        clock.advance(6.0)
        breaker.record_failure("Timeout")  # the first two aged out
        assert breaker.state == "closed"

    def test_admit_reports_probe_and_abandon_releases_it(self):
        breaker, clock = self.make()
        assert breaker.admit() is False  # closed: no probe involved
        for _ in range(3):
            breaker.record_failure("Timeout")
        clock.advance(1.5)
        assert breaker.admit() is True  # this caller is the probe
        assert breaker.state == "half-open"
        breaker.abandon_probe()
        # the slot is free again: the next caller becomes the probe instead
        assert breaker.admit() is True
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.abandon_probe()  # no probe held: a no-op, never an error
        assert breaker.state == "closed"

    def test_tenant_probe_released_when_session_breaker_rejects(self):
        clock = FakeClock()
        board = BreakerBoard(session_threshold=1, tenant_threshold=1,
                             cooldown=1.0, clock=clock)
        board.record("b", "acme", ok=False, kind="Timeout")  # trips both
        clock.advance(2.0)  # tenant cooldown elapsed...
        board.record("a", None, ok=False, kind="Timeout")  # session a opens
        # tenant grants its half-open probe, then session a refuses: the
        # tenant probe must be handed back, not leak in flight forever
        with pytest.raises(RejectedError) as excinfo:
            board.admit("a", "acme")
        assert excinfo.value.reason == "session-breaker-open"
        assert board.tenant("acme").state == "half-open"
        clock.advance(1.5)  # session a's cooldown elapses too
        probes = board.admit("a", "acme")  # would raise before the fix
        assert {probe.kind for probe in probes} == {"session", "tenant"}
        board.record("a", "acme", ok=True)
        assert board.tenant("acme").state == "closed"
        assert board.session("a").state == "closed"

    def test_board_scopes_session_and_tenant(self):
        clock = FakeClock()
        board = BreakerBoard(session_threshold=2, tenant_threshold=4,
                             clock=clock)
        # two sessions of one tenant fail alternately: each session stays
        # under its threshold... until it doesn't, and later the tenant trips
        board.record("a", "acme", ok=False, kind="Timeout")
        board.record("b", "acme", ok=False, kind="Timeout")
        board.admit("a", "acme")
        board.record("a", "acme", ok=False, kind="Timeout")
        with pytest.raises(RejectedError) as excinfo:
            board.admit("a", "acme")  # session a tripped (2 failures)
        assert excinfo.value.reason == "session-breaker-open"
        board.admit("b", "acme")  # b is still fine
        board.record("b", "acme", ok=False, kind="Timeout")
        with pytest.raises(RejectedError) as excinfo:
            board.admit("c", "acme")  # 4 tenant-wide failures: tenant open
        assert excinfo.value.reason == "tenant-breaker-open"
        snapshot = board.snapshot()
        assert snapshot["tenants"]["acme"]["state"] == "open"
        board.drop_session("a")
        assert "a" not in board.snapshot()["sessions"]


# -- retry -------------------------------------------------------------------


class TestRetryPolicy:
    def test_transience_classification(self):
        policy = RetryPolicy()
        assert policy.is_transient(WolframRuntimeError("Transient", "x"))
        assert policy.is_transient(WolframRuntimeError("Injected", "x"))
        assert not policy.is_transient(WolframRuntimeError("Overflow", "x"))
        assert not policy.is_transient(WolframTimeoutError("deadline"))

    def test_deterministic_jittered_schedule(self):
        first = RetryPolicy(attempts=4, seed=42).schedule()
        second = RetryPolicy(attempts=4, seed=42).schedule()
        assert first == second
        assert len(first) == 3
        assert all(0.0 <= delay <= 0.25 for delay in first)
        assert RetryPolicy(attempts=4, seed=1).schedule() != first

    def test_delay_ceiling_grows_then_caps(self):
        policy = RetryPolicy(attempts=10, base_delay=0.01, max_delay=0.04,
                             seed=0)
        # the *ceiling* doubles per attempt then caps; sample many draws
        draws = [max(policy.delay(attempt) for _ in range(200))
                 for attempt in (1, 3, 9)]
        assert draws[0] <= 0.01
        assert draws[1] <= 0.04
        assert draws[2] <= 0.04


# -- degradation -------------------------------------------------------------


class _StubSession:
    def __init__(self, idle: float = 0.0, memory: int = 0):
        self.idle = idle
        self.memory = memory
        self.caps: list = []
        self.state = SessionState.IDLE

    def apply_tier_cap(self, cap, reason=""):
        self.caps.append(cap)
        return 1 if self.caps and cap is not Tier.COMPILED else 0

    def idle_seconds(self, now=None):
        return self.idle

    def memory_estimate(self):
        return self.memory


class TestDegradation:
    def make(self):
        reading = {"bytes": 0}
        manager = DegradationManager(
            soft_limit_bytes=1000, hard_limit_bytes=2000, idle_ttl=10.0,
            memory_probe=lambda: reading["bytes"],
        )
        return manager, reading

    def test_levels_and_budget_scale(self):
        manager, reading = self.make()
        sessions = {"s": _StubSession()}
        control = manager.evaluate(sessions, now=0.0)
        assert control["level"] is PressureLevel.NORMAL
        assert control["budget_scale"] == 1.0
        reading["bytes"] = 1500
        control = manager.evaluate(sessions, now=0.0)
        assert control["level"] is PressureLevel.ELEVATED
        assert control["budget_scale"] == 0.5
        assert sessions["s"].caps[-1] is Tier.TEMPLATE
        reading["bytes"] = 2500
        control = manager.evaluate(sessions, now=0.0)
        assert control["level"] is PressureLevel.CRITICAL
        assert control["budget_scale"] == 0.25
        assert sessions["s"].caps[-1] is Tier.INTERPRETER

    def test_hysteresis_holds_level_near_boundary(self):
        manager, reading = self.make()
        sessions: dict = {}
        reading["bytes"] = 1100
        assert manager.evaluate(sessions)["level"] is PressureLevel.ELEVATED
        reading["bytes"] = 950  # above soft*0.9: still elevated
        assert manager.evaluate(sessions)["level"] is PressureLevel.ELEVATED
        reading["bytes"] = 800  # below the hysteresis band: recovered
        assert manager.evaluate(sessions)["level"] is PressureLevel.NORMAL

    def test_critical_evicts_only_cold_sessions(self):
        manager, reading = self.make()
        cold = _StubSession(idle=60.0)
        warm = _StubSession(idle=1.0)
        reading["bytes"] = 3000
        control = manager.evaluate({"cold": cold, "warm": warm}, now=0.0)
        assert set(control["evict"]) == {"cold"}
        assert manager.snapshot()["evicted"] == 1

    def test_default_probe_sums_session_estimates(self):
        manager = DegradationManager(soft_limit_bytes=100,
                                     hard_limit_bytes=200)
        sessions = {"a": _StubSession(memory=80), "b": _StubSession(memory=70)}
        assert manager.pressure_bytes(sessions.values()) == 150
        assert manager.evaluate(sessions)["level"] is PressureLevel.ELEVATED


# -- the server core ---------------------------------------------------------


class TestEngineServer:
    def make(self, **overrides) -> EngineServer:
        config = ServerConfig(prelude=("double[x_] := x * 2",))
        for key, value in overrides.items():
            setattr(config, key, value)
        return EngineServer(config=config)

    def test_submit_roundtrip_and_isolation(self):
        async def scenario(server):
            ok = await server.submit("double[21]", session_id="a")
            masked = await server.submit("double[x_] := 0; double[21]",
                                         session_id="b")
            again = await server.submit("double[21]", session_id="a")
            return ok, masked, again

        server = self.make()
        ok, masked, again = run_async(scenario(server))
        assert (ok.ok, ok.result) == (True, "42")
        assert masked.result == "0"
        assert again.result == "42"
        payload = ok.to_dict()
        assert payload["ok"] and payload["result"] == "42"

    def test_failures_are_soft_and_tracked(self):
        async def scenario(server):
            return await server.submit("missing[", session_id="a")

        server = self.make()
        response = run_async(scenario(server))
        assert not response.ok
        assert response.error["kind"]
        session = server.sessions["a"]
        assert session.state is SessionState.IDLE
        assert session.stats.soft_failures == 1
        assert session.snapshot()["failure_kinds"]

    def test_guard_budget_enforced_per_request(self):
        server = self.make()
        server.config.budget = RequestBudget(
            deadline_seconds=5.0, steps=2_000, memory_bytes=None
        )

        async def scenario():
            runaway = await server.submit(
                "Do[Length[Range[10]], {i, 100000}]", session_id="a"
            )
            healthy = await server.submit("double[2]", session_id="b")
            return runaway, healthy

        runaway, healthy = run_async(scenario())
        assert not runaway.ok
        assert healthy.ok  # one tenant's budget trip never hurts another

    def test_session_limit_rejects(self):
        server = self.make(max_sessions=1)

        async def scenario():
            await server.submit("1 + 1", session_id="a")
            return await server.submit("1 + 1", session_id="b")

        response = run_async(scenario())
        assert response.rejected
        assert response.error["reason"] == "session-limit"

    def test_tenant_mismatch_rejects(self):
        server = self.make()

        async def scenario():
            await server.submit("1", session_id="a", tenant="t1")
            return await server.submit("2", session_id="a", tenant="t2")

        response = run_async(scenario())
        assert response.rejected
        assert response.error["reason"] == "tenant-mismatch"

    def test_breaker_opens_after_repeated_failures(self):
        server = self.make(breaker_threshold=2)

        async def scenario():
            for _ in range(2):
                await server.submit("oops[", session_id="a")
            return await server.submit("1 + 1", session_id="a")

        response = run_async(scenario())
        assert response.rejected
        assert response.error["reason"] == "session-breaker-open"
        assert response.retry_after > 0

    def test_probe_released_when_rejected_downstream(self):
        # the review scenario: breaker opens, cooldown elapses while the
        # session queue is still full, the half-open probe is shed — the
        # probe slot must come back, or the session is locked out forever
        clock = FakeClock()
        config = ServerConfig(breaker_threshold=1, breaker_cooldown=1.0)
        server = EngineServer(config=config, clock=clock)

        async def scenario():
            tripped = await server.submit("oops[", session_id="a")
            assert not tripped.ok
            clock.advance(2.0)  # cooldown elapsed: next admit is the probe
            server._pending["a"] = config.session_queue_limit  # queue full
            shed = await server.submit("1", session_id="a")
            assert shed.rejected
            assert shed.error["reason"] == "session-queue-full"
            server._pending.pop("a")  # the queue drains
            return await server.submit("1 + 1", session_id="a")

        recovered = run_async(scenario())
        assert recovered.ok and recovered.result == "2"
        assert server.breakers.session("a").state == "closed"

    def test_probe_released_when_tenant_mismatch_rejects(self):
        clock = FakeClock()
        config = ServerConfig(breaker_threshold=1, breaker_cooldown=1.0)
        server = EngineServer(config=config, clock=clock)

        async def scenario():
            await server.submit("1", session_id="a", tenant="t1")
            tripped = await server.submit("oops[", session_id="a",
                                          tenant="t1")
            assert not tripped.ok
            clock.advance(2.0)
            # the probe is admitted, then rejected by the tenant check
            mismatch = await server.submit("1", session_id="a", tenant="t2")
            assert mismatch.error["reason"] == "tenant-mismatch"
            return await server.submit("1 + 1", session_id="a", tenant="t1")

        recovered = run_async(scenario())
        assert recovered.ok and recovered.result == "2"

    def test_transient_failures_retry_until_success(self, monkeypatch):
        server = self.make()
        server.config.retry = RetryPolicy(attempts=3, base_delay=0.001,
                                          max_delay=0.002)
        session = run_async(self._prime(server))
        outcomes = [
            Outcome(ok=False, error_kind="Transient", error_message="blip",
                    transient=True),
            Outcome(ok=False, error_kind="Transient", error_message="blip",
                    transient=True),
            Outcome(ok=True, value="42"),
        ]
        monkeypatch.setattr(type(session), "execute",
                            lambda self, source, budget: outcomes.pop(0))
        response = run_async(server.submit("whatever", session_id="a"))
        assert response.ok and response.result == "42"
        assert response.retries == 2
        assert server.totals["retries"] == 2

    def test_transient_failures_respect_attempt_bound(self, monkeypatch):
        server = self.make()
        server.config.retry = RetryPolicy(attempts=2, base_delay=0.001,
                                          max_delay=0.002)
        session = run_async(self._prime(server))
        monkeypatch.setattr(
            type(session), "execute",
            lambda self, source, budget: Outcome(
                ok=False, error_kind="Transient", error_message="blip",
                transient=True,
            ),
        )
        response = run_async(server.submit("whatever", session_id="a"))
        assert not response.ok
        assert response.retries == 1  # attempts=2 -> exactly one retry

    async def _prime(self, server):
        await server.submit("1 + 1", session_id="a")
        return server.sessions["a"]

    def test_retry_backoff_does_not_hold_admission_slot(self, monkeypatch):
        server = self.make()
        server.config.retry = RetryPolicy(attempts=3, base_delay=0.001,
                                          max_delay=0.002)
        session = run_async(self._prime(server))
        outcomes = [
            Outcome(ok=False, error_kind="Transient", error_message="blip",
                    transient=True),
            Outcome(ok=False, error_kind="Transient", error_message="blip",
                    transient=True),
            Outcome(ok=True, value="42"),
        ]
        monkeypatch.setattr(type(session), "execute",
                            lambda self, source, budget: outcomes.pop(0))
        real_sleep = asyncio.sleep
        slots_held_during_backoff = []

        async def spying_sleep(delay, *args, **kwargs):
            slots_held_during_backoff.append(server.admission.running)
            await real_sleep(0)

        monkeypatch.setattr(asyncio, "sleep", spying_sleep)
        response = run_async(server.submit("whatever", session_id="a"))
        assert response.ok and response.retries == 2
        # both backoff sleeps ran with zero worker slots pinned
        assert slots_held_during_backoff == [0, 0]

    def test_abort_on_idle_session_does_not_poison_next_request(self):
        server = self.make()
        run_async(server.submit("1 + 1", session_id="a"))
        # the session is idle: the abort targets nothing and must be
        # dropped, not left armed for the next unrelated request
        assert server.abort_session("a") is True
        assert server.abort_session("missing") is False
        response = run_async(server.submit("double[3]", session_id="a"))
        assert response.ok and response.result == "6"
        assert server.sessions["a"].stats.aborted == 0

    def test_submit_never_raises_on_internal_error(self, monkeypatch):
        server = self.make()
        session = run_async(self._prime(server))

        def explode(self, source, budget):
            raise RuntimeError("cannot schedule new futures after shutdown")

        monkeypatch.setattr(type(session), "execute", explode)
        response = run_async(server.submit("1", session_id="a"))
        assert not response.ok
        assert response.error["kind"] == "InternalError"
        assert "RuntimeError" in response.error["message"]
        assert server.totals["failed"] == 1
        # the protocol boundary stayed intact: the next request still works
        monkeypatch.undo()
        healthy = run_async(server.submit("double[4]", session_id="a"))
        assert healthy.ok and healthy.result == "8"

    def test_guard_trips_never_retry(self):
        server = self.make()
        server.config.budget = RequestBudget(deadline_seconds=5.0,
                                             steps=1_000, memory_bytes=None)

        async def scenario():
            return await server.submit("Do[i, {i, 100000}]", session_id="a")

        response = run_async(scenario())
        assert not response.ok
        assert response.retries == 0

    def test_degradation_demotes_and_evicts(self):
        reading = {"bytes": 0}
        config = ServerConfig()
        server = EngineServer(config=config,
                              memory_probe=lambda: reading["bytes"])
        server.degrade.soft_limit_bytes = 1000
        server.degrade.hard_limit_bytes = 2000
        server.degrade.idle_ttl = 0.0

        async def scenario():
            await server.submit("1 + 1", session_id="old")
            reading["bytes"] = 5000  # critical from here on
            response = await server.submit("2 + 2", session_id="fresh")
            return response

        response = run_async(scenario())
        assert response.ok
        # the idle "old" session was evicted by the critical sweep; the
        # session serving the request survived it
        assert "old" not in server.sessions
        assert "fresh" in server.sessions
        assert "old" in server.stats()["evicted_sessions"]
        assert server.sessions["fresh"].tier_cap is Tier.INTERPRETER

    def test_stats_dump_shape(self, tmp_path):
        server = self.make()
        run_async(server.submit("double[2]", session_id="a", tenant="t"))
        path = tmp_path / "dump.json"
        server.dump_stats(str(path))
        dump = json.loads(path.read_text())
        assert dump["kind"] == "repro-server-stats"
        assert dump["schema"] == 1
        assert dump["requests"]["ok"] == 1
        assert "a" in dump["sessions"]
        assert dump["breakers"]["sessions"]["a"]["state"] == "closed"
        assert dump["base_image_definitions"] >= 1

    def test_base_image_rejects_bad_prelude(self):
        with pytest.raises(BaseImageError):
            BaseImage(prelude=("this is not [ valid",))


# -- load generator ----------------------------------------------------------


class TestLoadGenerator:
    def test_deterministic_load_and_report_math(self):
        from repro.server.loadgen import percentile

        assert percentile([], 0.5) == 0.0
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0
        assert percentile([3.0, 1.0, 2.0], 0.99) == 3.0

        async def scenario():
            server = EngineServer(config=ServerConfig())
            spec = LoadSpec(clients=4, requests_per_client=6, seed=3)
            report = await generate(server, spec)
            await server.close()
            return report

        report = run_async(scenario())
        assert report.requests == 24
        assert report.ok == 24
        assert report.shed_rate == 0.0
        assert report.p99 >= report.p50 >= 0.0
        payload = report.to_dict()
        assert payload["throughput_rps"] > 0


# -- the --stats DUMP renderer ----------------------------------------------


class TestStatsRenderer:
    def test_renders_tables_from_dump(self, tmp_path):
        from repro.__main__ import main as repro_main

        server = EngineServer(
            config=ServerConfig(prelude=("double[x_] := x * 2",))
        )

        async def scenario():
            await server.submit("double[4]", session_id="a", tenant="t1")
            await server.submit("oops[", session_id="b", tenant="t2")

        run_async(scenario())
        path = tmp_path / "stats.json"
        server.dump_stats(str(path))
        out = io.StringIO()
        assert repro_main(["--stats", str(path)], output=out) == 0
        text = out.getvalue()
        assert "-- sessions --" in text
        assert "-- tenant breakers --" in text
        assert "a" in text and "t1" in text
        assert "-- failure kinds --" in text

    def test_rejects_non_dump_files(self, tmp_path):
        from repro.__main__ import main as repro_main

        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        out = io.StringIO()
        assert repro_main(["--stats", str(path)], output=out) == 1
        assert "not a repro server stats dump" in out.getvalue()
