"""The server chaos suite (``pytest -m chaos``; the CI ``server-chaos``
job runs exactly this).

Adversarial tenants — runaway loops, poisoned recursive definitions,
memory spikes, mid-evaluation aborts — are driven through the normal
request path alongside healthy traffic, and the suite asserts the
server's containment invariants:

* zero crashed sessions, ever;
* healthy sessions keep completing while the chaos runs;
* misbehaving sessions are isolated by their circuit breakers, healthy
  breakers stay closed;
* no cross-session definition leakage (a poisoned definition is
  invisible everywhere but its own session);
* the shed rate stays strictly below 100% — overload sheds, it never
  blackholes.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.server import (
    ChaosSpec,
    EngineServer,
    RequestBudget,
    RetryPolicy,
    ServerConfig,
    unleash,
)

pytestmark = pytest.mark.chaos


def chaos_config() -> ServerConfig:
    config = ServerConfig(
        max_concurrent=2,
        queue_limit=8,
        breaker_threshold=3,
        tenant_breaker_threshold=9,
        breaker_cooldown=0.2,
        prelude=("stable[x_] := x + 1",),
    )
    config.budget = RequestBudget(deadline_seconds=0.4, steps=200_000,
                                  memory_bytes=8 * 1024 * 1024)
    config.retry = RetryPolicy(attempts=2, base_delay=0.005, max_delay=0.02)
    return config


def run_chaos_round(seed: int, spec: ChaosSpec | None = None):
    async def scenario():
        server = EngineServer(config=chaos_config())
        try:
            report = await unleash(
                server,
                spec if spec is not None else ChaosSpec(
                    adversaries=3, healthy_clients=3,
                    requests_per_client=4, seed=seed,
                ),
            )
            probes = {}
            for index in range(3):
                response = await server.submit(
                    f"poison{index}[0]", session_id="leak-probe",
                    tenant="auditor",
                )
                probes[index] = response
            stats = server.stats()
            return report, stats, probes
        finally:
            await server.close()

    return asyncio.run(scenario())


class TestChaosContainment:
    def test_no_crashes_healthy_completes_breakers_isolate(self):
        report, stats, probes = run_chaos_round(seed=1)

        # 1. zero crashed sessions
        crashed = [sid for sid, info in stats["sessions"].items()
                   if info["state"] == "crashed"]
        assert crashed == []
        assert report.requests > 0

        # 2. healthy sessions keep completing
        assert report.healthy_requests > 0
        assert report.healthy_success_rate >= 0.9

        # 3. adversaries were contained, not served to completion
        assert report.adversary_contained > 0

        # 4. healthy breakers closed; the healthy tenant never tripped
        breakers = stats["breakers"]["sessions"]
        for session_id, info in breakers.items():
            if session_id.startswith("good"):
                assert info["state"] == "closed", session_id
                assert info["times_opened"] == 0
        tenant_breakers = stats["breakers"]["tenants"]
        assert tenant_breakers["healthy"]["times_opened"] == 0

        # 5. misbehaving sessions tripped at least one breaker
        opened = [sid for sid, info in breakers.items()
                  if info["times_opened"] > 0]
        assert opened
        assert all(sid.startswith("bad") for sid in opened)

        # 6. shed rate strictly below 100%
        assert 0.0 <= report.shed_rate < 1.0
        assert stats["shed_rate"] < 1.0

    def test_no_cross_session_definition_leakage(self):
        report, stats, probes = run_chaos_round(seed=2)
        poisoned = report.behaviour_counts.get("poison", 0)
        # the auditor session must see every poison symbol as undefined:
        # its call returns unevaluated (or is shed — never a recursion blow)
        for index, response in probes.items():
            if response.ok:
                assert response.result == f"poison{index}[0]"
            else:
                assert response.rejected or response.error["kind"] in (
                    "Aborted",
                )
        # and the poison stayed *somewhere*: sessions that defined it have
        # overlay entries, the auditor has none for those symbols
        if poisoned:
            bad_overlays = [info["overlay_definitions"]
                            for sid, info in stats["sessions"].items()
                            if sid.startswith("bad")]
            assert any(count > 0 for count in bad_overlays)

    def test_abort_leaves_session_reusable(self):
        async def scenario():
            server = EngineServer(config=chaos_config())
            try:
                async def fire():
                    await asyncio.sleep(0.05)
                    server.abort_session("victim")

                aborter = asyncio.ensure_future(fire())
                slow = await server.submit(
                    "Module[{acc = 0}, Do[acc = acc + i, {i, 2000000}]; acc]",
                    session_id="victim",
                )
                await aborter
                followup = await server.submit("1 + 1", session_id="victim")
                return slow, followup, server.stats()
            finally:
                await server.close()

        slow, followup, stats = asyncio.run(scenario())
        assert not slow.ok  # aborted or budget-tripped, never served
        assert followup.ok and followup.result == "2"
        assert stats["sessions"]["victim"]["state"] == "idle"

    def test_memory_spike_is_contained(self):
        async def scenario():
            server = EngineServer(config=chaos_config())
            try:
                spike = await server.submit(
                    "Total[Table[i * i, {i, 400000}]]", session_id="hog",
                )
                healthy = await server.submit("stable[41]", session_id="ok")
                return spike, healthy
            finally:
                await server.close()

        spike, healthy = asyncio.run(scenario())
        assert not spike.ok
        assert spike.error["kind"] in ("BudgetExhausted", "Timeout")
        assert healthy.ok and healthy.result == "42"

    def test_chaos_is_deterministic_in_shape(self):
        # same seed, same adversarial request sequence: the behaviour mix
        # is identical run to run (latencies differ, the workload doesn't)
        first, _, _ = run_chaos_round(seed=3)
        second, _, _ = run_chaos_round(seed=3)
        assert first.behaviour_counts == second.behaviour_counts
        assert first.adversary_requests == second.adversary_requests


class TestChaosTelemetry:
    """PR 9: the flight recorder under adversarial traffic — every shed,
    retried, or demoted request reconstructs as one coherent timeline
    under its request id, and breaker trips / critical pressure freeze
    auto-snapshots without any test-side plumbing."""

    def test_chaos_round_yields_coherent_timelines_and_snapshots(self):
        async def scenario():
            server = EngineServer(config=chaos_config())
            try:
                await unleash(server, ChaosSpec(
                    adversaries=3, healthy_clients=3,
                    requests_per_client=4, seed=1,
                ))
                flight = server.flight
                stats = server.stats()
                by_request: dict = {}
                for record in list(flight.events):
                    if record.request:
                        by_request.setdefault(
                            record.request, set()
                        ).add(record.trace_id)
                timelines = {
                    request_id: flight.timeline_dict(request_id)
                    for request_id in list(by_request)[:10]
                }
                snapshots = [s["reason"] for s in flight.snapshots]
                return stats, by_request, timelines, snapshots
            finally:
                await server.close()

        stats, by_request, timelines, snapshots = asyncio.run(scenario())

        # breakers opened during the round, and each opening froze a
        # snapshot from inside the event stream
        opened = [sid for sid, info in stats["breakers"]["sessions"].items()
                  if info["times_opened"] > 0]
        assert opened
        assert any(reason.startswith("breaker-open:")
                   for reason in snapshots)
        assert stats["telemetry"]["retained_requests"] > 0

        # one trace id per request id, everywhere in the ring
        assert by_request
        assert all(len(traces) == 1 for traces in by_request.values())

        # each retained request reconstructs as an ordered timeline
        # rooted in the server.request span
        for request_id, timeline in timelines.items():
            assert timeline, request_id
            names = [entry["name"] for entry in timeline]
            assert "server.request" in names
            starts = [entry["start"] for entry in timeline]
            assert starts == sorted(starts)
            assert all(entry.get("request") == request_id
                       for entry in timeline)

    def test_retried_request_timeline_records_every_attempt(self,
                                                            monkeypatch):
        from repro.server.session import Outcome

        async def scenario():
            config = chaos_config()
            config.telemetry_sample = 0.0  # tail retention must carry it
            config.retry = RetryPolicy(attempts=3, base_delay=0.001,
                                       max_delay=0.002)
            server = EngineServer(config=config)
            try:
                await server.submit("1 + 1", session_id="flaky")
                session = server.sessions["flaky"]
                outcomes = [
                    Outcome(ok=False, error_kind="Transient",
                            error_message="blip", transient=True),
                    Outcome(ok=False, error_kind="Transient",
                            error_message="blip", transient=True),
                    Outcome(ok=True, value="42"),
                ]
                monkeypatch.setattr(
                    type(session), "execute",
                    lambda self, source, budget: outcomes.pop(0),
                )
                response = await server.submit("whatever",
                                               session_id="flaky")
                return response, server.timeline(response.request_id)
            finally:
                await server.close()

        response, timeline = asyncio.run(scenario())
        assert response.ok and response.retries == 2
        retries = [entry for entry in timeline
                   if entry["name"] == "server.retry"]
        assert len(retries) == 2
        assert [entry["args"]["attempt"] for entry in retries] == [1, 2]
        # three admissions: the original attempt plus both retries
        admits = [entry for entry in timeline
                  if entry["name"] == "server.admit"]
        assert len(admits) == 3

    def test_critical_pressure_snapshots_and_stamps_demotions(self):
        async def scenario():
            reading = {"bytes": 0}
            config = chaos_config()
            config.soft_limit_bytes = 1000
            config.hard_limit_bytes = 2000
            config.idle_ttl = 1e9  # demote, don't evict
            server = EngineServer(config=config,
                                  memory_probe=lambda: reading["bytes"])
            try:
                # promote something so CRITICAL has a tier to withdraw
                await server.submit(
                    "hot[n_] := If[n < 2, n, hot[n-1] + hot[n-2]]", "s1"
                )
                await server.submit("hot[10]", session_id="s1")
                reading["bytes"] = 5000  # past the hard limit
                squeezed = await server.submit("hot[5]", session_id="s1")
                flight = server.flight
                snapshots = [s["reason"] for s in flight.snapshots]
                return (squeezed, server.timeline(squeezed.request_id),
                        snapshots, server.stats())
            finally:
                await server.close()

        squeezed, timeline, snapshots, stats = asyncio.run(scenario())
        assert stats["pressure"]["level"] == "CRITICAL"
        assert "pressure-critical" in snapshots
        names = [entry["name"] for entry in timeline]
        # the pressure transition and the demotions it forced are stamped
        # with the request that tripped them
        assert "server.pressure" in names
        assert "tier.demote" in names
        pressure = next(entry for entry in timeline
                        if entry["name"] == "server.pressure")
        assert pressure["args"]["to"] == "CRITICAL"
        assert stats["sessions"]["s1"]["tier_cap"] == "interpreter"
