"""The server chaos suite (``pytest -m chaos``; the CI ``server-chaos``
job runs exactly this).

Adversarial tenants — runaway loops, poisoned recursive definitions,
memory spikes, mid-evaluation aborts — are driven through the normal
request path alongside healthy traffic, and the suite asserts the
server's containment invariants:

* zero crashed sessions, ever;
* healthy sessions keep completing while the chaos runs;
* misbehaving sessions are isolated by their circuit breakers, healthy
  breakers stay closed;
* no cross-session definition leakage (a poisoned definition is
  invisible everywhere but its own session);
* the shed rate stays strictly below 100% — overload sheds, it never
  blackholes.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.server import (
    ChaosSpec,
    EngineServer,
    RequestBudget,
    RetryPolicy,
    ServerConfig,
    unleash,
)

pytestmark = pytest.mark.chaos


def chaos_config() -> ServerConfig:
    config = ServerConfig(
        max_concurrent=2,
        queue_limit=8,
        breaker_threshold=3,
        tenant_breaker_threshold=9,
        breaker_cooldown=0.2,
        prelude=("stable[x_] := x + 1",),
    )
    config.budget = RequestBudget(deadline_seconds=0.4, steps=200_000,
                                  memory_bytes=8 * 1024 * 1024)
    config.retry = RetryPolicy(attempts=2, base_delay=0.005, max_delay=0.02)
    return config


def run_chaos_round(seed: int, spec: ChaosSpec | None = None):
    async def scenario():
        server = EngineServer(config=chaos_config())
        try:
            report = await unleash(
                server,
                spec if spec is not None else ChaosSpec(
                    adversaries=3, healthy_clients=3,
                    requests_per_client=4, seed=seed,
                ),
            )
            probes = {}
            for index in range(3):
                response = await server.submit(
                    f"poison{index}[0]", session_id="leak-probe",
                    tenant="auditor",
                )
                probes[index] = response
            stats = server.stats()
            return report, stats, probes
        finally:
            await server.close()

    return asyncio.run(scenario())


class TestChaosContainment:
    def test_no_crashes_healthy_completes_breakers_isolate(self):
        report, stats, probes = run_chaos_round(seed=1)

        # 1. zero crashed sessions
        crashed = [sid for sid, info in stats["sessions"].items()
                   if info["state"] == "crashed"]
        assert crashed == []
        assert report.requests > 0

        # 2. healthy sessions keep completing
        assert report.healthy_requests > 0
        assert report.healthy_success_rate >= 0.9

        # 3. adversaries were contained, not served to completion
        assert report.adversary_contained > 0

        # 4. healthy breakers closed; the healthy tenant never tripped
        breakers = stats["breakers"]["sessions"]
        for session_id, info in breakers.items():
            if session_id.startswith("good"):
                assert info["state"] == "closed", session_id
                assert info["times_opened"] == 0
        tenant_breakers = stats["breakers"]["tenants"]
        assert tenant_breakers["healthy"]["times_opened"] == 0

        # 5. misbehaving sessions tripped at least one breaker
        opened = [sid for sid, info in breakers.items()
                  if info["times_opened"] > 0]
        assert opened
        assert all(sid.startswith("bad") for sid in opened)

        # 6. shed rate strictly below 100%
        assert 0.0 <= report.shed_rate < 1.0
        assert stats["shed_rate"] < 1.0

    def test_no_cross_session_definition_leakage(self):
        report, stats, probes = run_chaos_round(seed=2)
        poisoned = report.behaviour_counts.get("poison", 0)
        # the auditor session must see every poison symbol as undefined:
        # its call returns unevaluated (or is shed — never a recursion blow)
        for index, response in probes.items():
            if response.ok:
                assert response.result == f"poison{index}[0]"
            else:
                assert response.rejected or response.error["kind"] in (
                    "Aborted",
                )
        # and the poison stayed *somewhere*: sessions that defined it have
        # overlay entries, the auditor has none for those symbols
        if poisoned:
            bad_overlays = [info["overlay_definitions"]
                            for sid, info in stats["sessions"].items()
                            if sid.startswith("bad")]
            assert any(count > 0 for count in bad_overlays)

    def test_abort_leaves_session_reusable(self):
        async def scenario():
            server = EngineServer(config=chaos_config())
            try:
                async def fire():
                    await asyncio.sleep(0.05)
                    server.abort_session("victim")

                aborter = asyncio.ensure_future(fire())
                slow = await server.submit(
                    "Module[{acc = 0}, Do[acc = acc + i, {i, 2000000}]; acc]",
                    session_id="victim",
                )
                await aborter
                followup = await server.submit("1 + 1", session_id="victim")
                return slow, followup, server.stats()
            finally:
                await server.close()

        slow, followup, stats = asyncio.run(scenario())
        assert not slow.ok  # aborted or budget-tripped, never served
        assert followup.ok and followup.result == "2"
        assert stats["sessions"]["victim"]["state"] == "idle"

    def test_memory_spike_is_contained(self):
        async def scenario():
            server = EngineServer(config=chaos_config())
            try:
                spike = await server.submit(
                    "Total[Table[i * i, {i, 400000}]]", session_id="hog",
                )
                healthy = await server.submit("stable[41]", session_id="ok")
                return spike, healthy
            finally:
                await server.close()

        spike, healthy = asyncio.run(scenario())
        assert not spike.ok
        assert spike.error["kind"] in ("BudgetExhausted", "Timeout")
        assert healthy.ok and healthy.result == "42"

    def test_chaos_is_deterministic_in_shape(self):
        # same seed, same adversarial request sequence: the behaviour mix
        # is identical run to run (latencies differ, the workload doesn't)
        first, _, _ = run_chaos_round(seed=3)
        second, _, _ = run_chaos_round(seed=3)
        assert first.behaviour_counts == second.behaviour_counts
        assert first.adversary_requests == second.adversary_requests
