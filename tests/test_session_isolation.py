"""Session isolation over the copy-on-write base+overlay KernelState (S3).

The server's core correctness claim: sessions layered over one frozen
base image can redefine, clear, and Block-scope symbols freely without
any effect observable from a sibling session — including the caches that
hang off definitions (dispatch indexes) and off evaluators (hotspot
promotion tables).
"""

from __future__ import annotations

from repro.engine import Evaluator
from repro.engine.definitions import KernelState, _VERSION_STRIDE
from repro.mexpr import full_form, parse
from repro.server import BaseImage


def run(evaluator: Evaluator, source: str) -> str:
    return full_form(evaluator.run(source))


def make_base(*prelude: str) -> BaseImage:
    return BaseImage(prelude=prelude)


class TestCopyOnWriteState:
    def test_overlay_reads_fall_through_to_base(self):
        base = make_base("shared[x_] := x + 100")
        session = Evaluator(state=base.create_state())
        assert run(session, "shared[1]") == "101"
        # a pure read never copies the definition into the overlay
        assert "shared" not in session.state.overlay_names()

    def test_redefinition_copies_not_mutates(self):
        base = make_base("f[x_] := x * 2")
        a = Evaluator(state=base.create_state())
        b = Evaluator(state=base.create_state())
        assert run(a, "f[x_] := x * 3; f[10]") == "30"
        assert run(b, "f[10]") == "20"  # b still sees the base rule
        # the base Definition object itself kept exactly one rule
        assert len(base.definitions["f"].down_values) == 1

    def test_added_rule_shadows_whole_definition(self):
        # COW copies the *definition*: a session adding a second, more
        # specific rule keeps the base rule too (snapshot semantics)
        base = make_base("g[x_] := x + 1")
        a = Evaluator(state=base.create_state())
        assert run(a, "g[0] = 99; g[0]") == "99"
        assert run(a, "g[5]") == "6"  # the copied base rule still fires
        b = Evaluator(state=base.create_state())
        assert run(b, "g[0]") == "1"

    def test_ownvalue_assignment_isolated(self):
        base = make_base("setting = 7")
        a = Evaluator(state=base.create_state())
        b = Evaluator(state=base.create_state())
        assert run(a, "setting = 8; setting") == "8"
        assert run(b, "setting") == "7"

    def test_clear_masks_base_definition(self):
        base = make_base("h[x_] := x * x")
        a = Evaluator(state=base.create_state())
        b = Evaluator(state=base.create_state())
        assert run(a, "Clear[h]; h[4]") == "h[4]"  # cleared: unevaluated
        assert run(b, "h[4]") == "16"              # sibling unaffected
        assert len(base.definitions["h"].down_values) == 1

    def test_block_restore_over_base_symbol(self):
        base = make_base("x = 5")
        a = Evaluator(state=base.create_state())
        b = Evaluator(state=base.create_state())
        assert run(a, "Block[{x = 10}, x]") == "10"
        assert run(a, "x") == "5"  # restored after the Block
        assert run(b, "x") == "5"
        # the restore went through the overlay, never the base
        assert base.definitions["x"].has_own_value
        assert full_form(base.definitions["x"].own_value) == "5"

    def test_block_restore_of_base_function(self):
        base = make_base("f[x_] := x + 1")
        a = Evaluator(state=base.create_state())
        assert run(a, "Block[{f}, f[x_] := x - 1; f[10]]") == "9"
        assert run(a, "f[10]") == "11"

    def test_version_ranges_are_disjoint(self):
        base = make_base()
        states = [base.create_state() for _ in range(3)]
        slots = {state.state_version // _VERSION_STRIDE for state in states}
        assert len(slots) == 3
        # a plain (base-less) state keeps the historic 0 origin
        assert KernelState().state_version == 0

    def test_evaluated_stamps_do_not_cross_sessions(self):
        # shared base MExpr nodes carry $evalv stamps; disjoint version
        # ranges must keep one session's stamps meaningless to another
        base = make_base("stamped = Plus[deep, nest]")
        a = Evaluator(state=base.create_state())
        b = Evaluator(state=base.create_state())
        assert run(a, "stamped") == run(b, "stamped")
        assert run(b, "deep = 1; nest = 2; stamped") == "3"
        assert run(a, "stamped") == "Plus[deep, nest]"


class TestDispatchAndHotspotIsolation:
    def test_dispatch_index_survives_sibling_redefinition(self):
        source = "; ".join(f"table[{i}] = {i * i}" for i in range(40))
        base = make_base(source)
        a = Evaluator(state=base.create_state())
        b = Evaluator(state=base.create_state())
        assert run(a, "table[7]") == "49"
        index_before = base.definitions["table"]._index
        assert index_before is not None  # freeze() pre-built it
        # b redefines the whole table; a's dispatch path is untouched
        assert run(b, "Clear[table]; table[x_] := 0; table[7]") == "0"
        assert base.definitions["table"]._index is index_before
        assert run(a, "table[9]") == "81"

    def test_promoted_hot_function_survives_sibling_redefinition(self):
        base = make_base("fib[0] = 0", "fib[1] = 1",
                         "fib[n_] := fib[n - 1] + fib[n - 2]")
        a = base.create_evaluator(hotspot_threshold=3)
        b = base.create_evaluator(hotspot_threshold=3)
        assert full_form(a.evaluate(parse("fib[12]"))) == "144"
        assert "fib" in a.hotspot.promoted
        # b redefines fib: its own session, its own hotspot bookkeeping
        assert full_form(b.evaluate(parse("fib[n_] := 0; fib[12]"))) == "0"
        assert "fib" in a.hotspot.promoted  # a's promotion is untouched
        assert full_form(a.evaluate(parse("fib[13]"))) == "233"

    def test_own_redefinition_still_invalidates(self):
        base = make_base("fib[0] = 0", "fib[1] = 1",
                         "fib[n_] := fib[n - 1] + fib[n - 2]")
        a = base.create_evaluator(hotspot_threshold=3)
        assert full_form(a.evaluate(parse("fib[12]"))) == "144"
        assert "fib" in a.hotspot.promoted
        assert full_form(a.evaluate(parse("fib[n_] := 7; fib[12]"))) == "7"
        assert "fib" not in a.hotspot.promoted


class TestFreezeAndOverlayAccounting:
    def test_freeze_is_immutable(self):
        base = make_base("k = 1")
        import pytest

        with pytest.raises(TypeError):
            base.definitions["new"] = None  # type: ignore[index]

    def test_overlay_accounting(self):
        base = make_base("a = 1", "b = 2")
        state = base.create_state()
        session = Evaluator(state=state)
        assert state.overlay_size() == 0
        run(session, "a = 10")
        run(session, "c = 3")
        assert sorted(state.overlay_names()) == ["a", "c"]
        assert state.base is base.definitions

    def test_plain_state_unchanged(self):
        # the non-server path: no base, dict semantics as before
        state = KernelState()
        assert state.base is None
        assert state.overlay_size() == 0
        session = Evaluator(state=state)
        assert run(session, "q = 1; q") == "1"
        assert sorted(state.overlay_names()) == ["q"]
