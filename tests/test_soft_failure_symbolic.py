"""Soft numerical failure (F2, §4.5), symbolic compute (F8), and kernel
escapes (F9)."""

import pytest

from repro.compiler import FunctionCompile, install_engine_support
from repro.engine import Evaluator
from repro.mexpr import MSymbol, full_form, parse


@pytest.fixture()
def hosted_evaluator():
    evaluator = Evaluator()
    install_engine_support(evaluator)
    return evaluator


ITERATIVE_FIB = (
    'Function[{Typed[n, "MachineInteger"]},'
    ' Module[{a = 0, b = 1, i = 1},'
    '  While[i <= n, Module[{t = a + b}, a = b; b = t]; i = i + 1]; a]]'
)


class TestSoftFailure:
    def test_overflow_reverts_to_interpreter(self, hosted_evaluator):
        """The paper's cfib[200] transcript, with an iterative fib (naive
        recursion at n=200 is astronomically slow on any engine; see
        EXPERIMENTS.md).  Machine result below 2^63, bignum above."""
        fib = FunctionCompile(ITERATIVE_FIB, evaluator=hosted_evaluator)
        assert fib(10) == 55
        assert fib(90) == 2880067194370816120  # still machine-sized
        result = fib(200)
        assert result == 280571172992510140037611932413038677189525
        assert fib.fallback_count == 1

    def test_warning_message_matches_paper(self, hosted_evaluator):
        fib = FunctionCompile(ITERATIVE_FIB, evaluator=hosted_evaluator)
        fib(200)
        message = hosted_evaluator.messages[-1]
        assert "A compiled code runtime error occurred" in message
        assert "reverting to uncompiled evaluation" in message
        assert "IntegerOverflow" in message

    def test_division_by_zero_reverts(self, hosted_evaluator):
        f = FunctionCompile(
            'Function[{Typed[x, "Real64"]}, 1.0 / x]',
            evaluator=hosted_evaluator,
        )
        assert f(4.0) == 0.25
        result = f(0.0)  # interpreter yields the symbolic ComplexInfinity
        assert full_form(result) == "ComplexInfinity"

    def test_part_out_of_range_reverts(self, hosted_evaluator):
        f = FunctionCompile(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Integer64", 1]]],'
            ' Typed[i, "MachineInteger"]}, v[[i]]]',
            evaluator=hosted_evaluator,
        )
        assert f([1, 2, 3], 2) == 2
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            f([1, 2, 3], 7)  # interpreter also rejects part 7

    def test_without_evaluator_error_propagates(self):
        from repro.errors import IntegerOverflowError

        fib = FunctionCompile(ITERATIVE_FIB)  # standalone: no soft mode
        with pytest.raises(IntegerOverflowError):
            fib(200)

    def test_recursive_cfib_via_engine_binding(self, hosted_evaluator):
        """cfib bound into the engine: recursion works compiled, and each
        call can independently fall back (§2.2)."""
        cfib = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' If[n < 1, 1, cfib[n - 1] + cfib[n - 2]]]',
            evaluator=hosted_evaluator,
            bind="cfib",
        )
        assert cfib(15) == 1597
        # the engine-side binding also evaluates
        assert hosted_evaluator.run("cfib[15]").to_python() == 1597


class TestSymbolicCompute:
    """§4.5 Symbolic Computation: cf[1,2] -> 3, cf[x,y] -> x+y, ..."""

    @pytest.fixture()
    def cf(self):
        return FunctionCompile(
            'Function[{Typed[arg1, "Expression"], Typed[arg2, "Expression"]},'
            ' arg1 + arg2]'
        )

    def test_numeric_arguments(self, cf):
        assert full_form(cf(1, 2)) == "3"

    def test_symbolic_arguments(self, cf):
        assert full_form(cf(MSymbol("x"), MSymbol("y"))) == "Plus[x, y]"

    def test_paper_mixed_case(self, cf):
        result = cf(parse("x"), parse("Cos[y] + Sin[z]"))
        assert full_form(result) == "Plus[x, Cos[y], Sin[z]]"

    def test_symbolic_times(self):
        f = FunctionCompile(
            'Function[{Typed[e, "Expression"]}, e * e]'
        )
        assert full_form(f(parse("q"))) == "Times[q, q]"
        assert full_form(f(3)) == "9"

    def test_expression_head_and_length(self):
        f = FunctionCompile(
            'Function[{Typed[e, "Expression"]}, Length[e]]'
        )
        assert f(parse("f[a, b, c]")) == 3

    def test_expression_part(self):
        f = FunctionCompile(
            'Function[{Typed[e, "Expression"], Typed[i, "MachineInteger"]},'
            ' e[[i]]]'
        )
        assert full_form(f(parse("g[a, b]"), 2)) == "b"

    def test_expression_equality(self):
        f = FunctionCompile(
            'Function[{Typed[a, "Expression"], Typed[b, "Expression"]},'
            ' a == b]'
        )
        assert f(parse("h[1]"), parse("h[1]")) is True
        assert f(parse("h[1]"), parse("h[2]")) is False


class TestKernelEscape:
    """F9 gradual compilation: KernelFunction escapes to the interpreter."""

    def test_kernel_function_call(self, hosted_evaluator):
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' KernelFunction[Fibonacci][n]]',
            evaluator=hosted_evaluator,
        )
        assert full_form(f(30)) == "832040"

    def test_kernel_result_feeds_symbolic_flow(self, hosted_evaluator):
        f = FunctionCompile(
            'Function[{Typed[e, "Expression"]},'
            ' KernelFunction[Reverse][e]]',
            evaluator=hosted_evaluator,
        )
        # Reverse is an interpreter operation; the call round-trips an
        # expression through the kernel (F9)
        result = f(parse("f[1, 2, 3]"))
        assert full_form(result) == "f[3, 2, 1]"

    def test_kernel_escape_with_user_definitions(self, hosted_evaluator):
        hosted_evaluator.run("userFn[x_] := x * 10")
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' KernelFunction[userFn][n]]',
            evaluator=hosted_evaluator,
        )
        assert full_form(f(7)) == "70"

    def test_standalone_kernel_escape_fails_softly(self):
        """§4.6: standalone code has no interpreter to escape to."""
        from repro.errors import WolframRuntimeError

        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' KernelFunction[Fibonacci][n]]'
        )
        with pytest.raises(WolframRuntimeError):
            f(5)


class TestEngineIntegration:
    """F1: FunctionCompile hosted inside the interpreter session."""

    def test_function_compile_builtin(self, hosted_evaluator):
        result = hosted_evaluator.run(
            'cadd = FunctionCompile[Function[{Typed[x, "MachineInteger"]},'
            ' x + 1]]; cadd[41]'
        )
        assert result.to_python() == 42

    def test_compiled_function_in_map(self, hosted_evaluator):
        result = hosted_evaluator.run(
            'cdouble = FunctionCompile[Function[{Typed[x, "MachineInteger"]},'
            ' 2*x]]; Map[cdouble, {1, 2, 3}]'
        )
        assert result.to_python() == [2, 4, 6]

    def test_compiled_and_interpreted_intermix(self, hosted_evaluator):
        hosted_evaluator.run(
            'csq = FunctionCompile[Function[{Typed[x, "MachineInteger"]},'
            ' x*x]]'
        )
        result = hosted_evaluator.run("Total[Map[csq, Range[5]]] + Fibonacci[5]")
        assert result.to_python() == 55 + 5
