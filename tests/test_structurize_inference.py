"""Dedicated tests: the CFG structurizer and the constraint solver."""

import pytest

from repro.compiler import CompileToIR, FunctionCompile
from repro.compiler.codegen.structurize import (
    BlockNode,
    IfNode,
    LoopNode,
    Structurizer,
)
from repro.compiler.pipeline import CompilerPipeline
from repro.mexpr import parse


def build_plan(source: str):
    program = CompilerPipeline().compile_program(parse(source))
    return Structurizer(program.main_function()).build(), program


class TestStructurizer:
    def test_straight_line(self):
        plan, _ = build_plan(
            'Function[{Typed[x, "MachineInteger"]}, x + 1]'
        )
        assert any(isinstance(node, BlockNode) for node in plan)
        assert not any(isinstance(node, LoopNode) for node in plan)

    def test_if_diamond(self):
        plan, _ = build_plan(
            'Function[{Typed[c, "Boolean"]}, If[c, 1, 2]]'
        )
        ifs = [node for node in plan if isinstance(node, IfNode)]
        assert len(ifs) == 1
        assert ifs[0].then_plan and ifs[0].else_plan

    def test_while_loop(self):
        plan, _ = build_plan(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{i = 0}, While[i < n, i = i + 1]; i]]'
        )
        loops = [node for node in plan if isinstance(node, LoopNode)]
        assert len(loops) == 1

    def test_nested_loops(self):
        plan, _ = build_plan(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{i = 0, j = 0, s = 0},'
            '  While[i < n, j = 0;'
            '   While[j < n, s = s + 1; j = j + 1]; i = i + 1]; s]]'
        )

        def loop_count(nodes):
            total = 0
            for node in nodes:
                if isinstance(node, LoopNode):
                    total += 1 + loop_count(node.body)
                elif isinstance(node, IfNode):
                    total += loop_count(node.then_plan) + loop_count(
                        node.else_plan
                    )
            return total

        assert loop_count(plan) == 2

    def test_every_block_emitted_exactly_once(self):
        plan, program = build_plan(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{s = 0, i = 0},'
            '  While[True, i = i + 1; If[i > n, Break[]];'
            '   If[EvenQ[i], Continue[]]; s = s + i]; s]]'
        )

        emitted: list[str] = []

        def collect(nodes):
            for node in nodes:
                if isinstance(node, BlockNode):
                    emitted.append(node.name)
                elif isinstance(node, IfNode):
                    collect(node.then_plan)
                    collect(node.else_plan)
                elif isinstance(node, LoopNode):
                    collect(node.body)

        collect(plan)
        assert sorted(emitted) == sorted(program.main_function().blocks)

    def test_break_continue_semantics(self):
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{s = 0, i = 0},'
            '  While[True, i = i + 1; If[i > n, Break[]];'
            '   If[EvenQ[i], Continue[]]; s = s + i]; s]]'
        )
        assert f(10) == 25  # 1+3+5+7+9
        assert "while True:" in f.generated_source
        assert "break" in f.generated_source
        assert "continue" in f.generated_source


class TestInference:
    def signature(self, source: str) -> str:
        program = CompilerPipeline().compile_program(parse(source))
        fn = program.main_function()
        params = ", ".join(str(p.type) for p in fn.parameters)
        return f"({params}) -> {fn.result_type}"

    def test_addone_signature(self):
        assert self.signature(
            'Function[{Typed[arg, "MachineInteger"]}, arg + 1]'
        ) == '("Integer64") -> "Integer64"'

    def test_mixed_arithmetic_widens(self):
        assert self.signature(
            'Function[{Typed[x, "MachineInteger"]}, x + 0.5]'
        ) == '("Integer64") -> "Real64"'

    def test_comparison_is_boolean(self):
        assert self.signature(
            'Function[{Typed[x, "Real64"]}, x > 0.0]'
        ) == '("Real64") -> "Boolean"'

    def test_tensor_element_inferred_from_writes(self):
        """Native`CreateTensorUninit's element type comes from the
        later PartSet unification (§4.4's inference in action)."""
        assert self.signature(
            'Function[{Typed[n, "MachineInteger"]}, Table[1.5, {i, 1, n}]]'
        ) == '("Integer64") -> "Tensor"["Real64", 1]'

    def test_loop_carried_types_unify(self):
        assert self.signature(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{x = 0.0, i = 0},'
            '  While[i < n, x = x + 1.5; i = i + 1]; x]]'
        ) == '("Integer64") -> "Real64"'

    def test_self_recursion_types_to_own_signature(self):
        assert self.signature(
            'Function[{Typed[n, "MachineInteger"]},'
            ' If[n < 1, 1, self[n - 1] + 1]]'
        ) == '("Integer64") -> "Integer64"'

    def test_function_value_grounds_via_overloads(self):
        assert self.signature(
            'Function[{Typed[v, "Real64"]}, Module[{g = Sin}, g[v]]]'
        ) == '("Real64") -> "Real64"'

    def test_big_literal_is_unsigned64(self):
        assert self.signature(
            'Function[{Typed[x, "MachineInteger"]},'
            ' BitAnd[18446744073709551615, 255]]'
        ) == '("Integer64") -> "UnsignedInteger64"'

    def test_expression_type_propagates(self):
        assert self.signature(
            'Function[{Typed[e, "Expression"]}, e + e]'
        ) == '("Expression") -> "Expression"'

    def test_error_carries_source_expression(self):
        from repro.errors import TypeInferenceError

        with pytest.raises(TypeInferenceError) as info:
            FunctionCompile('Function[{Typed[s, "String"]}, Sin[s]]')
        assert "Sin" in str(info.value)


class TestAbortInhibitDecorator:
    """§6: 'Abort checking can be toggled ... selectively on expressions by
    wrapping them with the Native`AbortInhibit decorator.'"""

    def test_inhibited_loop_has_no_check(self):
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{s = 0},'
            '  Native`AbortInhibit['
            '   Module[{i = 1}, While[i <= n, s = s + i; i = i + 1]]];'
            '  s]]'
        )
        source = f.generated_source
        loop_start = source.index("while True:")
        assert "_check_abort" not in source[loop_start:]
        assert f(10) == 55

    def test_uninhibited_loops_still_checked(self):
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{s = 0, i = 1, j = 1},'
            '  Native`AbortInhibit['
            '   While[i <= n, s = s + i; i = i + 1]];'
            '  While[j <= n, s = s + j; j = j + 1];'
            '  s]]'
        )
        # exactly one loop-header check (second loop) + the prologue check
        assert f.generated_source.count("_check_abort()") == 2
        assert f(10) == 110
