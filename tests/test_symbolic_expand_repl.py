"""Expand (engine symbolic algebra) and the Figure-1-style REPL."""

import io

import pytest


class TestExpand:
    @pytest.mark.parametrize("source,expected", [
        ("Expand[(x + 1)^2]", "Plus[1, Power[x, 2], Times[2, x]]"),
        ("Expand[(x + y)*(x - y)]",
         "Plus[Power[x, 2], Times[-1, Power[y, 2]]]"),
        ("Expand[2*(a + b)]", "Plus[Times[2, a], Times[2, b]]"),
        ("Expand[3 x + 2 x]", "Times[5, x]"),
        ("Expand[x - x]", "0"),
        ("Expand[5]", "5"),
        ("Expand[x]", "x"),
    ])
    def test_value(self, run, source, expected):
        assert run(source) == expected

    def test_binomial_coefficients(self, run_value):
        # (x+1)^4 at x=1 is 2^4
        assert run_value("Expand[(x + 1)^4] /. x -> 1") == 16

    def test_expansion_agrees_numerically(self, evaluator):
        original = evaluator.run("((a + b)*(a - 2*b)) /. {a -> 7, b -> 3}")
        expanded = evaluator.run(
            "Expand[(a + b)*(a - 2*b)] /. {a -> 7, b -> 3}"
        )
        assert original == expanded

    def test_expand_then_differentiate(self, run):
        assert run("D[Expand[(x + 1)^2], x]") == "Plus[2, Times[2, x]]"


class TestREPL:
    def run_session(self, text: str) -> str:
        from repro.__main__ import repl

        output = io.StringIO()
        repl(io.StringIO(text), output)
        return output.getvalue()

    def test_in_out_numbering(self):
        transcript = self.run_session("1 + 1\n2 + 2\n")
        assert "In[1]:=" in transcript
        assert "Out[1]= 2" in transcript
        assert "Out[2]= 4" in transcript

    def test_state_persists_between_inputs(self):
        transcript = self.run_session("x = 10\nx * x\n")
        assert "Out[2]= 100" in transcript

    def test_function_compile_available(self):
        transcript = self.run_session(
            'c = FunctionCompile[Function[{Typed[k, "MachineInteger"]},'
            " k + 1]]; c[41]\n"
        )
        assert "Out[1]= 42" in transcript

    def test_syntax_error_does_not_kill_session(self):
        transcript = self.run_session("1 +\n5\n")
        assert "Syntax:" in transcript
        assert "Out[2]= 5" in transcript

    def test_soft_failure_message_shown(self):
        transcript = self.run_session(
            'f = FunctionCompile[Function[{Typed[n, "MachineInteger"]},'
            " Module[{a = 0, b = 1, i = 1}, While[i <= n,"
            " Module[{t = a + b}, a = b; b = t]; i = i + 1]; a]]]; f[200]\n"
        )
        assert "reverting to uncompiled evaluation" in transcript
        assert "280571172992510140037611932413038677189525" in transcript
