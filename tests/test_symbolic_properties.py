"""Property-based symbolic algebra: Expand and D agree with numeric
evaluation on random polynomials."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Evaluator
from repro.engine.patterns import substitute
from repro.mexpr import MInteger, MReal, expr, parse

_coefficients = st.lists(
    st.integers(min_value=-9, max_value=9), min_size=1, max_size=5
)


def _polynomial_source(coefficients) -> str:
    terms = [
        f"({c})*x^{i}" if i else f"({c})"
        for i, c in enumerate(coefficients)
    ]
    return " + ".join(terms)


def _evaluate_at(evaluator, source: str, x: float) -> float:
    bound = substitute(parse(source), {"x": MReal(float(x))})
    return evaluator.evaluate(expr("N", bound)).to_python()


class TestExpandProperties:
    @given(_coefficients, _coefficients,
           st.floats(min_value=-3, max_value=3, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_expanded_product_agrees_numerically(self, p, q, x):
        evaluator = Evaluator()
        product = f"({_polynomial_source(p)}) * ({_polynomial_source(q)})"
        direct = _evaluate_at(evaluator, product, x)
        expanded_expr = evaluator.run(f"Expand[{product}]")
        from repro.mexpr import full_form

        expanded = _evaluate_at(evaluator, full_form(expanded_expr), x)
        assert expanded == pytest.approx(direct, rel=1e-9, abs=1e-9)

    @given(st.integers(min_value=2, max_value=5),
           st.floats(min_value=-2, max_value=2, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_binomial_power_agrees(self, n, x):
        evaluator = Evaluator()
        from repro.mexpr import full_form

        expanded = evaluator.run(f"Expand[(x + 1)^{n}]")
        value = _evaluate_at(evaluator, full_form(expanded), x)
        assert value == pytest.approx((x + 1) ** n, rel=1e-9, abs=1e-9)


class TestDerivativeProperties:
    @given(_coefficients,
           st.floats(min_value=-2, max_value=2, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_d_matches_finite_difference(self, coefficients, x):
        evaluator = Evaluator()
        source = _polynomial_source(coefficients)
        from repro.mexpr import full_form

        derivative = evaluator.run(f"D[{source}, x]")
        analytic = _evaluate_at(evaluator, full_form(derivative), x)
        h = 1e-6
        numeric = (
            _evaluate_at(evaluator, source, x + h)
            - _evaluate_at(evaluator, source, x - h)
        ) / (2 * h)
        assert analytic == pytest.approx(numeric, rel=1e-3, abs=1e-3)

    def test_prime_operator_on_stored_function(self, run):
        assert run("g = Function[{x}, x^3]; g'[2]") == "12"
        assert run("g'[y]") == "Times[3, Power[y, 2]]"

    def test_second_derivative_via_nesting(self, run):
        assert run("D[D[x^4, x], x]") == "Times[12, Power[x, 2]]"
