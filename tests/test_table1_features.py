"""Table 1, cell by cell: every F1–F10 feature is asserted for the new
compiler, and the bytecode compiler's ✓ / ⋆ / ✗ entries are checked too.

Each test names the feature it certifies; ``benchmarks/bench_table1_features.py``
prints the matrix these assertions back.
"""

import pytest

from repro.bytecode import compile_function
from repro.compiler import (
    FunctionCompile,
    FunctionCompileExportLibrary,
    FunctionCompileExportString,
    LibraryFunctionLoad,
    install_engine_support,
)
from repro.engine import Evaluator
from repro.errors import BytecodeCompilerError
from repro.mexpr import full_form, parse


@pytest.fixture()
def session():
    evaluator = Evaluator()
    install_engine_support(evaluator)
    return evaluator


class TestF1IntegrationWithInterpreter:
    def test_new_compiler(self, session):
        out = session.run(
            'f = FunctionCompile[Function[{Typed[x, "MachineInteger"]}, x+1]];'
            ' Map[f, {1, 2, 3}]'
        )
        assert out.to_python() == [2, 3, 4]

    def test_bytecode_compiler(self, session):
        out = session.run("g = Compile[{{x, _Real}}, x*2]; Map[g, {1.0, 2.0}]")
        assert out.to_python() == [2.0, 4.0]


class TestF2SoftFailureMode:
    SRC = (
        'Function[{Typed[n, "MachineInteger"]},'
        ' Module[{a = 0, b = 1, i = 1},'
        '  While[i <= n, Module[{t = a + b}, a = b; b = t]; i = i + 1]; a]]'
    )

    def test_new_compiler(self, session):
        f = FunctionCompile(self.SRC, evaluator=session)
        assert f(200) == 280571172992510140037611932413038677189525

    def test_bytecode_compiler(self, session):
        f = compile_function(
            parse("{{n, _Integer}}"),
            parse("Module[{a = 0, b = 1, i = 1},"
                  " While[i <= n, Module[{t = a + b}, a = b; b = t]; i++]; a]"),
            session,
        )
        assert f(200) == 280571172992510140037611932413038677189525


class TestF3AbortableEvaluation:
    def test_new_compiler_has_abort_checks(self):
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{i = 0}, While[i < n, i = i + 1]; i]]'
        )
        assert "_check_abort()" in f.generated_source

    def test_bytecode_vm_polls_on_back_edges(self):
        # structural check: the VM polls the abort source on backward jumps
        import inspect

        from repro.bytecode.vm import WVM

        dispatch_loop = getattr(WVM, "_run", WVM.run)
        assert "abort_poll" in inspect.getsource(dispatch_loop)


class TestF4BackendSupport:
    def test_new_compiler_targets_python_c_wvm_ir(self):
        src = 'Function[{Typed[x, "MachineInteger"]}, x + 1]'
        for target in ("Python", "C", "WVM", "IR"):
            assert FunctionCompileExportString(src, target)

    def test_bytecode_compiler_is_wvm_only(self):
        # the legacy compiler has exactly one backend: its own VM
        f = compile_function(parse("{{x, _Real}}"), parse("x"))
        assert f.instructions  # bytecode is the only artifact it produces


class TestF5MutabilitySemantics:
    def test_new_compiler_copy_on_aliased_mutation(self):
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Module[{a = Table[i, {i, 1, n}]},'
            '  Module[{b = a}, Set[Part[b, 1], 100]; a[[1]]]]]'
        )
        assert f(3) == 1  # a unchanged

    def test_bytecode_copy_on_read(self):
        data = [1.0, 2.0]
        f = compile_function(
            parse("{{v, _Real, 1}}"),
            parse("Module[{w = v}, w[[1]] = 0.0; w[[1]]]"),
        )
        f(data)
        assert data == [1.0, 2.0]


class TestF6ExtensibleUserTypes:
    def test_new_compiler_user_types(self):
        from repro.compiler import TypeEnvironment, default_environment, fn

        env = TypeEnvironment(parent=default_environment())
        env.declare_type("Celsius", classes=["Reals", "Ordered"])
        assert env.has_type("Celsius")

    def test_new_compiler_function_types(self):
        """§3 F6's example needs function-typed locals."""
        import math

        f = FunctionCompile(
            'Function[{Typed[i, "MachineInteger"], Typed[v, "Real64"]},'
            ' Module[{g = If[i == 0, Sin, Cos]}, g[v]]]'
        )
        assert f(0, 0.25) == pytest.approx(math.sin(0.25))

    def test_bytecode_compiler_cannot(self):
        with pytest.raises(BytecodeCompilerError):
            compile_function(
                parse("{{i, _Integer}, {v, _Real}}"),
                parse("Module[{f = If[i == 0, Sin, Cos]}, f[v]]"),
            )


class TestF7MemoryManagement:
    def test_acquire_release_inserted(self):
        from repro.compiler import CompileToIR

        text = CompileToIR(
            'Function[{Typed[v, TypeSpecifier["Tensor"["Real64", 1]]]},'
            ' Total[v]]'
        )["toString"]
        assert "MemoryAcquire" in text

    def test_noop_for_unmanaged_scalars(self):
        from repro.compiler import CompileToIR

        text = CompileToIR(
            'Function[{Typed[x, "MachineInteger"]}, x + 1]'
        )["toString"]
        assert "MemoryAcquire" not in text

    def test_runtime_refcounts_balance(self):
        from repro.runtime import memory_stats, reset_memory_stats

        reset_memory_stats()
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' Total[Table[i, {i, 1, n}]]]'
        )
        f(10)
        stats = memory_stats()
        assert stats["acquire"] >= 1


class TestF8SymbolicCompute:
    def test_new_compiler(self):
        cf = FunctionCompile(
            'Function[{Typed[a, "Expression"], Typed[b, "Expression"]},'
            ' a + b]'
        )
        assert full_form(cf(parse("x"), parse("y"))) == "Plus[x, y]"

    def test_bytecode_compiler_cannot(self):
        # no Expression datatype exists in the bytecode compiler at all
        from repro.bytecode.supported import UNSUPPORTED_FEATURES

        assert "Expression" in UNSUPPORTED_FEATURES


class TestF9GradualCompilation:
    def test_kernel_function_bridge(self, session):
        f = FunctionCompile(
            'Function[{Typed[n, "MachineInteger"]},'
            ' KernelFunction[Fibonacci][n] ]',
            evaluator=session,
        )
        assert full_form(f(10)) == "55"


class TestF10StandaloneExport:
    def test_new_compiler_library_round_trip(self, tmp_path):
        path = str(tmp_path / "lib.py")
        FunctionCompileExportLibrary(
            path, 'Function[{Typed[x, "MachineInteger"]}, x * 3]'
        )
        assert LibraryFunctionLoad(path)(14) == 42

    def test_bytecode_limited_export(self):
        """⋆ in Table 1: the bytecode artifact serializes, but only as the
        engine-internal CompiledFunction form."""
        f = compile_function(parse("{{x, _Real}}"), parse("x + 1"))
        assert "CompiledFunction[" in f.input_form()


class TestL1ExpressivenessGap:
    """§1 L1: strings/symbolics compile only on the new compiler."""

    def test_strings(self):
        new = FunctionCompile(
            'Function[{Typed[s, "String"]}, StringLength[s]]'
        )
        assert new("four") == 4
        with pytest.raises(BytecodeCompilerError):
            compile_function(parse("{{s, _String}}"),
                             parse("StringLength[s]"))

    def test_function_passing(self):
        new = FunctionCompile(
            'Function[{Typed[x, "MachineInteger"],'
            ' Typed[g, TypeSpecifier[{"Integer64"} -> "Integer64"]]}, g[x]]'
        )
        assert new(4, lambda v: v * v) == 16
        with pytest.raises(BytecodeCompilerError):
            compile_function(parse("{{lst, _Real, 1}}"),
                             parse("MySort[lst, Less]"))
