"""The PR 9 telemetry plane (DESIGN.md §7.5–7.7).

Covers the tentpole end to end: request-scoped trace contexts and their
propagation into executor threads, the always-on flight recorder's
routing / head-sampling / tail-retention rules and auto-snapshots, the
log-bucket quantile histograms, the bounded span buffer, the server's
``metrics``/``events``/``trace`` protocol ops, the ``repro top``
rendering, and — the acceptance criterion — a ``trace <request-id>``
round trip against a live ``python -m repro serve`` subprocess returning
the complete admission → session → tier timeline.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.observe import context as context_module
from repro.observe import trace as trace_module
from repro.observe.context import activate, current_context, mint_context
from repro.observe.flight import (
    MAX_REQUEST_EVENTS,
    FlightRecorder,
    telemetry_enabled,
)
from repro.observe.metrics import Histogram, MetricsRegistry
from repro.observe.trace import (
    DEFAULT_MAX_SPANS,
    Tracer,
    max_spans_from_environment,
    with_tracing,
)
from repro.server.cli import handle_connection
from repro.server.core import EngineServer, ServerConfig
from repro.server.top import render_top


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test must leave the process-wide tracer disabled."""
    assert trace_module.TRACER is None
    yield
    assert trace_module.TRACER is None
    assert current_context() is None


class TestTraceContext:
    def test_mint_assigns_sequential_request_ids(self):
        first = mint_context(session="s1")
        second = mint_context(session="s1")
        assert first.request_id.startswith("req-")
        assert second.request_id != first.request_id
        assert first.trace_id.startswith("tr-")
        assert first.trace_id != second.trace_id

    def test_explicit_trace_id_is_preserved(self):
        ctx = mint_context(session="s", trace_id="tr-client-chosen")
        assert ctx.trace_id == "tr-client-chosen"

    def test_activate_scopes_the_current_context(self):
        assert current_context() is None
        ctx = mint_context(session="s")
        with activate(ctx):
            assert current_context() is ctx
        assert current_context() is None

    def test_records_are_stamped_inside_a_context(self):
        tracer = Tracer()
        ctx = mint_context(session="s")
        with activate(ctx):
            tracer.event("inside", "test")
            with tracer.span("work", "test"):
                pass
        tracer.event("outside", "test")
        inside = [r for r in tracer.events if r.name in ("inside", "work")]
        assert all(r.request == ctx.request_id for r in inside)
        assert all(r.trace_id == ctx.trace_id for r in inside)
        (outside,) = [r for r in tracer.events if r.name == "outside"]
        assert outside.request == "" and outside.trace_id == ""
        # the stamped identity survives into the wire/Chrome forms
        stamped = next(e for e in tracer.chrome_trace()
                       if e["name"] == "work")
        assert stamped["args"]["request"] == ctx.request_id
        assert tracer.spans(request=ctx.request_id)

    def test_copy_context_carries_the_stamp_into_worker_threads(self):
        """The server's executor handoff: ``contextvars.copy_context``."""
        tracer = Tracer()
        ctx = mint_context(session="s")
        results = []

        def worker():
            tracer.event("on-thread", "test")
            results.append(current_context())

        with activate(ctx):
            carrier = contextvars.copy_context()
        thread = threading.Thread(target=lambda: carrier.run(worker))
        thread.start()
        thread.join()
        assert results == [ctx]
        (record,) = tracer.instants("on-thread")
        assert record.request == ctx.request_id


class TestQuantileHistogram:
    def test_quantiles_track_known_distribution(self):
        histogram = Histogram()
        values = [i / 1000.0 for i in range(1, 101)]  # 1ms .. 100ms
        for value in values:
            histogram.record(value)
        # log buckets are a tenth of a decade wide: ±12% relative error
        assert histogram.p50 == pytest.approx(0.050, rel=0.15)
        assert histogram.p99 == pytest.approx(0.099, rel=0.15)
        assert histogram.quantile(0.0) == pytest.approx(0.001, rel=0.15)

    def test_estimates_clamp_into_observed_range(self):
        histogram = Histogram()
        histogram.record(0.0042)
        assert histogram.p50 == pytest.approx(0.0042)
        assert histogram.p99 == pytest.approx(0.0042)

    def test_underflow_and_empty(self):
        assert Histogram().p50 is None
        histogram = Histogram()
        histogram.record(0.0)
        histogram.record(-1.0)
        assert histogram.p50 == pytest.approx(-1.0)  # the observed minimum

    def test_snapshot_round_trips_buckets_and_quantiles(self):
        registry = MetricsRegistry()
        for value in (0.001, 0.01, 0.1, 1.0, 10.0):
            registry.observe("lat", value)
        clone = MetricsRegistry.from_json(registry.to_json())
        original = registry.histogram("lat")
        restored = clone.histogram("lat")
        assert restored.buckets == original.buckets
        assert restored.p99 == original.p99
        snapshot = original.snapshot()
        assert snapshot["p50"] == original.p50
        assert all(isinstance(k, str) for k in snapshot["buckets"])

    def test_pre_bucket_snapshot_degrades_to_none(self):
        """Stats written before PR 9 have no buckets: quantiles say so."""
        old = Histogram.from_snapshot(
            {"count": 5, "total": 1.0, "min": 0.1, "max": 0.3}
        )
        assert old.count == 5
        assert old.p99 is None


class TestBoundedTracer:
    def test_span_buffer_evicts_oldest_first(self):
        tracer = Tracer(max_spans=10)
        for index in range(25):
            tracer.event(f"e{index}", "test")
        assert len(tracer.events) == 10
        assert tracer.dropped_spans == 15
        assert [r.name for r in tracer.events][0] == "e15"
        assert [r.name for r in tracer.events][-1] == "e24"

    def test_max_spans_from_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_MAX_SPANS", raising=False)
        assert max_spans_from_environment() == DEFAULT_MAX_SPANS
        monkeypatch.setenv("REPRO_TRACE_MAX_SPANS", "123")
        assert max_spans_from_environment() == 123
        assert Tracer().max_spans == 123
        monkeypatch.setenv("REPRO_TRACE_MAX_SPANS", "junk")
        assert max_spans_from_environment() == DEFAULT_MAX_SPANS
        monkeypatch.setenv("REPRO_TRACE_MAX_SPANS", "-5")
        assert max_spans_from_environment() == DEFAULT_MAX_SPANS


class TestFlightRecorder:
    def test_request_records_buffer_until_finish(self):
        recorder = FlightRecorder(max_events=100)
        ctx = mint_context(session="s", sampled=True)
        with activate(ctx):
            recorder.event("server.admit", "server")
        assert recorder.open_requests() == 1
        assert list(recorder.events) == []  # nothing in the ring yet
        assert recorder.finish_request(ctx, ok=True)
        assert recorder.open_requests() == 0
        assert [r.name for r in recorder.timeline(ctx.request_id)] == [
            "server.admit"
        ]
        assert recorder.retained_requests == 1

    def test_unsampled_healthy_request_is_dropped(self):
        recorder = FlightRecorder(max_events=100)
        ctx = mint_context(session="s", sampled=False)
        with activate(ctx):
            recorder.event("server.admit", "server")
        assert not recorder.finish_request(ctx, ok=True)
        assert recorder.dropped_requests == 1
        assert recorder.timeline(ctx.request_id) == []

    @pytest.mark.parametrize(
        "finish_kwargs",
        [
            {"ok": False},
            {"ok": True, "rejected": True},
            {"ok": True, "retries": 2},
            {"ok": True, "latency": 99.0},
        ],
        ids=["failed", "shed", "retried", "slow"],
    )
    def test_tail_retention_keeps_interesting_requests(self, finish_kwargs):
        recorder = FlightRecorder(max_events=100, slow_seconds=0.5)
        ctx = mint_context(session="s", sampled=False)
        with activate(ctx):
            recorder.event("server.admit", "server")
        assert recorder.finish_request(ctx, **finish_kwargs)
        assert recorder.timeline(ctx.request_id)

    def test_notable_event_in_buffer_forces_retention(self):
        recorder = FlightRecorder(max_events=100)
        ctx = mint_context(session="s", sampled=False)
        with activate(ctx):
            recorder.event("guard.trip", "guard", kind="deadline")
        assert recorder.finish_request(ctx, ok=True)

    def test_head_sampling_is_deterministic(self):
        recorder = FlightRecorder(sample=0.25)
        decisions = [recorder.sample_next() for _ in range(20)]
        assert decisions.count(True) == 5
        # error diffusion: exactly every fourth request, not a random 25%
        assert decisions == [False, False, False, True] * 5

    def test_per_request_buffer_is_bounded(self):
        recorder = FlightRecorder(max_events=MAX_REQUEST_EVENTS * 2)
        ctx = mint_context(session="s", sampled=True)
        with activate(ctx):
            for index in range(MAX_REQUEST_EVENTS + 50):
                recorder.event(f"e{index}", "test")
        assert recorder.dropped_events == 50
        recorder.finish_request(ctx, ok=True)
        assert recorder.truncated_requests == 1
        assert len(recorder.timeline(ctx.request_id)) == MAX_REQUEST_EVENTS

    def test_breaker_open_event_auto_snapshots(self):
        recorder = FlightRecorder(max_events=100)
        recorder.event("server.breaker", "server", scope="bad1",
                       **{"from": "closed", "to": "open"})
        assert [s["reason"] for s in recorder.snapshots] == [
            "breaker-open:bad1"
        ]
        recorder.event("server.pressure", "server",
                       **{"from": "ELEVATED", "to": "CRITICAL"})
        assert [s["reason"] for s in recorder.snapshots] == [
            "breaker-open:bad1", "pressure-critical",
        ]
        # half-open → closed transitions do not snapshot
        recorder.event("server.breaker", "server", scope="bad1",
                       **{"from": "half-open", "to": "closed"})
        assert len(recorder.snapshots) == 2

    def test_snapshots_are_bounded_and_written_as_chrome_traces(
        self, tmp_path
    ):
        recorder = FlightRecorder(max_events=100, max_snapshots=2)
        recorder.event("noise", "test")
        for index in range(4):
            recorder.auto_snapshot(f"reason-{index}")
        assert [s["reason"] for s in recorder.snapshots] == [
            "reason-2", "reason-3",
        ]
        written = recorder.write_snapshots(str(tmp_path))
        assert len(written) == 3  # two snapshots + the live ring
        for path in written:
            payload = json.load(open(path))
            assert all({"name", "ph", "ts"} <= set(entry)
                       for entry in payload)
        assert (tmp_path / "flight-ring.json").exists()

    def test_with_tracing_steps_aside_and_restores_the_recorder(self):
        recorder = FlightRecorder()
        trace_module.enable_tracing(recorder)
        try:
            with with_tracing() as explicit:
                assert trace_module.TRACER is explicit
                assert explicit is not recorder
            assert trace_module.TRACER is recorder
        finally:
            trace_module.disable_tracing()

    def test_telemetry_enabled_reads_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert telemetry_enabled()
        for value in ("0", "off", "false", "no", "disabled", "OFF"):
            monkeypatch.setenv("REPRO_TELEMETRY", value)
            assert not telemetry_enabled()
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert telemetry_enabled()


def _run(coroutine):
    return asyncio.run(coroutine)


def server_config(**overrides) -> ServerConfig:
    defaults = dict(max_concurrent=2, prelude=("inc[x_] := x + 1",))
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestServerTelemetry:
    def test_submit_returns_ids_and_a_complete_timeline(self):
        async def scenario():
            server = EngineServer(config=server_config())
            try:
                assert trace_module.TRACER is server.flight
                response = await server.submit("inc[41]", session_id="s1")
                timeline = server.timeline(response.request_id)
                return (response, timeline, server.stats(),
                        server.metrics_dict())
            finally:
                await server.close()

        response, timeline, stats, metrics = _run(scenario())
        assert response.ok and response.result == "42"
        assert response.request_id.startswith("req-")
        assert response.trace_id.startswith("tr-")
        names = [entry["name"] for entry in timeline]
        # admission → session → engine execution, one request id
        assert "server.request" in names
        assert "server.admit" in names
        assert "session.execute" in names
        assert "eval.evaluate" in names
        assert {entry["trace_id"] for entry in timeline} == {
            response.trace_id
        }
        # worker-thread spans were stamped (executor context propagation)
        execute = next(e for e in timeline
                       if e["name"] == "session.execute")
        assert execute["args"]["session"] == "s1"
        telemetry = stats["telemetry"]
        assert telemetry["retained_requests"] == 1
        histogram = metrics["histograms"]["server.latency_seconds"]
        assert histogram["count"] == 1

    def test_tier_promotion_lands_in_the_owning_requests_timeline(self):
        async def scenario():
            server = EngineServer(config=server_config())
            try:
                await server.submit(
                    "fib[n_] := If[n < 2, n, fib[n-1] + fib[n-2]]", "s1"
                )
                response = await server.submit("fib[10]", session_id="s1")
                return response, server.timeline(response.request_id)
            finally:
                await server.close()

        response, timeline = _run(scenario())
        assert response.ok
        names = [entry["name"] for entry in timeline]
        assert "tier.promote" in names  # the template rung fired in-request
        assert "hotspot.promote" in names

    def test_shed_request_timeline_records_the_shed_event(self):
        async def scenario():
            config = server_config(session_queue_limit=0)
            server = EngineServer(config=config)
            try:
                response = await server.submit("inc[1]", session_id="s1")
                return response, server.timeline(response.request_id)
            finally:
                await server.close()

        response, timeline = _run(scenario())
        assert response.rejected
        names = [entry["name"] for entry in timeline]
        assert "server.shed" in names
        shed = next(e for e in timeline if e["name"] == "server.shed")
        assert shed["args"]["reason"] == "session-queue-full"

    def test_telemetry_disabled_serves_without_a_recorder(self):
        async def scenario():
            server = EngineServer(config=server_config(telemetry=False))
            try:
                assert server.flight is None
                assert trace_module.TRACER is None
                response = await server.submit("inc[1]", session_id="s1")
                return response, server.timeline(response.request_id)
            finally:
                await server.close()

        response, timeline = _run(scenario())
        assert response.ok and response.result == "2"
        assert response.request_id  # identity is minted regardless
        assert timeline == []  # but nothing records it

    def test_recorder_uninstalls_on_close_only_if_owned(self):
        async def scenario():
            explicit = trace_module.enable_tracing()
            try:
                server = EngineServer(config=server_config())
                assert server.flight is None  # explicit tracer wins
                await server.close()
                assert trace_module.TRACER is explicit
            finally:
                trace_module.disable_tracing()

        _run(scenario())

    def test_sampling_drops_healthy_but_keeps_failed(self):
        async def scenario():
            server = EngineServer(
                config=server_config(telemetry_sample=0.0)
            )
            try:
                healthy = await server.submit("inc[1]", session_id="s1")
                await server.submit("boom[x_] := boom[x + 1]",
                                    session_id="s1")
                failed = await server.submit("boom[0]", session_id="s1")
                return (
                    healthy, server.timeline(healthy.request_id),
                    failed, server.timeline(failed.request_id),
                )
            finally:
                await server.close()

        healthy, healthy_tl, failed, failed_tl = _run(scenario())
        assert healthy.ok and healthy_tl == []
        assert not failed.ok and failed_tl  # tail retention


class TestProtocolOps:
    def run_ops(self, exchanges):
        """Drive the newline-JSON protocol over a real TCP socket."""

        async def scenario():
            engine = EngineServer(config=server_config())
            tcp = await asyncio.start_server(
                lambda r, w: handle_connection(engine, r, w),
                "127.0.0.1", 0,
            )
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            replies = []
            try:
                for payload in exchanges(replies):
                    writer.write(json.dumps(payload).encode() + b"\n")
                    await writer.drain()
                    replies.append(json.loads(await reader.readline()))
                return replies
            finally:
                writer.close()
                tcp.close()
                await tcp.wait_closed()
                await engine.close()

        return _run(scenario())

    def test_trace_op_returns_the_request_timeline(self):
        def exchanges(replies):
            yield {"expr": "inc[1]", "session": "s1"}
            yield {"op": "trace", "request_id": replies[0]["request_id"]}
            # the shorter "request" key works too
            yield {"op": "trace", "request": replies[0]["request_id"]}
            yield {"op": "trace", "request_id": "req-does-not-exist"}

        replies = self.run_ops(exchanges)
        assert replies[0]["ok"] and replies[0]["request_id"]
        trace_reply = replies[1]
        assert trace_reply["ok"]
        names = [entry["name"] for entry in trace_reply["timeline"]]
        assert "server.request" in names and "session.execute" in names
        assert replies[2]["timeline"] == trace_reply["timeline"]
        assert not replies[3]["ok"] and replies[3]["timeline"] == []

    def test_metrics_and_events_ops(self):
        def exchanges(replies):
            yield {"expr": "inc[5]", "session": "s1"}
            yield {"op": "metrics"}
            yield {"op": "events", "limit": 3}
            yield {"op": "events", "limit": "junk"}

        replies = self.run_ops(exchanges)
        metrics = replies[1]["metrics"]
        assert metrics["counters"]["server.requests"] == 1
        assert "server.latency_seconds" in metrics["histograms"]
        assert len(replies[2]["events"]) == 3
        assert replies[3]["ok"]  # junk limit falls back, never errors

    def test_client_supplied_trace_id_propagates(self):
        def exchanges(replies):
            yield {"expr": "inc[1]", "session": "s1",
                   "trace_id": "tr-from-client"}

        (reply,) = self.run_ops(exchanges)
        assert reply["trace_id"] == "tr-from-client"


class TestTopRendering:
    def test_render_top_summarizes_a_live_server(self):
        async def scenario():
            server = EngineServer(config=server_config())
            try:
                await server.submit("inc[1]", session_id="s1")
                await server.submit("inc[2]", session_id="s2")
                return server.stats(), server.metrics_dict()
            finally:
                await server.close()

        stats, metrics = _run(scenario())
        text = render_top(stats, metrics)
        assert "pressure NORMAL" in text
        assert "sessions 2" in text
        assert "p50" in text and "p99" in text
        assert "tiers: compiled=2" in text
        assert "retained 2" in text
        assert "s1" in text and "s2" in text

    def test_render_top_handles_empty_payloads(self):
        text = render_top({}, {})
        assert "no samples yet" in text
        assert "recorder off" in text


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.mark.slow
class TestServeEndToEnd:
    def test_trace_op_against_a_live_serve_process(self):
        """The ISSUE acceptance: ``trace <request-id>`` against a real
        ``python -m repro serve`` returns the admission → session → tier
        timeline, and ``repro top``'s fetch path reads the same server."""
        import os

        port = _free_port()
        repo_root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        env["REPRO_ARTIFACT_CACHE"] = "off"
        env.pop("REPRO_TELEMETRY", None)  # recorder on, its default
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", str(port), "--max-concurrent", "2"],
            cwd=repo_root, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "listening" in banner, banner

            with socket.create_connection(("127.0.0.1", port),
                                          timeout=10) as conn:
                handle = conn.makefile("rwb")

                def rpc(payload):
                    handle.write(json.dumps(payload).encode() + b"\n")
                    handle.flush()
                    return json.loads(handle.readline())

                rpc({"expr":
                     "fib[n_] := If[n < 2, n, fib[n-1] + fib[n-2]]",
                     "session": "e2e"})
                response = rpc({"expr": "fib[10]", "session": "e2e"})
                assert response["ok"] and response["result"] == "55"
                request_id = response["request_id"]

                trace_reply = rpc({"op": "trace",
                                   "request_id": request_id})
                assert trace_reply["ok"]
                names = [e["name"] for e in trace_reply["timeline"]]
                for expected in ("server.request", "server.admit",
                                 "session.execute", "eval.evaluate",
                                 "tier.promote"):
                    assert expected in names, (expected, names)
                assert all(e.get("request") == request_id
                           for e in trace_reply["timeline"])

            # the `repro top` client path against the same live server
            from repro.server.top import fetch

            stats, metrics = fetch("127.0.0.1", port, timeout=10)
            text = render_top(stats, metrics)
            assert "requests   total 2" in text
            assert "p50" in text
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
