"""The template-JIT baseline tier (`repro.template_jit`).

Covers the three layers of the tentpole:

* **the stitcher** — stencil correctness against the bytecode VM on real
  kernels, the stitched source's shape (slot numbering, checkpoint
  cadence), checked-integer semantics, and the deliberate coverage holes
  (:class:`TemplateCompilerError`);
* **the artifact** — boundary type gates, copy-on-read tensors, the
  soft-failure ladder template → lazy bytecode → interpreter behind one
  shared breaker, abort/guard contract parity;
* **the ladder** — three-rung promotion ordering, tier-up at the full
  threshold, redefinition invalidation at the template rung, and the
  environment knobs.
"""

from __future__ import annotations

import threading

import pytest

from repro.compiler import install_engine_support
from repro.engine import Evaluator
from repro.errors import (
    TemplateCompilerError,
    WolframAbort,
    WolframBudgetError,
    WolframRuntimeError,
)
from repro.mexpr import parse
from repro.runtime.guard import Tier, guard_scope
from repro.template_jit import (
    SUPPORTED_HEADS,
    compile_template,
    compile_template_function,
)


@pytest.fixture()
def hosted():
    session = Evaluator(recursion_limit=8192)
    install_engine_support(session)
    session.hotspot.threshold = 6
    session.hotspot.template_threshold = 2
    return session


def _stitch(source_specs: str, source_body: str, evaluator=None,
            name: str = "tpl"):
    return compile_template_function(
        parse(source_specs), parse(source_body), evaluator=evaluator,
        name=name,
    )


# -- the stitcher ------------------------------------------------------------


class TestStitcher:
    def test_scalar_arithmetic_matches_vm(self):
        from repro.bytecode import compile_function

        specs, body = "{{n, _Integer}}", (
            "Module[{a = 0, i = 1},"
            " While[i <= n, a = a + i*i; i = i + 1]; a]"
        )
        template = _stitch(specs, body)
        bytecode = compile_function(parse(specs), parse(body))
        for n in (0, 1, 7, 100):
            assert template(n) == bytecode(n)

    def test_figure2_kernels_match_vm(self):
        from repro.benchsuite import data as workloads
        from repro.benchsuite import programs
        from repro.bytecode import compile_function

        cases = {
            "fnv1a": (list(b"Hello, template tier"),),
            "histogram": (workloads.histogram_data(500),),
            "mandelbrot": (complex(-0.5, 0.35),),
        }
        for name, arguments in cases.items():
            specs = parse(getattr(programs, f"BYTECODE_{name.upper()}_SPECS"))
            body = parse(getattr(programs, f"BYTECODE_{name.upper()}_BODY"))
            template = compile_template_function(specs, body)
            bytecode = compile_function(specs, body)
            assert template(*arguments) == bytecode(*arguments), name

    def test_stitched_source_shape(self):
        artifact = _stitch(
            "{{n, _Integer}}",
            "Module[{a = 0, i = 1}, While[i <= n, a = a + i; i = i + 1]; a]",
        )
        source = artifact.source
        # slot numbering is the only register allocation
        assert "_s0" in source and "_s1" in source
        # the abort/guard cadence: prologue plus every loop header
        assert source.count("_checkpoint()") >= 2
        lines = source.splitlines()
        assert lines[0].startswith("def _tpl(")
        assert artifact(10) == 55

    def test_checked_integer_overflow(self):
        artifact = _stitch("{{n, _Integer}}", "n * n", evaluator=None)
        with pytest.raises(WolframRuntimeError) as info:
            artifact(2 ** 62)
        assert info.value.kind == "IntegerOverflow"

    def test_real_arithmetic_not_overflow_checked(self):
        artifact = _stitch("{{x, _Real}}", "x * x + 0.5")
        assert artifact(3.0) == 9.5

    def test_divide_is_real_division(self):
        artifact = _stitch("{{n, _Integer}}", "n / 2")
        assert artifact(5) == 2.5

    def test_divide_by_zero_is_soft(self):
        # the explicit head (infix / parses into Times[.., Power[.., -1]])
        artifact = _stitch("{{n, _Integer}}", "Divide[1, n]")
        with pytest.raises(WolframRuntimeError) as info:
            artifact(0)
        assert info.value.kind == "DivideByZero"

    def test_part_is_one_based_and_range_checked(self):
        artifact = _stitch("{{data, _Integer, 1}, {i, _Integer}}",
                           "Part[data, i]")
        assert artifact([10, 20, 30], 1) == 10
        assert artifact([10, 20, 30], -1) == 30
        with pytest.raises(WolframRuntimeError) as info:
            artifact([10, 20, 30], 4)
        assert info.value.kind == "PartOutOfRange"

    def test_direct_recursion_stitches_self_call(self):
        artifact = _stitch(
            "{{n, _Integer}}",
            "If[n < 2, n, tpl[n - 1] + tpl[n - 2]]",
        )
        assert artifact.recursive
        assert "_self(" in artifact.source
        assert artifact(20) == 6765

    def test_unsupported_head_raises(self):
        with pytest.raises(TemplateCompilerError):
            _stitch("{{n, _Integer}}", 'StringJoin["a", "b"]')

    def test_unbound_symbol_raises(self):
        with pytest.raises(TemplateCompilerError):
            _stitch("{{n, _Integer}}", "n + mystery")

    def test_supported_heads_is_a_frozen_surface(self):
        assert "Plus" in SUPPORTED_HEADS
        assert "While" in SUPPORTED_HEADS
        assert "StringJoin" not in SUPPORTED_HEADS

    def test_compile_seconds_recorded(self):
        artifact = _stitch("{{n, _Integer}}", "n + 1")
        assert artifact.compile_seconds > 0.0


# -- the artifact boundary ---------------------------------------------------


class TestArtifactBoundary:
    def test_argument_count_gate(self):
        artifact = _stitch("{{n, _Integer}}", "n + 1")
        with pytest.raises(WolframRuntimeError) as info:
            artifact(1, 2)
        assert info.value.kind == "ArgumentCount"

    def test_integer_gate_rejects_bool_and_float(self):
        artifact = _stitch("{{n, _Integer}}", "n + 1")
        for bad in (True, 1.5, "x"):
            with pytest.raises(WolframRuntimeError) as info:
                artifact(bad)
            assert info.value.kind == "TypeMismatch"

    def test_real_gate_accepts_int(self):
        artifact = _stitch("{{x, _Real}}", "x * 2.0")
        assert artifact(3) == 6.0

    def test_tensor_copy_on_read(self):
        artifact = _stitch(
            "{{data, _Integer, 1}}",
            "Module[{i = 1},"
            " While[i <= Length[data], data[[i]] = 0; i = i + 1];"
            " Total[data]]",
        )
        data = [1, 2, 3]
        assert artifact(data) == 0
        assert data == [1, 2, 3]  # F5: the caller's list is untouched

    def test_unhosted_runtime_error_propagates(self):
        artifact = _stitch("{{n, _Integer}}", "1 / n")
        # no evaluator: nothing to fall back to, the soft error surfaces
        with pytest.raises(WolframRuntimeError):
            artifact(0)


# -- the demotion ladder -----------------------------------------------------


class TestDemotionLadder:
    def test_soft_failures_demote_to_lazy_bytecode(self, hosted):
        artifact = _stitch("{{n, _Integer}}", "1 / n", evaluator=hosted)
        for _ in range(3):
            artifact(0)  # hosted: each soft failure re-runs interpreted
        assert artifact.breaker.tier is Tier.BYTECODE
        # the demoted rung still answers, through the lazily-built VM tier
        assert artifact(2) == 0.5
        assert artifact._bytecode is not None

    def test_bytecode_fallback_shares_the_breaker(self, hosted):
        artifact = _stitch("{{n, _Integer}}", "1 / n", evaluator=hosted)
        for _ in range(3):
            artifact(0)
        inner = artifact._build_bytecode()
        assert inner is not None
        assert inner.breaker is artifact.breaker
        assert inner.fallback_stats is artifact.fallback_stats

    def test_recursive_artifact_skips_the_bytecode_rung(self, hosted):
        hosted.run("tpl[0] = 0")
        hosted.run("tpl[1] = 1")
        hosted.run("tpl[n_] := tpl[n-1] + tpl[n-2]")
        artifact = _stitch(
            "{{n, _Integer}}",
            "If[n < 2, n, tpl[n - 1] + tpl[n - 2]]",
            evaluator=hosted,
        )
        breaker = artifact.breaker
        for _ in range(3):
            breaker.record_failure(Tier.TEMPLATE, "TemplateRuntime", "x")
        assert breaker.tier is Tier.BYTECODE
        # first demoted call discovers there is no VM lowering for
        # recursion and walks on to the interpreter
        assert artifact(10) == 55
        assert breaker.tier is Tier.INTERPRETER

    def test_interpreter_tier_without_host_raises(self):
        artifact = _stitch("{{n, _Integer}}", "n + 1")
        artifact.breaker.tier = Tier.INTERPRETER
        with pytest.raises(WolframRuntimeError) as info:
            artifact(1)
        assert info.value.kind == "NoInterpreter"


# -- abort and guard contract ------------------------------------------------


class TestAbortAndGuards:
    def test_abort_delivered_at_loop_header(self, hosted):
        # the stitched _checkpoint captures abort_pending at compile time,
        # so install the probe before stitching
        calls = {"count": 0}

        def abort_soon():
            calls["count"] += 1
            return calls["count"] > 50

        hosted.abort_pending = abort_soon
        try:
            artifact = _stitch(
                "{{n, _Integer}}",
                "Module[{i = 0}, While[i < n, i = i + 1]; i]",
                evaluator=hosted,
            )
            with pytest.raises(WolframAbort):
                artifact(10_000)
        finally:
            del hosted.abort_pending
        assert calls["count"] > 50  # delivered at a loop header, not late

    def test_step_budget_expires_inside_stitched_loop(self):
        artifact = _stitch(
            "{{n, _Integer}}",
            "Module[{i = 0}, While[i < n, i = i + 1]; i]",
        )
        with guard_scope(step_budget=50):
            with pytest.raises(WolframBudgetError):
                artifact(10_000)
        # outside the guard the same artifact runs to completion
        assert artifact(100) == 100

    def test_guard_expiry_does_not_trip_the_breaker(self):
        artifact = _stitch(
            "{{n, _Integer}}",
            "Module[{i = 0}, While[i < n, i = i + 1]; i]",
        )
        with guard_scope(step_budget=10):
            with pytest.raises(WolframBudgetError):
                artifact(10_000)
        assert artifact.breaker.tier is Tier.TEMPLATE


# -- the three-rung ladder in a session --------------------------------------


class TestSessionLadder:
    def test_promotion_order_template_then_compiled(self, hosted):
        hosted.run("sq[n_] := n*n + 1")
        for _ in range(12):
            assert hosted.run("sq[3]").to_python() == 10
        promotions = [
            (e.name, e.tier) for e in hosted.hotspot.events
            if e.action == "promoted"
        ]
        assert promotions == [("sq", "template"), ("sq", "compiled")]
        assert hosted.hotspot.promoted["sq"].tier_kind == "compiled"

    def test_template_rung_respects_low_threshold(self, hosted):
        hosted.hotspot.threshold = 1000  # never reach the full pipeline
        hosted.run("inc[n_] := n + 1")
        for _ in range(3):
            hosted.run("inc[1]")
        entry = hosted.hotspot.promoted["inc"]
        assert entry.tier_kind == "template"
        assert entry.artifact.compile_seconds < 0.05  # microsecond-class

    def test_redefinition_invalidates_template_promotion(self, hosted):
        hosted.hotspot.threshold = 1000
        hosted.run("f[n_] := n + 1")
        for _ in range(3):
            assert hosted.run("f[1]").to_python() == 2
        stale = hosted.hotspot.promoted["f"]
        assert stale.tier_kind == "template"
        hosted.run("f[n_] := n + 100")
        # the very next call sees the new rule, not the stale stitching
        assert hosted.run("f[1]").to_python() == 101
        assert hosted.hotspot.promoted.get("f") is not stale
        assert any(
            e.name == "f" and e.action == "invalidated"
            for e in hosted.hotspot.events
        )

    def test_compile_time_table_accumulates_per_tier(self, hosted):
        hosted.run("g[n_] := n * 2")
        for _ in range(12):
            hosted.run("g[4]")
        table = {tier: (count, seconds)
                 for tier, count, seconds in
                 hosted.hotspot.compile_time_table()}
        assert table["template"][0] == 1
        assert table["compiled"][0] == 1
        assert 0 < table["template"][1] < table["compiled"][1]

    def test_template_disabled_goes_straight_to_full_pipeline(self, hosted):
        hosted.hotspot.template_enabled = False
        hosted.run("h[n_] := n - 1")
        for _ in range(3):
            hosted.run("h[1]")
        assert "h" not in hosted.hotspot.promoted  # below the full threshold
        for _ in range(5):
            hosted.run("h[1]")
        assert hosted.hotspot.promoted["h"].tier_kind == "compiled"

    def test_stitch_decline_defers_to_full_pipeline(self, hosted):
        # Range has a bytecode lowering but no template stencil: the
        # stitcher declines at the low threshold and the definition waits,
        # interpreted, for the full-pipeline rung
        hosted.run("s[n_] := Total[Range[n]]")
        for _ in range(3):
            assert hosted.run("s[4]").to_python() == 10
        assert "s" not in hosted.hotspot.promoted
        assert any(
            e.name == "s" and e.action == "blocked"
            and e.tier == Tier.TEMPLATE.value
            for e in hosted.hotspot.events
        )
        for _ in range(5):
            hosted.run("s[4]")
        assert hosted.hotspot.promoted["s"].tier_kind == "compiled"


# -- knobs -------------------------------------------------------------------


class TestKnobs:
    def test_template_threshold_environment(self, monkeypatch):
        from repro.runtime.hotspot import (
            DEFAULT_TEMPLATE_THRESHOLD,
            HotspotProfiler,
            template_threshold_from_environment,
        )

        monkeypatch.delenv("REPRO_TEMPLATE_THRESHOLD", raising=False)
        assert (template_threshold_from_environment()
                == DEFAULT_TEMPLATE_THRESHOLD)
        monkeypatch.setenv("REPRO_TEMPLATE_THRESHOLD", "5")
        assert template_threshold_from_environment() == 5
        assert HotspotProfiler().template_threshold == 5
        monkeypatch.setenv("REPRO_TEMPLATE_THRESHOLD", "garbage")
        assert (template_threshold_from_environment()
                == DEFAULT_TEMPLATE_THRESHOLD)

    def test_template_enable_knob(self, monkeypatch):
        from repro.runtime.hotspot import (
            HotspotProfiler,
            template_enabled_from_environment,
        )

        monkeypatch.delenv("REPRO_TEMPLATE_JIT", raising=False)
        assert template_enabled_from_environment() is True
        for off in ("0", "off", "false", "no"):
            monkeypatch.setenv("REPRO_TEMPLATE_JIT", off)
            assert template_enabled_from_environment() is False
        monkeypatch.setenv("REPRO_TEMPLATE_JIT", "1")
        assert HotspotProfiler().template_enabled is True


# -- concurrency -------------------------------------------------------------


class TestTemplateThreads:
    def test_concurrent_calls_during_demotion(self):
        """Many threads drive one artifact while its breaker demotes: the
        lazy bytecode build must happen exactly once and no call may
        crash or return a wrong answer."""
        artifact = _stitch("{{n, _Integer}}", "n * 3")
        barrier = threading.Barrier(8)
        errors: list = []
        builds: list = []

        original_build = artifact._build_bytecode

        def counting_build():
            inner = original_build()
            builds.append(inner)
            return inner

        artifact._build_bytecode = counting_build

        def worker(index: int) -> None:
            barrier.wait()
            try:
                for round_number in range(50):
                    if index == 0 and round_number == 10:
                        for _ in range(3):
                            artifact.breaker.record_failure(
                                Tier.TEMPLATE, "TemplateRuntime", "x"
                            )
                    value = artifact(7)
                    if value != 21:
                        raise AssertionError(f"wrong answer {value}")
            except Exception as error:  # pragma: no cover
                errors.append(error)

        pool = [threading.Thread(target=worker, args=(i,))
                for i in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert errors == []
        assert artifact.breaker.tier is Tier.BYTECODE
        # every build call returned the same compiled instance
        assert len({id(b) for b in builds if b is not None}) <= 1
