"""Thread-safety regression tests for the runtime guard layer (S2).

The server executes requests on a worker pool, so the process-wide
structures requests share — the failure-log ring buffer, per-function
circuit breakers, and the hotspot promotion table — are hammered here
from many threads at once.  Before the locks these tests pin down, the
races were: lost failure-log records, duplicated breaker demotion
records, double-withdrawn promotions (KeyError), and torn tier counters.
"""

from __future__ import annotations

import threading

import pytest

from repro.runtime.guard import (
    DEFAULT_FAILURE_LOG_MAX,
    CircuitBreaker,
    FailureLog,
    Tier,
    failure_log_capacity_from_environment,
)

THREADS = 8
ROUNDS = 200


def hammer(worker, threads: int = THREADS):
    """Run ``worker(index)`` in ``threads`` threads behind one barrier."""
    barrier = threading.Barrier(threads)
    errors: list = []

    def entry(index: int) -> None:
        barrier.wait()
        try:
            worker(index)
        except Exception as error:  # pragma: no cover - the failure signal
            errors.append(error)

    pool = [threading.Thread(target=entry, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert errors == []


class TestFailureLogRing:
    def test_bounded_capacity(self):
        log = FailureLog(capacity=16)
        for index in range(100):
            log.record(f"f{index}", Tier.COMPILED, "Overflow", "boom")
        records = log.records()
        assert len(records) == 16
        # the ring keeps the newest records
        assert records[-1].function == "f99"
        assert records[0].function == "f84"
        # sequence numbers keep counting past evictions
        assert records[-1].sequence == 100

    def test_default_capacity_from_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAILURE_LOG_MAX", raising=False)
        assert failure_log_capacity_from_environment() == \
            DEFAULT_FAILURE_LOG_MAX
        monkeypatch.setenv("REPRO_FAILURE_LOG_MAX", "7")
        assert failure_log_capacity_from_environment() == 7
        assert FailureLog().capacity == 7
        monkeypatch.setenv("REPRO_FAILURE_LOG_MAX", "not-a-number")
        assert failure_log_capacity_from_environment() == \
            DEFAULT_FAILURE_LOG_MAX

    def test_concurrent_records_none_lost(self):
        log = FailureLog(capacity=THREADS * ROUNDS + 10)

        def worker(index: int) -> None:
            for round_number in range(ROUNDS):
                log.record(f"t{index}", Tier.BYTECODE, "Overflow",
                           f"r{round_number}")

        hammer(worker)
        assert len(log) == THREADS * ROUNDS
        sequences = [record.sequence for record in log.records()]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == THREADS * ROUNDS

    def test_concurrent_records_with_small_ring(self):
        log = FailureLog(capacity=32)

        def worker(index: int) -> None:
            for round_number in range(ROUNDS):
                log.record(f"t{index}", Tier.COMPILED, "Overflow",
                           f"r{round_number}")
                if round_number % 50 == 0:
                    log.records(function=f"t{index}")  # reads interleave

        hammer(worker)
        assert len(log) == 32


class TestCircuitBreakerThreads:
    def test_exactly_one_demotion_per_tier(self):
        log = FailureLog(capacity=10_000)
        breaker = CircuitBreaker("hot", log=log, threshold=THREADS * ROUNDS)

        def worker(index: int) -> None:
            for _ in range(ROUNDS):
                breaker.record_failure(Tier.COMPILED, "Overflow", "boom")

        hammer(worker)
        # every failure was counted (no torn increments)...
        assert breaker.failures[Tier.COMPILED] == THREADS * ROUNDS
        # ...and the threshold crossing demoted exactly once
        demotions = [record for record in log.records()
                     if record.transition is not None]
        assert len(demotions) == 1
        assert breaker.tier is Tier.BYTECODE

    def test_concurrent_reset_and_failures(self):
        breaker = CircuitBreaker("hot", log=FailureLog(capacity=64),
                                 threshold=3)

        def worker(index: int) -> None:
            for _ in range(ROUNDS):
                if index % 2:
                    breaker.record_failure(Tier.COMPILED, "Overflow", "x")
                else:
                    breaker.reset()
                    breaker.tripped(Tier.COMPILED)

        hammer(worker)
        assert breaker.tier in (Tier.COMPILED, Tier.BYTECODE)


def _entry(name: str, tier: Tier):
    from repro.runtime.hotspot import PromotedFunction

    class _Artifact:
        def __init__(self):
            self.breaker = CircuitBreaker(name, log=FailureLog(capacity=4))

        def __call__(self, *args):
            return None

    return PromotedFunction(
        name=name, artifact=_Artifact(), tier_kind=tier.value,
        gate_types=(), kinds=(), state_version=0, rules_list=[], rules=(),
    )


class TestHotspotTableThreads:
    def _profiler(self):
        from repro.runtime.hotspot import HotspotProfiler

        return HotspotProfiler(threshold=5)

    def test_concurrent_invalidate_and_demote(self):
        profiler = self._profiler()

        def refill() -> None:
            with profiler._lock:
                for name in ("f", "g", "h"):
                    profiler.promoted[name] = _entry(name, Tier.COMPILED)

        refill()

        def worker(index: int) -> None:
            for round_number in range(ROUNDS):
                if index == 0 and round_number % 10 == 0:
                    refill()
                elif index % 3 == 0:
                    profiler.demote_all(Tier.INTERPRETER, reason="test")
                    profiler.demote_all(Tier.COMPILED, reason="recover")
                elif index % 3 == 1:
                    profiler.invalidate("f")
                    profiler.invalidate("g")
                else:
                    profiler.invalidate("h")

        hammer(worker)

    def test_demote_all_caps_future_promotions(self):
        profiler = self._profiler()
        profiler.demote_all(Tier.INTERPRETER)
        for _ in range(20):
            # past the threshold, record() must hit the max_tier floor and
            # return before touching evaluator/definition at all
            profiler.record(None, "f", None, None)
        assert profiler.promoted == {}
        assert profiler.max_tier is Tier.INTERPRETER

    def test_promotion_install_rechecks_cap_lowered_mid_compile(self,
                                                                monkeypatch):
        """A promotion compiling while ``demote_all`` lowers the cap must
        not install an over-cap artifact: ``demote_all`` only withdraws
        entries already in the table, so a late install would stick until
        the *next* cap change."""
        from repro.runtime.hotspot import HotspotProfiler, _Plan

        class _Definition:
            down_values: list = []

        class _State:
            state_version = 0

        class _Evaluator:
            state = _State()

        def scenario(lower_cap_mid_compile: bool) -> HotspotProfiler:
            profiler = HotspotProfiler(threshold=5)
            plan = _Plan(parameters=("x",), kinds=("i",), gate_types=(int,),
                         body=None, recursive=False)
            monkeypatch.setattr(
                profiler, "_synthesize",
                lambda name, definition, expression: plan,
            )

            def compile_plan(evaluator, name, the_plan):
                if lower_cap_mid_compile:
                    profiler.demote_all(Tier.BYTECODE, reason="pressure")
                return _entry(name, Tier.COMPILED).artifact, "compiled"

            monkeypatch.setattr(profiler, "_compile_plan", compile_plan)
            profiler.counts["f"] = 5
            profiler._attempt_promotion_inner(
                _Evaluator(), "f", _Definition(), None, full=True
            )
            return profiler

        # sanity: without the concurrent demotion the entry installs
        untouched = scenario(lower_cap_mid_compile=False)
        assert "f" in untouched.promoted

        raced = scenario(lower_cap_mid_compile=True)
        assert "f" not in raced.promoted
        blocked = [event for event in raced.events
                   if event.action == "blocked"]
        assert blocked and "cap lowered" in blocked[0].detail

    def test_concurrent_template_rung_promotions(self):
        """Many threads drive the same symbol through ``record``: at most
        one template promotion installs (``_in_progress`` gate), the table
        never tears, and the tier-up path stays consistent."""
        from repro.compiler import install_engine_support
        from repro.engine import Evaluator
        from repro.mexpr import parse

        session = Evaluator()
        install_engine_support(session)
        session.hotspot.threshold = 10_000  # stay on the template rung
        session.hotspot.template_threshold = 2
        session.run("tw[n_] := n * 2 + 1")
        expression = parse("tw[21]")

        def worker(index: int) -> None:
            for _ in range(50):
                assert session.evaluate(expression).to_python() == 43

        hammer(worker)
        entry = session.hotspot.promoted["tw"]
        assert entry.tier_kind == "template"
        promotions = [event for event in session.hotspot.events
                      if event.action == "promoted"]
        assert len(promotions) == 1
        assert session.hotspot.compile_count["template"] == 1

    def test_demote_all_reports_withdrawn_count(self):
        profiler = self._profiler()
        for name, tier in (("a", Tier.COMPILED), ("b", Tier.BYTECODE)):
            profiler.promoted[name] = _entry(name, tier)
        # capping at bytecode withdraws only the compiled entry
        assert profiler.demote_all(Tier.BYTECODE) == 1
        assert sorted(profiler.promoted) == ["b"]
        assert profiler.demote_all(Tier.INTERPRETER) == 1
        assert profiler.promoted == {}


class TestMetricsRegistryThreads:
    """PR 9: the worker pool counts and observes on one shared registry;
    per-thread counter shards and the histogram lock must reconcile to
    exact totals with no torn increments."""

    def test_concurrent_counts_reconcile_exactly(self):
        from repro.observe import MetricsRegistry

        registry = MetricsRegistry()

        def worker(index: int) -> None:
            for round_number in range(ROUNDS):
                registry.count("shared")
                registry.count(f"per-thread.{index}")
                if round_number % 50 == 0:
                    # merged reads interleave with shard writes
                    assert registry.counter("shared") >= 0
                    registry.as_dict()

        hammer(worker)
        assert registry.counter("shared") == THREADS * ROUNDS
        for index in range(THREADS):
            assert registry.counter(f"per-thread.{index}") == ROUNDS
        merged = registry.as_dict()["counters"]
        assert merged["shared"] == THREADS * ROUNDS

    def test_concurrent_observes_reconcile_exactly(self):
        from repro.observe import MetricsRegistry

        registry = MetricsRegistry()

        def worker(index: int) -> None:
            for round_number in range(ROUNDS):
                registry.observe("latency", 0.001 * (round_number + 1))

        hammer(worker)
        hist = registry.histogram("latency")
        assert hist.count == THREADS * ROUNDS
        assert hist.minimum == pytest.approx(0.001)
        assert hist.maximum == pytest.approx(0.001 * ROUNDS)
        # the bucketed mass matches the count: no torn bucket updates
        snapshot = hist.snapshot()
        assert sum(snapshot["buckets"].values()) == THREADS * ROUNDS
        assert hist.p50 is not None and hist.p99 is not None

    def test_snapshot_under_write_load_is_consistent(self):
        from repro.observe import Histogram, MetricsRegistry

        registry = MetricsRegistry()
        stop = threading.Event()
        snapshots: list = []

        def reader() -> None:
            while not stop.is_set():
                snap = registry.as_dict()
                for payload in snap["histograms"].values():
                    clone = Histogram.from_snapshot(payload)
                    # invariant at every instant: bucket mass == count
                    assert sum(clone.buckets.values()) == clone.count
                snapshots.append(snap)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            def worker(index: int) -> None:
                for _ in range(ROUNDS):
                    registry.observe("hammered", 0.5)

            hammer(worker)
        finally:
            stop.set()
            thread.join()
        assert registry.histogram("hammered").count == THREADS * ROUNDS
        assert snapshots  # the reader actually ran


class TestTracerThreads:
    """PR 9: spans and instants from many threads land in one bounded
    ring; emitted == retained + dropped, always."""

    def test_bounded_ring_accounts_for_every_emission(self):
        from repro.observe import Tracer

        tracer = Tracer(max_spans=256)
        emitted = THREADS * ROUNDS * 2  # one span + one instant per round

        def worker(index: int) -> None:
            for round_number in range(ROUNDS):
                with tracer.span("work", "test", thread=index):
                    tracer.event("tick", "test", round=round_number)

        hammer(worker)
        assert len(tracer.events) == 256
        assert len(tracer.events) + tracer.dropped_spans == emitted
        # the export path stays coherent over the survivors
        assert len(tracer.chrome_trace()) == 256

    def test_unbounded_ring_loses_nothing(self):
        from repro.observe import Tracer

        tracer = Tracer(max_spans=THREADS * ROUNDS * 2 + 10)

        def worker(index: int) -> None:
            for _ in range(ROUNDS):
                with tracer.span("work", "test"):
                    tracer.event("tick", "test")
                tracer.metrics.count("emissions", 2)

        hammer(worker)
        assert tracer.dropped_spans == 0
        assert len(tracer.events) == THREADS * ROUNDS * 2
        assert tracer.metrics.counter("emissions") == THREADS * ROUNDS * 2

    def test_flight_recorder_routes_under_contention(self):
        """Threads emit under distinct request contexts concurrently; every
        finished request retains its own records and nothing leaks across
        request buffers."""
        from repro.observe import FlightRecorder, mint_context
        from repro.observe.context import activate

        recorder = FlightRecorder(sample=1.0, max_events=10_000)
        contexts = [mint_context(session=f"s{i}") for i in range(THREADS)]

        def worker(index: int) -> None:
            with activate(contexts[index]):
                for round_number in range(ROUNDS):
                    with recorder.span("work", "test"):
                        recorder.event("tick", "test", round=round_number)

        hammer(worker)
        for index, context in enumerate(contexts):
            recorder.finish_request(context, ok=False, rejected=False,
                                    retries=0, latency=0.0)
            timeline = recorder.timeline(context.request_id)
            assert len(timeline) == ROUNDS * 2
            assert all(record.request == context.request_id
                       for record in timeline)


@pytest.mark.slow
class TestGuardedSessionThreads:
    def test_parallel_sessions_share_one_base(self):
        """End-to-end: many worker threads each run a private session over
        one frozen base, concurrently, with redefinitions in flight."""
        from repro.engine import Evaluator
        from repro.mexpr import full_form, parse
        from repro.server import BaseImage

        base = BaseImage(prelude=("mix[x_] := x * 2",))

        def worker(index: int) -> None:
            session = Evaluator(state=base.create_state())
            for round_number in range(40):
                value = session.evaluate(parse(f"mix[{round_number}]"))
                expected = (round_number * 2 if index % 2 == 0
                            else round_number * 3)
                if index % 2 and round_number == 0:
                    session.run("mix[x_] := x * 3")
                    continue
                if index % 2 and round_number > 0:
                    assert full_form(value) == str(round_number * 3)
                else:
                    assert full_form(value) == str(expected)

        hammer(worker)
