"""The type system (§4.4): specifiers, classes, unification, environments."""

import pytest

from repro.compiler.types.classes import DEFAULT_CLASSES, TypeClassRegistry
from repro.compiler.types.environment import (
    TypeEnvironment,
    mangle,
    widens_to,
)
from repro.compiler.types.builtin_env import PRIMITIVE_IMPLS, default_environment
from repro.compiler.types.specifier import (
    AtomicType,
    CompoundType,
    FunctionType,
    TypeForAll,
    TypeLiteral,
    TypeVariable,
    fn,
    forall,
    instantiate,
    parse_type_specifier,
    tensor,
    ty,
)
from repro.compiler.types.unify import Substitution, unifiable, unify
from repro.errors import (
    AmbiguousTypeError,
    FunctionResolutionError,
    TypeInferenceError,
    WolframTypeError,
)
from repro.mexpr import parse


class TestTypeSpecifierParsing:
    """The grammar from §4.4, case by case."""

    def test_atomic_constructor(self):
        assert parse_type_specifier(parse('"Integer8"')) == ty("Integer8")
        assert parse_type_specifier(parse('"Real64"')) == ty("Real64")

    def test_platform_alias(self):
        assert parse_type_specifier(parse('"MachineInteger"')) == ty("Integer64")

    def test_compound_constructor(self):
        node = parse_type_specifier(parse('"Tensor"["Integer64", 2]'))
        assert node == tensor("Integer64", 2)

    def test_type_literal(self):
        node = parse_type_specifier(parse('TypeLiteral[1, "Integer64"]'))
        assert node == TypeLiteral(1, "Integer64")

    def test_function_type(self):
        node = parse_type_specifier(
            parse('{"Integer32", "Integer32"} -> "Real64"')
        )
        assert node == fn(["Integer32", "Integer32"], "Real64")

    def test_polymorphic_function(self):
        node = parse_type_specifier(
            parse('TypeForAll[{"a"}, {"a"} -> "Real64"]')
        )
        assert isinstance(node, TypeForAll)
        assert node.variables == ("a",)

    def test_qualified_polymorphic_function(self):
        node = parse_type_specifier(parse(
            'TypeForAll[{"a"}, {Element["a", "Integral"]}, {"a"} -> "Real64"]'
        ))
        assert node.qualifiers == (("a", "Integral"),)

    def test_paper_map_type(self):
        """§4.4: one of the definitions of Map, verbatim."""
        node = parse_type_specifier(parse(
            'TypeSpecifier[TypeForAll[{"a", "b"},'
            ' {{"a", "b"} -> "b", "Tensor"["a", 1]} -> "Tensor"["b", 1]]]'
        ))
        assert isinstance(node, TypeForAll)
        body = node.body
        assert isinstance(body, FunctionType)
        assert isinstance(body.params[0], FunctionType)
        assert body.params[1] == tensor("a", 1)

    def test_unknown_type_rejected(self):
        with pytest.raises(WolframTypeError):
            parse_type_specifier(parse('"Bogus64"'))


class TestTypeClasses:
    @pytest.mark.parametrize("type_name,class_name,expected", [
        ("Integer64", "Integral", True),
        ("Real64", "Integral", False),
        ("Real64", "Reals", True),
        ("ComplexReal64", "Number", True),
        ("ComplexReal64", "Ordered", False),
        ("String", "Ordered", True),
        ("String", "MemoryManaged", True),
        ("Integer64", "MemoryManaged", False),
    ])
    def test_atomic_membership(self, type_name, class_name, expected):
        assert DEFAULT_CLASSES.satisfies(ty(type_name), class_name) is expected

    def test_compound_membership(self):
        assert DEFAULT_CLASSES.satisfies(tensor("Real64", 1), "Container")
        assert DEFAULT_CLASSES.satisfies(tensor("Real64", 1), "MemoryManaged")
        assert not DEFAULT_CLASSES.satisfies(ty("Integer64"), "Container")

    def test_user_extension(self):
        registry = TypeClassRegistry()
        registry.declare_class("Hashable")
        registry.add_member("Hashable", "Integer64")
        assert registry.satisfies(ty("Integer64"), "Hashable")
        assert not registry.satisfies(ty("Real64"), "Hashable")


class TestUnification:
    def test_atomic(self):
        s = Substitution()
        unify(ty("Integer64"), ty("Integer64"), s)
        with pytest.raises(TypeInferenceError):
            unify(ty("Integer64"), ty("Real64"), s)

    def test_variable_binding(self):
        s = Substitution()
        unify(TypeVariable("a"), ty("Real64"), s)
        assert s.resolve(TypeVariable("a")) == ty("Real64")

    def test_compound(self):
        s = Substitution()
        unify(tensor("a", 1), tensor("Real64", 1), s)
        assert s.resolve(TypeVariable("a")) == ty("Real64")

    def test_rank_mismatch(self):
        s = Substitution()
        with pytest.raises(TypeInferenceError):
            unify(tensor("Real64", 1), tensor("Real64", 2), s)

    def test_function_types(self):
        s = Substitution()
        unify(fn(["a"], "b"), fn(["Integer64"], "Real64"), s)
        assert s.resolve(TypeVariable("a")) == ty("Integer64")
        assert s.resolve(TypeVariable("b")) == ty("Real64")

    def test_occurs_check(self):
        s = Substitution()
        with pytest.raises(TypeInferenceError):
            unify(TypeVariable("a"), tensor("a", 1), s)

    def test_unifiable_does_not_commit(self):
        s = Substitution()
        assert unifiable(TypeVariable("a"), ty("Real64"), s)
        assert s.resolve(TypeVariable("a")) == TypeVariable("a")

    def test_transitive_resolution(self):
        s = Substitution()
        unify(TypeVariable("a"), TypeVariable("b"), s)
        unify(TypeVariable("b"), ty("Boolean"), s)
        assert s.resolve(TypeVariable("a")) == ty("Boolean")


class TestInstantiation:
    def test_fresh_variables(self):
        poly = forall(["a"], fn(["a"], "a"))
        first, _ = instantiate(poly)
        second, _ = instantiate(poly)
        assert first != second  # fresh variables each time

    def test_qualifier_obligations(self):
        poly = forall(["a"], fn(["a", "a"], "a"), [("a", "Ordered")])
        _, obligations = instantiate(poly)
        assert len(obligations) == 1
        assert obligations[0][1] == "Ordered"


class TestResolution:
    def test_exact_overload(self):
        env = default_environment()
        resolved = env.resolve_call("Plus", [ty("Integer64"), ty("Integer64")])
        assert resolved.mangled_name == "Plus_Integer64_Integer64"
        assert resolved.function_type.result == ty("Integer64")

    def test_real_overload(self):
        env = default_environment()
        resolved = env.resolve_call("Plus", [ty("Real64"), ty("Real64")])
        assert resolved.function_type.result == ty("Real64")

    def test_coercion_int_to_real(self):
        env = default_environment()
        resolved = env.resolve_call("Plus", [ty("Integer64"), ty("Real64")])
        assert resolved.function_type.result == ty("Real64")
        assert resolved.coercions[0] == ty("Real64")
        assert resolved.coercions[1] is None

    def test_polymorphic_with_qualifier(self):
        env = default_environment()
        resolved = env.resolve_call("Min", [ty("Real64"), ty("Real64")])
        assert resolved.function_type.result == ty("Real64")

    def test_qualifier_violation(self):
        env = default_environment()
        with pytest.raises(FunctionResolutionError):
            # Less requires Ordered; complex numbers are not ordered
            env.resolve_call(
                "Less", [ty("ComplexReal64"), ty("ComplexReal64")]
            )

    def test_container_min_selects_wolfram_implementation(self):
        """§4.4's example: Min on a container resolves to the Fold impl."""
        from repro.mexpr.expr import MExpr

        env = default_environment()
        resolved = env.resolve_call("Min", [tensor("Integer64", 1)])
        assert isinstance(resolved.declaration.implementation, MExpr)

    def test_arity_overloading(self):
        """§4.4: 'overloaded by type, arity, and return type'."""
        env = default_environment()
        one = env.resolve_call("ArcTan", [ty("Real64")])
        two = env.resolve_call("ArcTan", [ty("Real64"), ty("Real64")])
        assert one.declaration is not two.declaration

    def test_no_match(self):
        env = default_environment()
        with pytest.raises(FunctionResolutionError):
            env.resolve_call("Plus", [ty("Boolean"), ty("Boolean")])

    def test_user_overload_wins(self):
        """§4.4: later declarations (user extensions) outrank builtins."""
        base = default_environment()
        env = TypeEnvironment(parent=base)
        marker = PRIMITIVE_IMPLS["binary_max"]
        env.declare_function("Plus", fn(["Real64", "Real64"], "Real64"),
                             marker)
        resolved = env.resolve_call("Plus", [ty("Real64"), ty("Real64")])
        assert resolved.declaration.implementation is marker

    def test_ambiguity_raises(self):
        env = TypeEnvironment()
        impl = PRIMITIVE_IMPLS["binary_min"]
        # two simultaneous declarations with equal rank but different results
        d1 = env.declare_function("amb", forall(["a"], fn(["a"], "Integer64")), impl)
        d2 = env.declare_function("amb", forall(["b"], fn(["b"], "Real64")), impl)
        d2.order = d1.order  # force an ordering tie
        with pytest.raises(AmbiguousTypeError):
            env.resolve_call("amb", [ty("Boolean")])


class TestMangling:
    def test_paper_style_name(self):
        """§A.6.3: checked_binary_plus_Integer64_Integer64-style names."""
        assert mangle("Plus", (ty("Integer64"), ty("Integer64"))) == (
            "Plus_Integer64_Integer64"
        )

    def test_tensor_mangling(self):
        name = mangle("Total", (tensor("Real64", 1),))
        assert name == "Total_Tensor_Real64_1"

    def test_context_backtick_sanitized(self):
        assert "`" not in mangle("Native`PartSet", (ty("Integer64"),))


class TestWidening:
    @pytest.mark.parametrize("source,target,expected", [
        ("Integer64", "Real64", True),
        ("Real64", "Integer64", False),
        ("Integer8", "Integer64", True),
        ("Real64", "ComplexReal64", True),
        ("UnsignedInteger8", "Integer64", True),
        ("Integer64", "UnsignedInteger64", True),
        ("Boolean", "Integer64", False),
    ])
    def test_widens(self, source, target, expected):
        assert widens_to(ty(source), ty(target)) is expected


class TestUserTypes:
    def test_declare_type_registers_atomic(self):
        """F6: users can define their own datatypes."""
        env = TypeEnvironment(classes=TypeClassRegistry())
        env.declare_type("MyRational", classes=["Number", "Ordered"])
        assert env.has_type("MyRational")
        assert env.classes.satisfies(ty("MyRational"), "Ordered")

    def test_managed_property(self):
        assert ty("String").is_managed()
        assert ty("Expression").is_managed()
        assert tensor("Real64", 1).is_managed()
        assert not ty("Integer64").is_managed()
