"""The MExpr visitor API (§4.2) and multi-expression parsing."""

from repro.mexpr import (
    MExprTransformer,
    MExprVisitor,
    MInteger,
    MSymbol,
    full_form,
    parse,
    parse_all,
)


class TestVisitor:
    def test_head_dispatch(self):
        seen = []

        class PlusCollector(MExprVisitor):
            def visit_Plus(self, node):  # noqa: N802
                seen.append(full_form(node))
                for arg in node.args:
                    self.visit(arg)

        # the default normal-visit recurses, so nested Plus nodes dispatch
        PlusCollector().visit(parse("f[1 + 2, 3 + x]"))
        assert seen == ["Plus[1, 2]", "Plus[3, x]"]

    def test_symbol_and_literal_hooks(self):
        symbols, literals = [], []

        class Census(MExprVisitor):
            def visit_symbol(self, node):
                symbols.append(node.name)

            def visit_literal(self, node):
                literals.append(node.to_python())

        Census().visit(parse("g[x, 2, 3.5]"))
        assert symbols == ["g", "x"]
        assert literals == [2, 3.5]

    def test_free_variable_analysis_via_visitor(self):
        """The visitor style the paper's binding analysis uses (§4.2)."""

        class FreeVariables(MExprVisitor):
            def __init__(self):
                self.bound: set[str] = set()
                self.free: set[str] = set()

            def visit_Module(self, node):  # noqa: N802
                spec, body = node.args
                saved = set(self.bound)
                for item in spec.args:
                    name = item if isinstance(item, MSymbol) else item.args[0]
                    self.bound.add(name.name)
                    if not isinstance(item, MSymbol):
                        self.visit(item.args[1])
                self.visit(body)
                self.bound = saved

            def visit_symbol(self, node):
                if node.name not in self.bound and node.name[0].islower():
                    self.free.add(node.name)

        analysis = FreeVariables()
        analysis.visit(parse("Module[{a = outer}, a + b]"))
        assert analysis.free == {"outer", "b"}


class TestTransformer:
    def test_bottom_up_rewrite(self):
        class Incrementer(MExprTransformer):
            def transform_literal(self, node):
                if isinstance(node, MInteger):
                    return MInteger(node.value + 1)
                return node

        out = Incrementer().transform(parse("f[1, g[2]]"))
        assert full_form(out) == "f[2, g[3]]"

    def test_identity_preserves_nodes(self):
        node = parse("f[x, 1]")
        assert MExprTransformer().transform(node) is node

    def test_head_specific_transform(self):
        class PlusToTimes(MExprTransformer):
            def transform_Plus(self, node):  # noqa: N802
                from repro.mexpr import MExprNormal, S

                return MExprNormal(
                    S.Times, [self.transform(a) for a in node.args]
                )

        out = PlusToTimes().transform(parse("h[1 + 2]"))
        assert full_form(out) == "h[Times[1, 2]]"


class TestParseAll:
    def test_semicolon_separated_statements(self):
        statements = parse_all("a = 1; b = 2; a + b")
        assert len(statements) == 3
        assert full_form(statements[2]) == "Plus[a, b]"

    def test_single_expression(self):
        statements = parse_all("f[x]")
        assert len(statements) == 1

    def test_empty_input(self):
        assert parse_all("   ") == []
