"""Edge cases of the WIR dataflow machinery (repro.compiler.wir.analysis):
single-block functions, unreachable blocks, and loops with multiple
back-edges — the shapes the IR verifier leans on."""

from repro.compiler.wir.analysis import (
    compute_dominators,
    compute_liveness,
    dominates,
    find_natural_loops,
    loop_headers,
)
from repro.compiler.wir.function_module import FunctionModule
from repro.compiler.wir.instructions import (
    BranchInstr,
    ConstantInstr,
    JumpInstr,
    ReturnInstr,
    Value,
)


def boolean(value: Value) -> Value:
    return value


class TestSingleBlock:
    def build(self):
        function = FunctionModule("F")
        block = function.new_block("entry")
        result = Value("r")
        block.append(ConstantInstr(result, 1))
        block.terminator = ReturnInstr(result)
        return function, block

    def test_dominators(self):
        function, block = self.build()
        idom = compute_dominators(function)
        assert idom == {block.name: None}
        assert dominates(idom, block.name, block.name)  # reflexive

    def test_no_loops(self):
        function, _ = self.build()
        assert find_natural_loops(function) == []
        assert loop_headers(function) == set()

    def test_liveness_empty_at_boundaries(self):
        function, block = self.build()
        live_in, live_out = compute_liveness(function)
        assert live_in[block.name] == set()
        assert live_out[block.name] == set()


class TestUnreachableBlocks:
    def build(self):
        function = FunctionModule("F")
        entry = function.new_block("entry")
        orphan = function.new_block("orphan")
        result = Value("r")
        entry.append(ConstantInstr(result, 1))
        entry.terminator = ReturnInstr(result)
        ghost = Value("g")
        orphan.append(ConstantInstr(ghost, 2))
        orphan.terminator = ReturnInstr(ghost)
        return function, entry, orphan

    def test_dominators_cover_reachable_only(self):
        function, entry, orphan = self.build()
        idom = compute_dominators(function)
        assert entry.name in idom
        assert orphan.name not in idom

    def test_dominates_is_false_for_unknown_blocks(self):
        function, entry, orphan = self.build()
        idom = compute_dominators(function)
        assert not dominates(idom, entry.name, orphan.name)

    def test_orphan_back_edge_creates_no_loop(self):
        function, entry, orphan = self.build()
        orphan.terminator = JumpInstr(orphan.name)  # self-loop, unreachable
        assert loop_headers(function) == set()


class TestMultipleBackEdges:
    def build(self):
        """One header with TWO latches (a loop whose body splits and both
        arms jump back) — the shape that merges into one natural loop."""
        function = FunctionModule("F")
        entry = function.new_block("entry")
        header = function.new_block("header")
        left = function.new_block("left")
        right = function.new_block("right")
        exit_block = function.new_block("exit")

        condition = Value("c")
        entry.append(ConstantInstr(condition, True))
        entry.terminator = JumpInstr(header.name)
        stay = Value("stay")
        header.append(ConstantInstr(stay, True))
        header.terminator = BranchInstr(stay, left.name, exit_block.name)
        pick = Value("pick")
        left.append(ConstantInstr(pick, False))
        left.terminator = BranchInstr(pick, header.name, right.name)
        right.terminator = JumpInstr(header.name)  # second back-edge
        result = Value("r")
        exit_block.append(ConstantInstr(result, 0))
        exit_block.terminator = ReturnInstr(result)
        return function, header, left, right, exit_block

    def test_single_header_found(self):
        function, header, *_ = self.build()
        assert loop_headers(function) == {header.name}

    def test_both_latches_in_the_loop_body(self):
        function, header, left, right, _ = self.build()
        loops = find_natural_loops(function)
        bodies = set()
        for loop in loops:
            assert loop.header == header.name
            bodies |= set(loop.body)
        assert {header.name, left.name, right.name} <= bodies

    def test_header_dominates_loop_body(self):
        function, header, left, right, exit_block = self.build()
        idom = compute_dominators(function)
        for name in (left.name, right.name, exit_block.name):
            assert dominates(idom, header.name, name)
        assert not dominates(idom, left.name, header.name)


class TestLivenessAcrossBlocks:
    def test_value_live_through_intermediate_block(self):
        function = FunctionModule("F")
        entry = function.new_block("entry")
        middle = function.new_block("middle")
        last = function.new_block("last")
        carried = Value("v")
        entry.append(ConstantInstr(carried, 5))
        entry.terminator = JumpInstr(middle.name)
        middle.terminator = JumpInstr(last.name)  # does not touch `carried`
        last.terminator = ReturnInstr(carried)
        live_in, live_out = compute_liveness(function)
        assert carried in live_out[entry.name]
        assert carried in live_in[middle.name]
        assert carried in live_in[last.name]
        assert carried not in live_out[last.name]
